#!/usr/bin/env bash
# The tier-1 gate: formatting, lints, an offline release build, and the
# test suite. CI runs exactly this script; run it locally before pushing.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # skip clippy (useful while iterating)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ $fast -eq 0 ]]; then
  echo "==> cargo clippy (workspace, all targets, warnings are errors)"
  cargo clippy --offline --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release (offline)"
cargo build --offline --workspace --release

echo "==> cargo doc (offline, no deps; missing_docs is deny on sim/fleet/checker)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "==> cargo test (offline, quick sweeps)"
GECKO_QUICK=1 cargo test --offline --workspace -q

echo "==> checker smoke (exhaustive model check, capped windows)"
GECKO_QUICK=1 cargo run --offline --release --example check

echo "==> chaos smoke (supervised campaign: quarantine, retry, kill + resume)"
cargo test --offline --release -q -p gecko-fleet --test supervision
cargo test --offline --release -q -p gecko-check --test supervision
cargo run --offline --release --example campaign -- --chaos --resume --drain --prune --batch

echo "==> batch smoke (lock-step grids at batch 1/7/64/1024 x 1/2/8 workers,"
echo "    incl. kill + resume across batch sizes, must merge digest-identically)"
GECKO_QUICK=1 cargo test --offline --release -q -p gecko-sim --test batch
GECKO_QUICK=1 cargo test --offline --release -q -p gecko-fleet --test batch

echo "==> store smoke (segmented store: kill-mid-prune resume digests, retention caps)"
cargo test --offline --release -q -p gecko-store
cargo test --offline --release -q -p gecko-fleet --test prune

echo "==> serve smoke (daemon on an ephemeral port: submit fig4 sweep over HTTP,"
echo "    poll to completion, served result must be byte-identical to the library)"
cargo run --offline --release --example serve -- --smoke
cargo test --offline --release -q -p gecko-serve --test e2e

echo "==> fault smoke (EM instruction faults: bit-identical fault-free paths,"
echo "    skip+refailure breaks Ratchet while GECKO verifies clean, fleet fault axis)"
GECKO_QUICK=1 cargo test --offline --release -q -p gecko-sim --test faults
GECKO_QUICK=1 cargo test --offline --release -q -p gecko-check --test faults
GECKO_QUICK=1 cargo test --offline --release -q -p gecko-fleet --test faults
cargo run --offline --release --example fault_lab

echo "==> incremental smoke (persistent memo store: warm re-checks byte-identical,"
echo "    worker/steal/kill-resume digest-invariant, change-driven invalidation)"
GECKO_QUICK=1 cargo test --offline --release -q -p gecko-check --test incremental

echo "==> bench smoke (fast-path + event-horizon + batch_step coalescing floors, BENCH_sim.json)"
GECKO_QUICK=1 cargo bench --offline -p gecko-bench --bench fast_path

echo "==> OK"
