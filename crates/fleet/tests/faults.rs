//! The EM instruction-fault axis and the energy-starvation supply: both
//! new campaign dimensions must obey the fleet's core determinism
//! guarantee (worker count and batch size change wall-clock, never
//! results), and their physics must show up in the metrics — armed fault
//! windows retire faulted instructions, disarmed ones are bit-identical
//! to no fault at all, and a starved harvester slows the device down.

use gecko_emi::attack::DpiPoint;
use gecko_emi::fault::{FaultModel, FaultSchedule};
use gecko_emi::{EmiSignal, Injection};
use gecko_fleet::{Campaign, CampaignSpec, FaultCase, SchemeKind, Supply, Workload};

fn pulse() -> EmiSignal {
    EmiSignal::new(27e6, 35.0)
}

/// none / armed-skip / disarmed-skip fault axis over two schemes.
fn fault_spec() -> CampaignSpec {
    CampaignSpec::new("fault-axis")
        .apps(["blink", "crc16"])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .faults([
            FaultCase::none(),
            FaultCase::new(
                "skip@2ms",
                FaultSchedule::bursts(
                    pulse(),
                    Injection::Dpi(DpiPoint::P2),
                    FaultModel::Skip,
                    &[0.002],
                    0.004,
                ),
            ),
            // Same pulse from 10 m away: below the fault power threshold,
            // physically present but architecturally inert.
            FaultCase::new(
                "skip-disarmed",
                FaultSchedule::bursts(
                    pulse(),
                    Injection::Remote { distance_m: 10.0 },
                    FaultModel::Skip,
                    &[0.002],
                    0.004,
                ),
            ),
        ])
        .seeds([1])
        .workload(Workload::RunFor { seconds: 0.01 })
}

#[test]
fn fault_axis_is_worker_and_batch_invariant() {
    let solo = Campaign::new(fault_spec()).workers(1).run().unwrap();
    let fleet = Campaign::new(fault_spec()).workers(7).run().unwrap();
    let batched = Campaign::new(fault_spec())
        .workers(3)
        .batch_size(4)
        .run()
        .unwrap();

    assert_eq!(solo.results.len(), 2 * 2 * 3);
    let digest = solo.deterministic_digest();
    assert_eq!(digest, fleet.deterministic_digest(), "worker count");
    assert_eq!(digest, batched.deterministic_digest(), "batch size");
}

#[test]
fn armed_faults_fire_and_disarmed_faults_are_inert() {
    let report = Campaign::new(fault_spec()).run().unwrap();
    // Items expand fault-major within each (app, scheme): none, armed,
    // disarmed consecutively.
    for triple in report.results.chunks(3) {
        let (none, armed, disarmed) = (&triple[0], &triple[1], &triple[2]);
        assert_eq!(none.metrics.fault_skips, 0);
        assert_eq!(none.metrics.fault_corruptions, 0);
        assert!(
            armed.metrics.fault_skips > 0,
            "armed window must skip instructions (item {})",
            armed.item.index
        );
        // A disarmed schedule is behaviorally FaultSchedule::none().
        assert_eq!(
            disarmed.metrics, none.metrics,
            "disarmed fault case must be bit-identical to fault-free"
        );
    }
}

#[test]
fn starved_supply_slows_the_device_and_stays_deterministic() {
    let base = |name: &str| {
        CampaignSpec::new(name)
            .apps(["blink"])
            .schemes([SchemeKind::Gecko])
            .seeds([1])
            .workload(Workload::RunFor { seconds: 0.5 })
    };
    let fed = base("fed").supply(Supply::Harvesting { power_w: 2e-3 });
    let starved = base("starved").supply(Supply::Starved {
        power_w: 2e-3,
        period_s: 0.05,
        starve_s: 0.04,
        attenuation: 0.0,
    });

    let fed_report = Campaign::new(fed).run().unwrap();
    let solo = Campaign::new(starved.clone()).workers(1).run().unwrap();
    let fleet = Campaign::new(starved).workers(4).run().unwrap();

    assert_eq!(solo.deterministic_digest(), fleet.deterministic_digest());
    assert!(
        solo.totals.forward_cycles < fed_report.totals.forward_cycles,
        "halving the energy budget must cost forward progress: {} !< {}",
        solo.totals.forward_cycles,
        fed_report.totals.forward_cycles
    );
}
