//! Kill-mid-prune resilience: compacting a segmented campaign journal
//! under a work budget — with the pruner killed and rebuilt from its
//! persisted checkpoint between every tick — must be invisible to a
//! bit-exact resume at any worker count.
//!
//! These are the integration-level proofs for the gecko-store contract;
//! the unit tests in `gecko_store::compact` cover the same invariants on
//! a toy vocabulary.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gecko_fleet::{classify_campaign_lines, Campaign, CampaignSpec, Journal, SchemeKind, Workload};
use gecko_isa::SplitMix64;
use gecko_store::{LogCompactor, LogConfig, Pruner, SegmentedLog};

fn spec() -> CampaignSpec {
    CampaignSpec::new("prune")
        .apps(["blink", "crc16"])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .seeds([1, 2, 3])
        .workload(Workload::RunFor { seconds: 0.002 })
}

const ITEMS: u64 = 2 * 2 * 3;

/// Tiny segments so even this small campaign rolls several of them —
/// otherwise every line sits in the unsealed (never pruned) tail.
fn tiny_cfg() -> LogConfig {
    LogConfig {
        max_segment_bytes: 512,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gecko-fleet-prune-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One budgeted prune tick with log, checkpoints, and pruner all opened
/// fresh from disk — every call is a separate "process", so a kill
/// between ticks is the norm here, not the exception. Returns whether
/// the backlog is clear.
fn prune_tick(dir: &Path, delete_limit: usize) -> bool {
    let log = Arc::new(SegmentedLog::open(&dir.join("journal"), tiny_cfg()).unwrap());
    let mut pruner = Pruner::open(&dir.join("prune.json"), delete_limit).unwrap();
    pruner.add(LogCompactor::new("campaign", log, classify_campaign_lines));
    pruner.tick().unwrap().done
}

/// Byte-copies the segment files of one journal dir into another.
fn copy_journal(from: &Path, to: &Path) {
    std::fs::create_dir_all(to.join("journal")).unwrap();
    for entry in std::fs::read_dir(from.join("journal")).unwrap().flatten() {
        std::fs::copy(entry.path(), to.join("journal").join(entry.file_name())).unwrap();
    }
}

#[test]
fn kill_mid_prune_resume_is_bit_exact_at_1_2_8_workers() {
    let reference = Campaign::new(spec()).run().unwrap().deterministic_digest();
    for workers in [1usize, 2, 8] {
        let dir = temp_dir(&format!("kill-w{workers}"));

        // Run partway into a segmented journal, halting deterministically.
        let journal = Arc::new(Journal::open_segmented(&dir.join("journal"), tiny_cfg()).unwrap());
        let halted = Campaign::new(spec())
            .workers(workers)
            .resume(Arc::clone(&journal))
            .halt_after(5)
            .run()
            .unwrap();
        assert!(halted.halted, "workers={workers}");
        drop(journal);

        // Budgeted prune ticks with the pruner killed and rebuilt from
        // its checkpoint between each one.
        for _ in 0..4 {
            prune_tick(&dir, 3);
        }

        // Resume from the pruned journal: same digest as uninterrupted.
        let journal = Arc::new(Journal::open_segmented(&dir.join("journal"), tiny_cfg()).unwrap());
        let resumed = Campaign::new(spec())
            .workers(workers)
            .resume(journal)
            .run()
            .unwrap();
        assert!(resumed.counters.resumed >= 5, "workers={workers}");
        assert_eq!(
            resumed.deterministic_digest(),
            reference,
            "pruning must be invisible to resume (workers={workers})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn prune_and_resume_commute_and_budget_one_converges() {
    let reference = Campaign::new(spec()).run().unwrap().deterministic_digest();
    let mut rng = SplitMix64::new(0x5EED_F00D);
    for round in 0..3u32 {
        let halt = 2 + rng.next_u64() % 6;
        let budget = 1 + (rng.next_u64() % 3) as usize;
        let a = temp_dir(&format!("commute-a{round}"));
        let b = temp_dir(&format!("commute-b{round}"));

        // One halted run, then byte-identical copies for both paths.
        let journal = Arc::new(Journal::open_segmented(&a.join("journal"), tiny_cfg()).unwrap());
        Campaign::new(spec())
            .workers(2)
            .resume(Arc::clone(&journal))
            .halt_after(halt)
            .run()
            .unwrap();
        drop(journal);
        copy_journal(&a, &b);

        // Path 1: prune to a clear backlog, then resume.
        while !prune_tick(&a, budget) {}
        let journal = Arc::new(Journal::open_segmented(&a.join("journal"), tiny_cfg()).unwrap());
        let pruned_first = Campaign::new(spec())
            .workers(2)
            .resume(journal)
            .run()
            .unwrap();
        assert_eq!(pruned_first.deterministic_digest(), reference, "{round}");

        // Path 2: resume first, then prune the completed journal. A
        // second resume must then find every run journaled — pruning
        // after the fact deleted nothing the decoder needed.
        let journal = Arc::new(Journal::open_segmented(&b.join("journal"), tiny_cfg()).unwrap());
        let resumed_first = Campaign::new(spec())
            .workers(2)
            .resume(journal)
            .run()
            .unwrap();
        assert_eq!(resumed_first.deterministic_digest(), reference, "{round}");
        while !prune_tick(&b, budget) {}
        let journal = Arc::new(Journal::open_segmented(&b.join("journal"), tiny_cfg()).unwrap());
        let replayed = Campaign::new(spec())
            .workers(2)
            .resume(journal)
            .run()
            .unwrap();
        assert_eq!(replayed.counters.resumed, ITEMS, "round {round}");
        assert_eq!(replayed.deterministic_digest(), reference, "{round}");

        // Convergence: delete_limit=1 drip-pruning lands on the exact
        // segment layout an unlimited prune produces in one tick.
        let c = temp_dir(&format!("commute-c{round}"));
        copy_journal(&b, &c);
        // b's prune checkpoint already says "done"; reset it so the drip
        // prune starts from scratch on both copies.
        let _ = std::fs::remove_file(b.join("prune.json"));
        while !prune_tick(&b, 1) {}
        while !prune_tick(&c, 0) {}
        let drip = SegmentedLog::open(&b.join("journal"), tiny_cfg()).unwrap();
        let bulk = SegmentedLog::open(&c.join("journal"), tiny_cfg()).unwrap();
        let layout = |log: &SegmentedLog| -> Vec<(u64, bool, Vec<String>)> {
            log.segment_lines()
                .into_iter()
                .map(|s| (s.seq, s.sealed, s.lines))
                .collect()
        };
        assert_eq!(
            layout(&drip),
            layout(&bulk),
            "budget-1 pruning must converge to the unlimited layout (round {round})"
        );

        for dir in [&a, &b, &c] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
