//! The supervised-campaign guarantees: chaos-injected panics quarantine
//! without losing sibling results, budgets flag runs deterministically,
//! transient faults retry to convergence, and a campaign killed at any
//! completed-run boundary resumes from its journal bit-exactly — at any
//! worker count.

use std::sync::Arc;

use gecko_fleet::{
    Campaign, CampaignError, CampaignReport, CampaignSpec, ChaosSpec, Journal, MemorySink,
    RunFailure, SchemeKind, SupervisorSpec, Workload,
};
use gecko_isa::rng::SplitMix64;

fn small_spec() -> CampaignSpec {
    CampaignSpec::new("supervised")
        .apps(["blink", "crc16"])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .seeds([1, 2, 3])
        .workload(Workload::RunFor { seconds: 0.002 })
}

/// What the supervisor must do with one run, derived purely from the
/// chaos plan stream — the test's independent model of `supervise_item`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Predicted {
    /// Succeeds on the given 1-based attempt.
    Success { attempt: u32 },
    /// Panics (hard) on the given attempt.
    Panic { attempt: u32 },
    /// Fails transiently on every allowed attempt.
    Transient,
}

fn predict(sup: &SupervisorSpec, run_key: u64) -> Predicted {
    for attempt in 1..=sup.max_attempts {
        let plan = sup.chaos.plan_for(run_key, attempt);
        if plan.panic {
            return Predicted::Panic { attempt };
        }
        if !plan.transient {
            return Predicted::Success { attempt };
        }
    }
    Predicted::Transient
}

fn predictions(spec: &CampaignSpec, sup: &SupervisorSpec) -> Vec<Predicted> {
    spec.expand()
        .iter()
        .map(|item| predict(sup, spec.run_key(item)))
        .collect()
}

/// Picks a chaos seed whose plan stream actually exercises the scenario
/// (some failures AND some successes) — self-validating, no magic seeds.
fn seed_with_mixed_outcomes(sup_template: SupervisorSpec, want_failures: bool) -> SupervisorSpec {
    let spec = small_spec();
    for seed in 0..256 {
        let mut sup = sup_template;
        sup.chaos.seed = seed;
        let p = predictions(&spec, &sup);
        let failures = p
            .iter()
            .filter(|p| !matches!(p, Predicted::Success { .. }))
            .count();
        let retried = p
            .iter()
            .any(|p| !matches!(p, Predicted::Success { attempt: 1 }));
        if failures > 0 && failures < p.len() && (!want_failures || retried) {
            return sup;
        }
    }
    panic!("no chaos seed in 0..256 produced a mixed outcome");
}

#[test]
fn injected_panics_quarantine_once_and_siblings_stay_bit_exact() {
    let sup = seed_with_mixed_outcomes(
        SupervisorSpec {
            chaos: ChaosSpec {
                panic_per_mille: 250,
                ..ChaosSpec::off()
            },
            ..SupervisorSpec::default()
        },
        false,
    );
    let predicted = predictions(&small_spec(), &sup);
    let clean = Campaign::new(small_spec()).workers(3).run().unwrap();
    let chaotic = Campaign::new(small_spec())
        .supervisor(sup)
        .workers(3)
        .run()
        .unwrap();

    // Every predicted panic appears exactly once in `failures`...
    let panicked: Vec<usize> = predicted
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, Predicted::Panic { .. }))
        .map(|(i, _)| i)
        .collect();
    assert!(!panicked.is_empty(), "scenario must inject at least once");
    assert_eq!(chaotic.failures.len(), panicked.len());
    for (failure, &item) in chaotic.failures.iter().zip(&panicked) {
        match failure {
            RunFailure::Panicked {
                item: failed_item,
                payload,
                ..
            } => {
                assert_eq!(*failed_item, item);
                assert!(
                    payload.contains("chaos: injected panic"),
                    "unexpected payload: {payload}"
                );
            }
            other => panic!("expected a quarantined panic, got {other:?}"),
        }
    }
    assert_eq!(chaotic.counters.failures, panicked.len() as u64);

    // ...and every sibling result is bit-exact against the chaos-free run.
    assert_eq!(
        chaotic.results.len(),
        clean.results.len() - panicked.len(),
        "exactly the panicked runs are missing"
    );
    for r in &chaotic.results {
        let reference = &clean.results[r.item.index]; // clean has no holes
        assert_eq!(r.metrics, reference.metrics);
        assert_eq!(r.buckets, reference.buckets);
        assert_eq!(r.compile_stats, reference.compile_stats);
    }

    // Chaos is keyed on (seed, run key, attempt), so the whole report —
    // including the failure list — is worker-count-invariant.
    let solo = Campaign::new(small_spec())
        .supervisor(sup)
        .workers(1)
        .run()
        .unwrap();
    assert_eq!(solo.failures, chaotic.failures);
    assert_eq!(solo.deterministic_digest(), chaotic.deterministic_digest());
}

#[test]
fn transient_faults_retry_with_bounded_attempts() {
    let sup = seed_with_mixed_outcomes(
        SupervisorSpec {
            max_attempts: 4,
            backoff_base_ms: 0, // keep the test fast; backoff is unit-tested
            chaos: ChaosSpec {
                transient_per_mille: 400,
                ..ChaosSpec::off()
            },
            ..SupervisorSpec::default()
        },
        true,
    );
    let predicted = predictions(&small_spec(), &sup);
    let report = Campaign::new(small_spec())
        .supervisor(sup)
        .workers(4)
        .run()
        .unwrap();

    let expected_retries: u64 = predicted
        .iter()
        .map(|p| match p {
            Predicted::Success { attempt } | Predicted::Panic { attempt } => (attempt - 1) as u64,
            Predicted::Transient => (sup.max_attempts - 1) as u64,
        })
        .sum();
    let exhausted: Vec<usize> = predicted
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, Predicted::Transient))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(report.counters.retries, expected_retries);
    assert!(expected_retries > 0, "scenario must retry at least once");
    assert_eq!(report.failures.len(), exhausted.len());
    for (failure, &item) in report.failures.iter().zip(&exhausted) {
        match failure {
            RunFailure::Transient {
                item: failed_item,
                attempts,
                ..
            } => {
                assert_eq!(*failed_item, item);
                assert_eq!(*attempts, sup.max_attempts);
            }
            other => panic!("expected an exhausted transient, got {other:?}"),
        }
    }

    // Runs that eventually succeeded are bit-exact: retries re-run the
    // same deterministic simulation.
    let clean = Campaign::new(small_spec()).workers(2).run().unwrap();
    for r in &report.results {
        assert_eq!(r.metrics, clean.results[r.item.index].metrics);
    }
}

#[test]
fn step_budget_timeouts_are_deterministic_and_carry_partials() {
    let sup = SupervisorSpec {
        max_steps: Some(1),
        ..SupervisorSpec::default()
    };
    let run = |workers| {
        Campaign::new(small_spec())
            .supervisor(sup)
            .workers(workers)
            .run()
            .unwrap()
    };
    let a = run(1);
    let b = run(4);
    let items = small_spec().expand().len();
    assert!(a.results.is_empty(), "every run must blow a 1-step budget");
    assert_eq!(a.failures.len(), items);
    for (i, failure) in a.failures.iter().enumerate() {
        match failure {
            RunFailure::TimedOut {
                item,
                steps,
                partial,
                ..
            } => {
                assert_eq!(*item, i, "failures arrive in item order");
                assert_eq!(*steps, 1, "aborts exactly at the budget");
                assert!(partial.is_some(), "step-budget timeouts carry partials");
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
    }
    // The abort point is a step count, not a clock: partials and digests
    // agree across worker counts (wall_ms is excluded from the digest).
    for (fa, fb) in a.failures.iter().zip(&b.failures) {
        let (
            RunFailure::TimedOut {
                steps: sa,
                partial: pa,
                ..
            },
            RunFailure::TimedOut {
                steps: sb,
                partial: pb,
                ..
            },
        ) = (fa, fb)
        else {
            panic!("both runs must time out identically");
        };
        assert_eq!(sa, sb);
        assert_eq!(pa, pb);
    }
    assert_eq!(a.deterministic_digest(), b.deterministic_digest());
}

/// Runs `spec` to completion in `sessions` journaled sessions (each
/// killed at a deterministic completed-run boundary) and returns the
/// final report.
fn run_in_sessions(
    spec_for: impl Fn() -> CampaignSpec,
    workers: usize,
    kill_points: &[u64],
) -> CampaignReport {
    let journal = Arc::new(Journal::memory());
    for &k in kill_points {
        let partial = Campaign::new(spec_for())
            .workers(workers)
            .journal(Arc::clone(&journal))
            .halt_after(k)
            .run()
            .unwrap();
        assert!(partial.halted, "kill point {k} must actually halt");
    }
    Campaign::new(spec_for())
        .workers(workers)
        .resume(Arc::clone(&journal))
        .run()
        .unwrap()
}

#[test]
fn killed_campaigns_resume_bit_exactly_at_any_worker_count() {
    let reference = Campaign::new(small_spec()).workers(4).run().unwrap();
    let items = reference.results.len() as u64;
    let mut rng = SplitMix64::new(0xD1E0F5E55);
    for workers in [1usize, 2, 8] {
        // Kill twice at random completed-run boundaries, then finish.
        let k1 = rng.range_u64(1, items - 1);
        let k2 = rng.range_u64(1, items - k1);
        let resumed = run_in_sessions(small_spec, workers, &[k1, k2]);

        assert!(!resumed.halted);
        assert!(
            resumed.counters.resumed >= k1,
            "the first session journaled at least its halt quota"
        );
        assert_eq!(resumed.results.len(), reference.results.len());
        for (r, reference) in resumed.results.iter().zip(&reference.results) {
            assert_eq!(r.item, reference.item);
            assert_eq!(r.metrics, reference.metrics);
            assert_eq!(r.buckets, reference.buckets);
            assert_eq!(r.compile_stats, reference.compile_stats);
        }
        assert_eq!(resumed.totals, reference.totals);
        assert_eq!(
            resumed.deterministic_digest(),
            reference.deterministic_digest(),
            "workers={workers}, kills at {k1}+{k2}"
        );
    }
}

#[test]
fn resuming_a_finished_campaign_re_executes_nothing() {
    let journal = Arc::new(Journal::memory());
    let first = Campaign::new(small_spec())
        .journal(Arc::clone(&journal))
        .run()
        .unwrap();
    let again = Campaign::new(small_spec())
        .resume(Arc::clone(&journal))
        .run()
        .unwrap();
    assert_eq!(again.counters.resumed, first.results.len() as u64);
    assert_eq!(again.counters.compile_misses, 0, "nothing re-ran");
    assert_eq!(again.deterministic_digest(), first.deterministic_digest());
}

#[test]
fn journals_from_a_different_spec_are_rejected() {
    let journal = Arc::new(Journal::memory());
    Campaign::new(small_spec())
        .journal(Arc::clone(&journal))
        .run()
        .unwrap();
    let different = small_spec().seeds([99]); // a different grid
    let err = Campaign::new(different).resume(journal).run().unwrap_err();
    match err {
        CampaignError::Journal(msg) => {
            assert!(msg.contains("fingerprint"), "unhelpful message: {msg}")
        }
        other => panic!("expected a journal rejection, got {other}"),
    }
}

#[test]
fn sink_write_failures_degrade_to_one_counted_failure() {
    let chaos = ChaosSpec {
        seed: 7,
        sink_fail_per_mille: 400,
        ..ChaosSpec::off()
    };
    let run = |workers| {
        Campaign::new(small_spec())
            .chaos(chaos)
            .workers(workers)
            .sink(Arc::new(MemorySink::new()))
            .run()
            .unwrap()
    };
    let a = run(1);
    let b = run(4);
    assert!(a.counters.dropped_records > 0, "chaos must drop something");
    let sink_failures: Vec<_> = a
        .failures
        .iter()
        .filter(|f| matches!(f, RunFailure::SinkDropped { .. }))
        .collect();
    assert_eq!(sink_failures.len(), 1, "one summary failure, not a flood");
    // Drops are keyed on the record sequence number, so the count (and
    // with it the digest) is worker-count-invariant.
    assert_eq!(a.counters.dropped_records, b.counters.dropped_records);
    assert_eq!(a.deterministic_digest(), b.deterministic_digest());
    // No metric run was harmed: results match an undegraded campaign.
    let clean = Campaign::new(small_spec()).run().unwrap();
    assert_eq!(a.results.len(), clean.results.len());
    for (r, c) in a.results.iter().zip(&clean.results) {
        assert_eq!(r.metrics, c.metrics);
    }
}
