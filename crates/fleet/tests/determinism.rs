//! The campaign engine's core guarantee: worker count changes wall-clock,
//! never results. A 1-worker and an N-worker run of the same spec must
//! agree on every deterministic byte.

use std::sync::Arc;

use gecko_fleet::{AttackCase, Campaign, CampaignSpec, Fidelity, MemorySink, SchemeKind, Workload};
use gecko_sim::experiments::VICTIM_APP;

fn mixed_spec() -> CampaignSpec {
    // Apps × schemes × attacks × seeds with wildly different item costs, so
    // N-worker scheduling genuinely interleaves completions out of order.
    CampaignSpec::new("determinism")
        .apps(["blink", "crc16", VICTIM_APP])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .attacks([
            AttackCase::none(),
            AttackCase::new(
                "27MHz@35dBm",
                gecko_emi::AttackSchedule::continuous(
                    gecko_emi::EmiSignal::new(27e6, 35.0),
                    gecko_emi::Injection::Remote { distance_m: 5.0 },
                ),
            ),
        ])
        .seeds([1, 99])
        .workload(Workload::RunFor { seconds: 0.01 })
}

#[test]
fn worker_count_does_not_change_results() {
    let solo = Campaign::new(mixed_spec()).workers(1).run().unwrap();
    let fleet = Campaign::new(mixed_spec()).workers(7).run().unwrap();

    assert_eq!(solo.results.len(), 3 * 2 * 2 * 2);
    assert_eq!(solo.results.len(), fleet.results.len());
    // Byte-identical deterministic payloads: same items, same metrics, in
    // the same order.
    for (a, b) in solo.results.iter().zip(&fleet.results) {
        assert_eq!(a.item, b.item);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.compile_stats, b.compile_stats);
    }
    assert_eq!(solo.totals, fleet.totals);
    assert_eq!(solo.counters, fleet.counters);
    assert_eq!(
        solo.deterministic_digest(),
        fleet.deterministic_digest(),
        "digest must be invariant under worker count"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    let a = Campaign::new(mixed_spec()).workers(4).run().unwrap();
    let b = Campaign::new(mixed_spec()).workers(4).run().unwrap();
    assert_eq!(a.deterministic_digest(), b.deterministic_digest());
}

#[test]
fn telemetry_counts_are_deterministic_even_if_order_is_not() {
    let sink = Arc::new(MemorySink::new());
    let report = Campaign::new(mixed_spec())
        .workers(5)
        .sink(sink.clone())
        .run()
        .unwrap();
    let n = report.results.len();
    assert_eq!(sink.count("campaign_started"), 1);
    assert_eq!(sink.count("campaign_finished"), 1);
    assert_eq!(sink.count("item_started"), n);
    assert_eq!(sink.count("item_finished"), n);
    // Each (app, scheme) compiles exactly once; everything else hits.
    assert_eq!(report.counters.compile_misses, 3 * 2);
    assert_eq!(report.counters.compile_hits, n as u64 - 3 * 2);
}

#[test]
fn fig11_style_campaign_agrees_across_worker_counts() {
    // The acceptance scenario: the full 11-app × 4-scheme grid, quick
    // fidelity, parallel vs. sequential — identical per-app numbers.
    let solo = gecko_fleet::figures::fig11(Fidelity::Quick, 1).unwrap();
    let fleet = gecko_fleet::figures::fig11(Fidelity::Quick, 4).unwrap();
    assert_eq!(solo.len(), 11 * 4);
    assert_eq!(solo, fleet);
    let reference = gecko_sim::experiments::fig11::rows(Fidelity::Quick);
    assert_eq!(solo, reference);
}
