//! The batched-campaign guarantee: `batch_size` is a wall-clock knob,
//! never a results knob. For every batch size × worker count the report
//! must carry the byte-identical per-item metrics, buckets and
//! deterministic digest as the per-item (batch = 1) reference — including
//! campaigns killed mid-flight and resumed at a *different* batch size.
//! The per-device bit-exactness argument lives in
//! `crates/sim/tests/batch.rs`; this file proves the fleet wiring on top
//! (grouping, journaling, merge order, halt semantics) adds nothing.

use std::sync::Arc;

use gecko_fleet::{AttackCase, Campaign, CampaignSpec, Journal, SchemeKind, Workload};

fn grid_spec() -> CampaignSpec {
    // Heterogeneous cells (apps × schemes × attack/clean × seeds) so each
    // lock-step group mixes programs, schemes and attack schedules.
    CampaignSpec::new("batch-grid")
        .apps(["blink", "crc16"])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .attacks([
            AttackCase::none(),
            AttackCase::new(
                "27MHz@30dBm",
                gecko_emi::AttackSchedule::continuous(
                    gecko_emi::EmiSignal::new(27e6, 30.0),
                    gecko_emi::Injection::Remote { distance_m: 5.0 },
                ),
            ),
        ])
        .seeds([1, 2])
        .workload(Workload::RunFor { seconds: 0.004 })
}

fn assert_reports_match(
    reference: &gecko_fleet::CampaignReport,
    got: &gecko_fleet::CampaignReport,
    label: &str,
) {
    assert_eq!(
        reference.results.len(),
        got.results.len(),
        "{label}: item count"
    );
    for (a, b) in reference.results.iter().zip(&got.results) {
        assert_eq!(a.item, b.item, "{label}: item order");
        assert_eq!(a.metrics, b.metrics, "{label}: metrics for {:?}", a.item);
        assert_eq!(a.buckets, b.buckets, "{label}: buckets for {:?}", a.item);
        assert_eq!(a.compile_stats, b.compile_stats, "{label}: compile stats");
    }
    assert_eq!(reference.totals, got.totals, "{label}: totals");
    assert_eq!(
        reference.deterministic_digest(),
        got.deterministic_digest(),
        "{label}: digest"
    );
}

#[test]
fn batch_size_and_worker_count_never_change_results() {
    let reference = Campaign::new(grid_spec()).workers(1).run().unwrap();
    let items = reference.results.len() as u64;
    assert_eq!(
        reference.counters.batched_runs, 0,
        "batch=1 is the per-item path"
    );

    for batch in [1usize, 7, 64, 1024] {
        for workers in [1usize, 2, 8] {
            let report = Campaign::new(grid_spec())
                .workers(workers)
                .batch_size(batch)
                .run()
                .unwrap();
            let label = format!("batch={batch}/workers={workers}");
            assert_reports_match(&reference, &report, &label);
            if batch > 1 {
                assert_eq!(
                    report.counters.batched_runs, items,
                    "{label}: every run goes through a DeviceBatch"
                );
                assert!(
                    report.counters.batch_spans > 0,
                    "{label}: the planner must commit spans"
                );
                assert!(
                    report.counters.batch_occupancy_permille > 0,
                    "{label}: occupancy must be observable"
                );
            } else {
                assert_eq!(report.counters, reference.counters, "{label}: legacy path");
            }
        }
    }
}

#[test]
fn bucketed_workloads_agree_between_batched_and_per_item_paths() {
    let spec = || {
        grid_spec().workload(Workload::Buckets {
            horizon_s: 0.004,
            bucket_s: 0.001,
        })
    };
    let reference = Campaign::new(spec()).workers(2).run().unwrap();
    assert!(
        reference.results.iter().all(|r| r.buckets.len() == 4),
        "the spec must actually produce buckets"
    );
    let batched = Campaign::new(spec())
        .workers(2)
        .batch_size(16)
        .run()
        .unwrap();
    assert_reports_match(&reference, &batched, "buckets/batch=16");
}

#[test]
fn killed_batched_campaigns_resume_bit_exactly_at_a_different_batch_size() {
    let reference = Campaign::new(grid_spec()).workers(1).run().unwrap();
    let items = reference.results.len() as u64;

    // Kill a batch=7 session after its first group boundary, then finish
    // the grid at batch=64 with a different worker count. Groups are
    // rebuilt from whatever the journal says is still pending, so the
    // layouts of the two sessions share nothing — the digest must not
    // notice.
    for workers in [1usize, 2, 8] {
        let journal = Arc::new(Journal::memory());
        let partial = Campaign::new(grid_spec())
            .workers(workers)
            .batch_size(7)
            .journal(Arc::clone(&journal))
            .halt_after(1)
            .run()
            .unwrap();
        assert!(
            partial.halted,
            "workers={workers}: a 16-item grid in groups of 7 must leave work"
        );

        let resumed = Campaign::new(grid_spec())
            .workers(workers.min(2))
            .batch_size(64)
            .resume(Arc::clone(&journal))
            .run()
            .unwrap();
        assert!(!resumed.halted);
        // The halt is cooperative at group granularity: with one worker
        // exactly the first group of 7 lands in the journal; with more,
        // every group already claimed when the flag flips still finishes,
        // so up to the whole grid may be journaled.
        if workers == 1 {
            assert_eq!(
                resumed.counters.resumed, 7,
                "one worker halts after exactly one group"
            );
        }
        assert!(
            resumed.counters.resumed >= 1 && resumed.counters.resumed <= items,
            "workers={workers}: session 1 journaled something, got {}",
            resumed.counters.resumed
        );
        assert_reports_match(
            &reference,
            &resumed,
            &format!("resume/workers={workers}/7->64"),
        );
    }

    // And the mirror image: kill a per-item session, finish batched.
    let journal = Arc::new(Journal::memory());
    Campaign::new(grid_spec())
        .workers(2)
        .journal(Arc::clone(&journal))
        .halt_after(3)
        .run()
        .unwrap();
    let resumed = Campaign::new(grid_spec())
        .workers(2)
        .batch_size(1024)
        .resume(journal)
        .run()
        .unwrap();
    assert_reports_match(&reference, &resumed, "resume/1->1024");
}
