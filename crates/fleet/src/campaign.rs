//! The campaign engine: a declarative grid of simulations, a worker pool,
//! and deterministic aggregation.
//!
//! A [`CampaignSpec`] is the cartesian product
//! `apps × schemes × devices × attacks × faults × seeds`;
//! [`CampaignSpec::expand`]
//! flattens it into an ordered list of [`WorkItem`]s. [`Campaign::run`]
//! executes the items on `workers` std threads pulling from a shared
//! atomic cursor (a lock-free work queue over the fixed item list), with
//! every `(app, scheme, options)` compilation going through the shared
//! [`ProgramCache`].
//!
//! **Determinism.** Each item's simulation depends only on its `SimConfig`
//! — never on scheduling — and results are merged back **in item order**
//! after the pool joins. A campaign therefore produces bit-identical
//! [`CampaignReport::deterministic_digest`] values for any worker count;
//! only wall-clock fields differ.
//!
//! **Supervision.** Every run executes under the supervision layer
//! ([`crate::supervisor`]): panics are quarantined into structured
//! [`RunFailure`]s, step/wall budgets flag pathological cells instead of
//! hanging on them, transient faults retry with deterministic backoff,
//! and an optional [`Journal`] checkpoints completed runs so a killed
//! campaign resumes bit-exactly ([`Campaign::resume`]).

use std::sync::Arc;
use std::time::Instant;

use gecko_apps::App;
use gecko_compiler::{CompileError, CompileOptions, CompileStats};
use gecko_emi::{AttackSchedule, DeviceModel, FaultSchedule, MonitorKind};
use gecko_energy::{ConstantPower, StarvedHarvester};
use gecko_sim::report::Value;
use gecko_sim::{BatchStats, DeviceBatch, Metrics, SchemeKind, SimConfig, Simulator};

use crate::cache::ProgramCache;
use crate::journal::{self, Journal};
use crate::supervisor::{
    run_supervised, AttemptFail, ChaosSink, ChaosSpec, ItemOutcome, PoolConfig, RunBudget,
    RunFailure, SupervisorSpec,
};
use crate::telemetry::{Event, FleetCounters, Histogram, NullSink, TelemetrySink};

/// Steps per cooperative budget check: small enough that step budgets and
/// wall deadlines fire promptly, large enough to stay invisible next to
/// the fast path's dispatch loop.
const BUDGET_SLICE_STEPS: u64 = 1 << 16;

/// The power environment every item runs in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Supply {
    /// Generous DC bench supply (`SimConfig::bench_supply`).
    Bench,
    /// Constant harvested power of `power_w` watts
    /// (`SimConfig::harvesting` uses 1.2 mW).
    Harvesting {
        /// Average harvested power (W).
        power_w: f64,
    },
    /// Constant harvested power squeezed through a
    /// [`StarvedHarvester`]: an adversary attenuates the incoming RF for
    /// `starve_s` out of every `period_s` (Singhal et al.'s
    /// energy-starvation attack).
    Starved {
        /// Legitimate harvested power outside the attack window (W).
        power_w: f64,
        /// Attack period (s).
        period_s: f64,
        /// Starvation window at the start of each period (s).
        starve_s: f64,
        /// Power multiplier inside the window, in `[0, 1]`.
        attenuation: f64,
    },
}

/// Energy-buffer override.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitorSpec {
    /// Capacitance (F).
    pub capacitance_f: f64,
    /// Initial voltage (V).
    pub initial_voltage_v: f64,
    /// Rescale the threshold ladder to match the 1 mF reference energy
    /// (the paper's Section VII-D methodology).
    pub rescale_thresholds: bool,
}

/// What each item simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// `run_for(seconds)`.
    RunFor {
        /// Device time to simulate (s).
        seconds: f64,
    },
    /// `run_until_completions(n, max_seconds)`.
    UntilCompletions {
        /// Completions to reach.
        n: u64,
        /// Give-up horizon (s).
        max_seconds: f64,
    },
    /// `run_for(bucket_s)` repeated over `horizon_s`, recording the
    /// cumulative metrics at each bucket edge (timeline experiments like
    /// Figure 13).
    Buckets {
        /// Total device time (s).
        horizon_s: f64,
        /// Bucket length (s).
        bucket_s: f64,
    },
}

/// A labeled attack schedule (one point on the attack axis).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCase {
    /// Label used in reports ("none", "27MHz@35dBm", scenario "d", ...).
    pub label: String,
    /// The schedule (empty = unattacked).
    pub schedule: AttackSchedule,
}

impl AttackCase {
    /// The unattacked case.
    pub fn none() -> AttackCase {
        AttackCase {
            label: "none".to_string(),
            schedule: AttackSchedule::none(),
        }
    }

    /// A labeled case.
    pub fn new(label: impl Into<String>, schedule: AttackSchedule) -> AttackCase {
        AttackCase {
            label: label.into(),
            schedule,
        }
    }
}

/// A labeled EM instruction-fault schedule (one point on the fault axis).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCase {
    /// Label used in reports ("none", "skip@2ms", ...).
    pub label: String,
    /// The schedule (no armed windows = fault-free).
    pub schedule: FaultSchedule,
}

impl FaultCase {
    /// The fault-free case.
    pub fn none() -> FaultCase {
        FaultCase {
            label: "none".to_string(),
            schedule: FaultSchedule::none(),
        }
    }

    /// A labeled case.
    pub fn new(label: impl Into<String>, schedule: FaultSchedule) -> FaultCase {
        FaultCase {
            label: label.into(),
            schedule,
        }
    }
}

/// A board model + the monitor driving its JIT protocol (one point on the
/// device axis).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCase {
    /// The board's susceptibility model.
    pub device: DeviceModel,
    /// The voltage monitor in use.
    pub monitor: MonitorKind,
}

impl DeviceCase {
    /// Builds a case.
    pub fn new(device: DeviceModel, monitor: MonitorKind) -> DeviceCase {
        DeviceCase { device, monitor }
    }

    /// The default lab board: MSP430FR5994 through its ADC.
    pub fn default_board() -> DeviceCase {
        DeviceCase::new(gecko_emi::devices::msp430fr5994(), MonitorKind::Adc)
    }
}

/// A declarative Monte-Carlo campaign over the evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (reports, telemetry).
    pub name: String,
    /// App names (resolved via `gecko_apps::app_by_name`).
    pub apps: Vec<String>,
    /// Scheme axis.
    pub schemes: Vec<SchemeKind>,
    /// Device axis.
    pub devices: Vec<DeviceCase>,
    /// Attack axis.
    pub attacks: Vec<AttackCase>,
    /// EM instruction-fault axis.
    pub faults: Vec<FaultCase>,
    /// Peripheral-seed axis (Monte-Carlo dimension).
    pub seeds: Vec<u64>,
    /// Power environment.
    pub supply: Supply,
    /// Optional energy-buffer override.
    pub capacitor: Option<CapacitorSpec>,
    /// Optional ADC median filter (taps).
    pub adc_filter_taps: Option<usize>,
    /// Compiler options for the instrumented schemes.
    pub compile: CompileOptions,
    /// What each item runs.
    pub workload: Workload,
}

impl CampaignSpec {
    /// A campaign with the default single-point axes: the lab board, no
    /// attack, seed 7 (matching `SimConfig::bench_supply`).
    pub fn new(name: impl Into<String>) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            apps: Vec::new(),
            schemes: vec![SchemeKind::Gecko],
            devices: vec![DeviceCase::default_board()],
            attacks: vec![AttackCase::none()],
            faults: vec![FaultCase::none()],
            seeds: vec![7],
            supply: Supply::Bench,
            capacitor: None,
            adc_filter_taps: None,
            compile: CompileOptions::default(),
            workload: Workload::RunFor { seconds: 0.05 },
        }
    }

    /// Replaces the app axis (builder style).
    pub fn apps<I: IntoIterator<Item = S>, S: Into<String>>(mut self, apps: I) -> CampaignSpec {
        self.apps = apps.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the scheme axis (builder style).
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SchemeKind>) -> CampaignSpec {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Replaces the device axis (builder style).
    pub fn devices(mut self, devices: impl IntoIterator<Item = DeviceCase>) -> CampaignSpec {
        self.devices = devices.into_iter().collect();
        self
    }

    /// Replaces the attack axis (builder style).
    pub fn attacks(mut self, attacks: impl IntoIterator<Item = AttackCase>) -> CampaignSpec {
        self.attacks = attacks.into_iter().collect();
        self
    }

    /// Replaces the EM instruction-fault axis (builder style).
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultCase>) -> CampaignSpec {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Replaces the seed axis (builder style).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> CampaignSpec {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the power environment (builder style).
    pub fn supply(mut self, supply: Supply) -> CampaignSpec {
        self.supply = supply;
        self
    }

    /// Sets the energy buffer (builder style).
    pub fn capacitor(mut self, cap: CapacitorSpec) -> CampaignSpec {
        self.capacitor = Some(cap);
        self
    }

    /// Sets the workload (builder style).
    pub fn workload(mut self, workload: Workload) -> CampaignSpec {
        self.workload = workload;
        self
    }

    /// Flattens the grid into ordered work items:
    /// `for app { for scheme { for device { for attack { for fault { for seed }}}}}`.
    pub fn expand(&self) -> Vec<WorkItem> {
        let mut items = Vec::with_capacity(
            self.apps.len()
                * self.schemes.len()
                * self.devices.len()
                * self.attacks.len()
                * self.faults.len()
                * self.seeds.len(),
        );
        for (app_idx, _) in self.apps.iter().enumerate() {
            for (scheme_idx, _) in self.schemes.iter().enumerate() {
                for (device_idx, _) in self.devices.iter().enumerate() {
                    for (attack_idx, _) in self.attacks.iter().enumerate() {
                        for (fault_idx, _) in self.faults.iter().enumerate() {
                            for (seed_idx, _) in self.seeds.iter().enumerate() {
                                items.push(WorkItem {
                                    index: items.len(),
                                    app_idx,
                                    scheme_idx,
                                    device_idx,
                                    attack_idx,
                                    fault_idx,
                                    seed_idx,
                                });
                            }
                        }
                    }
                }
            }
        }
        items
    }

    /// Builds the `SimConfig` for one item — the *only* place physical
    /// configuration is derived, so the parallel and sequential paths
    /// cannot drift apart.
    pub fn config_for(&self, item: &WorkItem) -> SimConfig {
        let scheme = self.schemes[item.scheme_idx];
        let mut cfg = match self.supply {
            Supply::Bench => SimConfig::bench_supply(scheme),
            Supply::Harvesting { power_w } => {
                let mut cfg = SimConfig::harvesting(scheme);
                cfg.harvester = Box::new(ConstantPower::new(power_w));
                cfg
            }
            Supply::Starved {
                power_w,
                period_s,
                starve_s,
                attenuation,
            } => {
                let mut cfg = SimConfig::harvesting(scheme);
                cfg.harvester = Box::new(StarvedHarvester::new(
                    Box::new(ConstantPower::new(power_w)),
                    period_s,
                    starve_s,
                    attenuation,
                ));
                cfg
            }
        };
        let device = &self.devices[item.device_idx];
        cfg = cfg.with_device(device.device.clone(), device.monitor);
        let attack = &self.attacks[item.attack_idx];
        if !attack.schedule.is_empty() {
            cfg = cfg.with_attack(attack.schedule.clone());
        }
        let fault = &self.faults[item.fault_idx];
        if !fault.schedule.is_empty() {
            cfg = cfg.with_fault(fault.schedule.clone());
        }
        if let Some(cap) = self.capacitor {
            cfg = if cap.rescale_thresholds {
                cfg.with_rescaled_capacitor(cap.capacitance_f, cap.initial_voltage_v)
            } else {
                cfg.with_capacitor(cap.capacitance_f, cap.initial_voltage_v)
            };
        }
        cfg.adc_filter_taps = self.adc_filter_taps;
        cfg.compile = self.compile;
        cfg.seed = self.seeds[item.seed_idx];
        cfg
    }

    /// Stable identity of one run: an FNV-1a hash of the cell's app name,
    /// scheme name, device index, attack label, fault label, and
    /// peripheral seed. Run keys identify completed runs in a resume
    /// [`Journal`] and seed the per-run chaos/backoff streams, so they
    /// must not depend on scheduling — and they don't: they are pure
    /// functions of the spec.
    pub fn run_key(&self, item: &WorkItem) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_str(&mut h, &self.apps[item.app_idx]);
        fnv_str(&mut h, self.schemes[item.scheme_idx].name());
        fnv_u64(&mut h, item.device_idx as u64);
        fnv_str(&mut h, &self.attacks[item.attack_idx].label);
        fnv_str(&mut h, &self.faults[item.fault_idx].label);
        fnv_u64(&mut h, self.seeds[item.seed_idx]);
        h
    }

    /// A fingerprint of everything that determines the grid's results:
    /// the name, every run key (in item order), the power environment,
    /// capacitor, ADC filter, the cache-relevant compile options, and the
    /// workload. A journal carrying a different fingerprint is refused at
    /// resume time — merging results from a different campaign would
    /// silently corrupt the report.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_str(&mut h, &self.name);
        let items = self.expand();
        fnv_u64(&mut h, items.len() as u64);
        for item in &items {
            fnv_u64(&mut h, self.run_key(item));
        }
        match self.supply {
            Supply::Bench => fnv_u64(&mut h, 0),
            Supply::Harvesting { power_w } => {
                fnv_u64(&mut h, 1);
                fnv_u64(&mut h, power_w.to_bits());
            }
            Supply::Starved {
                power_w,
                period_s,
                starve_s,
                attenuation,
            } => {
                fnv_u64(&mut h, 2);
                fnv_u64(&mut h, power_w.to_bits());
                fnv_u64(&mut h, period_s.to_bits());
                fnv_u64(&mut h, starve_s.to_bits());
                fnv_u64(&mut h, attenuation.to_bits());
            }
        }
        match self.capacitor {
            None => fnv_u64(&mut h, 0),
            Some(cap) => {
                fnv_u64(&mut h, 1);
                fnv_u64(&mut h, cap.capacitance_f.to_bits());
                fnv_u64(&mut h, cap.initial_voltage_v.to_bits());
                fnv_u64(&mut h, cap.rescale_thresholds as u64);
            }
        }
        fnv_u64(&mut h, self.adc_filter_taps.map_or(u64::MAX, |t| t as u64));
        fnv_u64(
            &mut h,
            self.compile.wcet_budget_cycles.map_or(u64::MAX, |c| c),
        );
        fnv_u64(&mut h, self.compile.prune as u64);
        fnv_u64(&mut h, self.compile.max_slice_insts as u64);
        match self.workload {
            Workload::RunFor { seconds } => {
                fnv_u64(&mut h, 0);
                fnv_u64(&mut h, seconds.to_bits());
            }
            Workload::UntilCompletions { n, max_seconds } => {
                fnv_u64(&mut h, 1);
                fnv_u64(&mut h, n);
                fnv_u64(&mut h, max_seconds.to_bits());
            }
            Workload::Buckets {
                horizon_s,
                bucket_s,
            } => {
                fnv_u64(&mut h, 2);
                fnv_u64(&mut h, horizon_s.to_bits());
                fnv_u64(&mut h, bucket_s.to_bits());
            }
        }
        h
    }

    /// The simulated seconds one run covers — what step budgets derive
    /// from.
    pub fn workload_seconds(&self) -> f64 {
        match self.workload {
            Workload::RunFor { seconds } => seconds,
            Workload::UntilCompletions { max_seconds, .. } => max_seconds,
            Workload::Buckets { horizon_s, .. } => horizon_s,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv_u64(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h ^= byte as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_str(h: &mut u64, s: &str) {
    fnv_u64(h, s.len() as u64);
    for byte in s.as_bytes() {
        *h ^= *byte as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// One cell of the expanded grid (axis indices into the spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Position in the expanded list (aggregation order).
    pub index: usize,
    /// Index into `spec.apps`.
    pub app_idx: usize,
    /// Index into `spec.schemes`.
    pub scheme_idx: usize,
    /// Index into `spec.devices`.
    pub device_idx: usize,
    /// Index into `spec.attacks`.
    pub attack_idx: usize,
    /// Index into `spec.faults`.
    pub fault_idx: usize,
    /// Index into `spec.seeds`.
    pub seed_idx: usize,
}

/// One finished item.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The grid cell.
    pub item: WorkItem,
    /// Final cumulative metrics.
    pub metrics: Metrics,
    /// Cumulative metrics at each bucket edge (empty unless the workload
    /// is [`Workload::Buckets`]).
    pub buckets: Vec<Metrics>,
    /// Static compiler statistics of the (shared) artifact.
    pub compile_stats: CompileStats,
    /// Whether the artifact came from the cache (vs. compiled here).
    pub cache_hit: bool,
    /// Wall-clock nanoseconds this item took (non-deterministic; excluded
    /// from the digest).
    pub wall_ns: u64,
}

/// Campaign failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// An app name did not resolve.
    UnknownApp(String),
    /// The grid is empty (some axis has no points).
    EmptyGrid,
    /// A cell failed to compile.
    Compile {
        /// App name.
        app: String,
        /// Scheme.
        scheme: SchemeKind,
        /// The compiler's error.
        error: CompileError,
    },
    /// The resume journal does not belong to this campaign (fingerprint
    /// mismatch) or is otherwise unusable.
    Journal(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::UnknownApp(name) => write!(f, "unknown app {name:?}"),
            CampaignError::EmptyGrid => write!(f, "campaign grid is empty"),
            CampaignError::Compile { app, scheme, error } => {
                write!(f, "compiling {app} for {scheme}: {error:?}")
            }
            CampaignError::Journal(msg) => write!(f, "resume journal rejected: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// A configured, runnable campaign.
pub struct Campaign {
    spec: CampaignSpec,
    workers: usize,
    batch: usize,
    sink: Arc<dyn TelemetrySink>,
    sup: SupervisorSpec,
    journal: Option<Arc<Journal>>,
    halt_after: Option<u64>,
    kill_switch: Option<Arc<std::sync::atomic::AtomicBool>>,
}

impl Campaign {
    /// Wraps a spec with 1 worker, per-item execution (batch size 1), no
    /// telemetry sink, and the default supervision policy.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign {
            spec,
            workers: 1,
            batch: 1,
            sink: Arc::new(NullSink),
            sup: SupervisorSpec::default(),
            journal: None,
            halt_after: None,
            kill_switch: None,
        }
    }

    /// Sets the worker-pool size (builder style; clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Campaign {
        self.workers = workers.max(1);
        self
    }

    /// Sets the lock-step batch size (builder style; clamped to ≥ 1).
    /// With `n > 1`, each worker claims up to `n` consecutive pending
    /// items at a time and steps their devices lock-step through one
    /// [`gecko_sim::DeviceBatch`], sizing every ON-state span in a single
    /// structure-of-arrays solver pass. Results are bit-identical to
    /// per-item execution at any batch size and worker count — the
    /// journal/resume vocabulary, run keys, and fingerprints are pure
    /// functions of the spec, so a journal written at one batch size
    /// resumes at any other (see DESIGN.md §16).
    pub fn batch_size(mut self, n: usize) -> Campaign {
        self.batch = n.max(1);
        self
    }

    /// Attaches a telemetry sink (builder style).
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> Campaign {
        self.sink = sink;
        self
    }

    /// Overrides the supervision policy (builder style): budgets, retry
    /// schedule, chaos.
    pub fn supervisor(mut self, sup: SupervisorSpec) -> Campaign {
        self.sup = sup;
        self
    }

    /// Enables chaos injection (builder style) without touching the rest
    /// of the supervision policy.
    pub fn chaos(mut self, chaos: ChaosSpec) -> Campaign {
        self.sup.chaos = chaos;
        self
    }

    /// Attaches a journal (builder style): completed runs are appended as
    /// they finish, and runs already present are skipped. Attaching a
    /// journal from a previous (killed) session of the *same* spec is how
    /// a campaign resumes; a journal whose fingerprint belongs to a
    /// different spec is refused with [`CampaignError::Journal`].
    pub fn journal(mut self, journal: Arc<Journal>) -> Campaign {
        self.journal = Some(journal);
        self
    }

    /// Alias for [`Campaign::journal`] that reads better at the call site
    /// when the journal already has content: resume the campaign, skipping
    /// every journaled run. The merged report is bit-exact against an
    /// uninterrupted run at any worker count.
    pub fn resume(self, journal: Arc<Journal>) -> Campaign {
        self.journal(journal)
    }

    /// Stops claiming new runs once `n` runs have been accounted this
    /// session (builder style) — the deterministic "kill at a completed-run
    /// boundary" hook the kill/resume tests are built on. The report's
    /// `halted` flag records that the campaign stopped early.
    pub fn halt_after(mut self, n: u64) -> Campaign {
        self.halt_after = Some(n);
        self
    }

    /// Attaches a cooperative kill switch (builder style): when another
    /// thread flips the flag, workers finish (and journal) the run they
    /// are on, stop claiming new ones, and the report comes back with
    /// `halted` set. Combined with [`Campaign::journal`], this is the
    /// graceful-shutdown seam — a daemon drains in-flight work to a clean
    /// checkpoint instead of abandoning it, and a later
    /// [`Campaign::resume`] continues bit-exactly.
    pub fn kill_switch(mut self, stop: Arc<std::sync::atomic::AtomicBool>) -> Campaign {
        self.kill_switch = Some(stop);
        self
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Executes the campaign: expand, restore journaled runs, fan out
    /// under supervision, merge deterministically.
    ///
    /// # Errors
    ///
    /// Returns the first (in item order) resolution or compile error, or
    /// [`CampaignError::Journal`] when a resume journal belongs to a
    /// different spec. Panics, budget overruns and exhausted retries are
    /// *not* errors — they land in [`CampaignReport::failures`].
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let spec = &self.spec;
        let apps: Vec<App> = spec
            .apps
            .iter()
            .map(|name| {
                gecko_apps::app_by_name(name).ok_or_else(|| CampaignError::UnknownApp(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let items = spec.expand();
        if items.is_empty() {
            return Err(CampaignError::EmptyGrid);
        }
        let workers = self.workers.min(items.len());
        let cache = ProgramCache::new();

        let chaos = self.sup.chaos;
        let sink: Arc<dyn TelemetrySink> = if chaos.sink_fail_per_mille > 0 {
            Arc::new(ChaosSink::new(
                Arc::clone(&self.sink),
                chaos.seed,
                chaos.sink_fail_per_mille,
            ))
        } else {
            Arc::clone(&self.sink)
        };

        let run_keys: Vec<u64> = items.iter().map(|item| spec.run_key(item)).collect();
        let fingerprint = spec.fingerprint();

        // Restore completed runs from the journal (and stamp the header
        // on a fresh one).
        let mut skip = vec![false; items.len()];
        let mut restored: Vec<Option<RunResult>> = vec![None; items.len()];
        if let Some(journal) = &self.journal {
            let (header, runs) = journal::decode_campaign(&journal.lines());
            match header {
                Some((name, fp)) if fp != fingerprint => {
                    return Err(CampaignError::Journal(format!(
                        "journal belongs to campaign {name:?} (fingerprint {fp:#018x}), \
                         not this spec (fingerprint {fingerprint:#018x})"
                    )));
                }
                Some(_) => {}
                None => journal.append(&journal::encode_header(&spec.name, fingerprint)),
            }
            for (i, key) in run_keys.iter().enumerate() {
                if let Some(run) = runs.get(key) {
                    if run.item == i {
                        skip[i] = true;
                        restored[i] = Some(RunResult {
                            item: items[i],
                            metrics: run.metrics,
                            buckets: run.buckets.clone(),
                            compile_stats: run.compile_stats,
                            cache_hit: run.cache_hit,
                            wall_ns: run.wall_ns,
                        });
                    }
                }
            }
        }
        let resumed = skip.iter().filter(|&&s| s).count() as u64;

        if self.batch > 1 {
            return self.run_batched(
                &apps, &items, &cache, &sink, &run_keys, &skip, restored, resumed,
            );
        }

        sink.emit(Event::new(
            "campaign_started",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("items", Value::U64(items.len() as u64)),
                ("workers", Value::U64(workers as u64)),
                ("resumed", Value::U64(resumed)),
            ],
        ));

        let started = Instant::now();
        let budget = self.sup.resolve_budget(spec.workload_seconds());
        let pool_cfg = PoolConfig {
            workers,
            run_keys: &run_keys,
            skip: &skip,
            sup: &self.sup,
            budget,
            halt_after: self.halt_after.map(|n| n + resumed),
            stop: self.kill_switch.as_deref(),
            claim: None,
            sink: &sink,
        };
        let journal = self.journal.as_deref();
        let pool = run_supervised(&pool_cfg, |i, attempt, budget, attempt_started| {
            let item = items[i];
            sink.emit(Event::new(
                "item_started",
                vec![
                    ("item", Value::U64(i as u64)),
                    ("attempt", Value::U64(attempt as u64)),
                    ("app", Value::Str(spec.apps[item.app_idx].clone())),
                    (
                        "scheme",
                        Value::Str(spec.schemes[item.scheme_idx].name().to_string()),
                    ),
                    (
                        "attack",
                        Value::Str(spec.attacks[item.attack_idx].label.clone()),
                    ),
                ],
            ));
            let result = match run_item_budgeted(
                spec,
                &apps[item.app_idx],
                item,
                &cache,
                budget,
                attempt_started,
            )? {
                Ok(r) => r,
                Err(e) => return Ok(Err(e)),
            };
            if let Some(journal) = journal {
                for line in journal::encode_run(run_keys[i], &result) {
                    journal.append(&line);
                }
            }
            sink.emit(Event::new(
                "item_finished",
                vec![
                    ("item", Value::U64(i as u64)),
                    ("completions", Value::U64(result.metrics.completions)),
                    ("forward_cycles", Value::U64(result.metrics.forward_cycles)),
                    (
                        "checksum_errors",
                        Value::U64(result.metrics.checksum_errors),
                    ),
                    ("wall_ns", Value::U64(result.wall_ns)),
                    ("cache_hit", Value::Bool(result.cache_hit)),
                ],
            ));
            Ok(Ok(result))
        });

        // Checkpoint boundary: every run journaled by the pool is forced
        // to stable storage before the report claims it happened (sync
        // failures degrade to the drop counter like any other journal
        // I/O). Per-run appends stay fsync-free to keep the clean path
        // cheap.
        if let Some(journal) = journal {
            journal.sync();
        }
        let wall_s = started.elapsed().as_secs_f64();

        // Deterministic merge: walk slots in item order; journaled runs
        // fill their slots, fresh results and failures fill the rest.
        let mut results = Vec::with_capacity(items.len());
        let mut failures = Vec::new();
        for (i, slot) in pool.outcomes.into_iter().enumerate() {
            if skip[i] {
                results.push(restored[i].take().expect("restored above"));
                continue;
            }
            match slot {
                // Unclaimed is only reachable after a halt (or behind a
                // crashed supervisor worker, which the pool reports).
                None => debug_assert!(pool.halted, "item {i} unclaimed without a halt"),
                Some(ItemOutcome::Done(Ok(r))) => results.push(r),
                Some(ItemOutcome::Done(Err(e))) => return Err(e),
                Some(ItemOutcome::Failed(f)) => failures.push(f),
            }
        }
        let dropped_records =
            sink.dropped_records() + self.journal.as_ref().map_or(0, |j| j.dropped());
        if dropped_records > 0 {
            sink.emit(Event::new(
                "sink_dropped",
                vec![("dropped", Value::U64(dropped_records))],
            ));
            failures.push(RunFailure::SinkDropped {
                dropped: dropped_records,
            });
        }

        let mut totals = Metrics::default();
        let mut item_wall = Histogram::new();
        for r in &results {
            totals.absorb(&r.metrics);
            item_wall.record(r.wall_ns);
        }
        let counters = FleetCounters {
            items: results.len() as u64,
            compile_misses: cache.misses(),
            compile_hits: cache.hits(),
            failures: failures
                .iter()
                .filter(|f| !matches!(f, RunFailure::SinkDropped { .. }))
                .count() as u64,
            retries: pool.retries,
            resumed,
            dropped_records,
            ..FleetCounters::default()
        };

        sink.emit(Event::new(
            "campaign_finished",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("items", Value::U64(counters.items)),
                ("completions", Value::U64(totals.completions)),
                ("wall_s", Value::F64(wall_s)),
                ("compile_misses", Value::U64(counters.compile_misses)),
                ("compile_hits", Value::U64(counters.compile_hits)),
                ("failures", Value::U64(counters.failures)),
                ("resumed", Value::U64(counters.resumed)),
                ("halted", Value::Bool(pool.halted)),
            ],
        ));
        sink.flush();

        Ok(CampaignReport {
            spec: spec.clone(),
            workers,
            results,
            failures,
            totals,
            counters,
            item_wall,
            wall_s,
            halted: pool.halted,
        })
    }

    /// The lock-step execution path behind [`Campaign::batch_size`]:
    /// pending (non-resumed) items are sharded, in item order, into groups
    /// of up to `batch`, and each worker claims one *group* at a time,
    /// stepping its devices through a [`DeviceBatch`]. Everything
    /// observable — per-item metrics, the journal vocabulary, the
    /// deterministic digest — is bit-identical to per-item execution:
    /// devices are independent, the batch planner commits exactly the
    /// spans each device would size for itself, and run keys/fingerprints
    /// never see the group layout. Group identity (the supervision and
    /// chaos key) is the FNV fold of the member run keys, so it is
    /// worker-count-invariant but, by design, batch-size-*variant* — only
    /// failure injection keys off it, never results.
    #[allow(clippy::too_many_arguments)]
    fn run_batched(
        &self,
        apps: &[App],
        items: &[WorkItem],
        cache: &ProgramCache,
        sink: &Arc<dyn TelemetrySink>,
        run_keys: &[u64],
        skip: &[bool],
        mut restored: Vec<Option<RunResult>>,
        resumed: u64,
    ) -> Result<CampaignReport, CampaignError> {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

        let spec = &self.spec;
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        for (i, &skipped) in skip.iter().enumerate() {
            if skipped {
                continue;
            }
            current.push(i);
            if current.len() == self.batch {
                groups.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }
        let group_keys: Vec<u64> = groups
            .iter()
            .map(|g| {
                let mut h = FNV_OFFSET;
                for &i in g {
                    fnv_u64(&mut h, run_keys[i]);
                }
                h
            })
            .collect();
        let group_skip = vec![false; groups.len()];
        let workers = self.workers.min(groups.len()).max(1);

        sink.emit(Event::new(
            "campaign_started",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("items", Value::U64(items.len() as u64)),
                ("workers", Value::U64(workers as u64)),
                ("batch", Value::U64(self.batch as u64)),
                ("groups", Value::U64(groups.len() as u64)),
                ("resumed", Value::U64(resumed)),
            ],
        ));

        let started = Instant::now();
        let budget = self.sup.resolve_budget(spec.workload_seconds());
        // The pool's post-hoc deadline check must tolerate a full group's
        // worth of work; the cooperative per-group checks below scale to
        // the actual member count.
        let pool_budget = RunBudget {
            max_steps: budget.max_steps,
            deadline: budget
                .deadline
                .saturating_mul(u32::try_from(self.batch).unwrap_or(u32::MAX)),
        };
        // Halt/drain bridge: `halt_after` and the user kill switch act at
        // group granularity — a worker finishes (and journals) the group
        // it is on, then stops claiming.
        let internal_stop = AtomicBool::new(false);
        let accounted = AtomicU64::new(resumed);
        let halt_quota = self.halt_after.map(|n| n + resumed);
        let kill_switch = self.kill_switch.as_deref();

        let pool_cfg = PoolConfig {
            workers,
            run_keys: &group_keys,
            skip: &group_skip,
            sup: &self.sup,
            budget: pool_budget,
            halt_after: None,
            stop: Some(&internal_stop),
            claim: None,
            sink,
        };
        let journal = self.journal.as_deref();
        let pool = run_supervised(&pool_cfg, |g, attempt, _budget, attempt_started| {
            let members = &groups[g];
            let t0 = Instant::now();
            let mut sims = Vec::with_capacity(members.len());
            let mut meta = Vec::with_capacity(members.len());
            for &i in members {
                let item = items[i];
                sink.emit(Event::new(
                    "item_started",
                    vec![
                        ("item", Value::U64(i as u64)),
                        ("attempt", Value::U64(attempt as u64)),
                        ("batch", Value::U64(members.len() as u64)),
                        ("app", Value::Str(spec.apps[item.app_idx].clone())),
                        (
                            "scheme",
                            Value::Str(spec.schemes[item.scheme_idx].name().to_string()),
                        ),
                        (
                            "attack",
                            Value::Str(spec.attacks[item.attack_idx].label.clone()),
                        ),
                    ],
                ));
                let scheme = spec.schemes[item.scheme_idx];
                let (compiled, cache_hit) =
                    match cache.get_or_compile(&apps[item.app_idx], scheme, &spec.compile) {
                        Ok(found) => found,
                        Err(error) => {
                            return Ok(Err(CampaignError::Compile {
                                app: spec.apps[item.app_idx].clone(),
                                scheme,
                                error,
                            }))
                        }
                    };
                sims.push(Simulator::from_compiled(&compiled, spec.config_for(&item)));
                meta.push((compiled.stats, cache_hit));
            }
            let group_budget = RunBudget {
                max_steps: budget.max_steps.saturating_mul(members.len() as u64),
                deadline: budget
                    .deadline
                    .saturating_mul(u32::try_from(members.len()).unwrap_or(u32::MAX)),
            };
            let mut dbatch = DeviceBatch::new(sims);
            let (all_metrics, all_buckets) = run_batch_workload_budgeted(
                &mut dbatch,
                spec.workload,
                &group_budget,
                attempt_started,
            )?;
            let stats = dbatch.stats();
            let wall_each = (t0.elapsed().as_nanos() as u64) / members.len().max(1) as u64;
            let mut results = Vec::with_capacity(members.len());
            for (k, (&i, buckets)) in members.iter().zip(all_buckets).enumerate() {
                let result = RunResult {
                    item: items[i],
                    metrics: all_metrics[k],
                    buckets,
                    compile_stats: meta[k].0,
                    cache_hit: meta[k].1,
                    wall_ns: wall_each,
                };
                if let Some(journal) = journal {
                    for line in journal::encode_run(run_keys[i], &result) {
                        journal.append(&line);
                    }
                }
                sink.emit(Event::new(
                    "item_finished",
                    vec![
                        ("item", Value::U64(i as u64)),
                        ("completions", Value::U64(result.metrics.completions)),
                        ("forward_cycles", Value::U64(result.metrics.forward_cycles)),
                        (
                            "checksum_errors",
                            Value::U64(result.metrics.checksum_errors),
                        ),
                        ("wall_ns", Value::U64(result.wall_ns)),
                        ("cache_hit", Value::Bool(result.cache_hit)),
                    ],
                ));
                results.push(result);
            }
            let done =
                accounted.fetch_add(members.len() as u64, Ordering::Relaxed) + members.len() as u64;
            if halt_quota.is_some_and(|h| done >= h) {
                internal_stop.store(true, Ordering::Relaxed);
            }
            if kill_switch.is_some_and(|s| s.load(Ordering::Relaxed)) {
                internal_stop.store(true, Ordering::Relaxed);
            }
            Ok(Ok(GroupOutcome { results, stats }))
        });

        if let Some(journal) = journal {
            journal.sync();
        }
        let wall_s = started.elapsed().as_secs_f64();

        // Flatten group outcomes onto per-item slots, then merge in item
        // order exactly like the per-item path. A failed group fails each
        // member under its own run key.
        let mut slots: Vec<Option<Result<RunResult, RunFailure>>> =
            (0..items.len()).map(|_| None).collect();
        let mut batch_stats = BatchStats::default();
        let mut batched_runs = 0u64;
        for (g, outcome) in pool.outcomes.into_iter().enumerate() {
            match outcome {
                None => debug_assert!(pool.halted, "group {g} unclaimed without a halt"),
                Some(ItemOutcome::Done(Ok(out))) => {
                    batch_stats.absorb(&out.stats);
                    batched_runs += out.results.len() as u64;
                    for r in out.results {
                        let i = r.item.index;
                        slots[i] = Some(Ok(r));
                    }
                }
                Some(ItemOutcome::Done(Err(e))) => return Err(e),
                Some(ItemOutcome::Failed(f)) => {
                    for &i in &groups[g] {
                        slots[i] = Some(Err(refail_member(&f, run_keys[i], i)));
                    }
                }
            }
        }
        let mut results = Vec::with_capacity(items.len());
        let mut failures = Vec::new();
        for i in 0..items.len() {
            if skip[i] {
                results.push(restored[i].take().expect("restored above"));
                continue;
            }
            match slots[i].take() {
                None => debug_assert!(pool.halted, "item {i} unclaimed without a halt"),
                Some(Ok(r)) => results.push(r),
                Some(Err(f)) => failures.push(f),
            }
        }
        let dropped_records =
            sink.dropped_records() + self.journal.as_ref().map_or(0, |j| j.dropped());
        if dropped_records > 0 {
            sink.emit(Event::new(
                "sink_dropped",
                vec![("dropped", Value::U64(dropped_records))],
            ));
            failures.push(RunFailure::SinkDropped {
                dropped: dropped_records,
            });
        }

        let mut totals = Metrics::default();
        let mut item_wall = Histogram::new();
        for r in &results {
            totals.absorb(&r.metrics);
            item_wall.record(r.wall_ns);
        }
        let counters = FleetCounters {
            items: results.len() as u64,
            compile_misses: cache.misses(),
            compile_hits: cache.hits(),
            failures: failures
                .iter()
                .filter(|f| !matches!(f, RunFailure::SinkDropped { .. }))
                .count() as u64,
            retries: pool.retries,
            resumed,
            dropped_records,
            batched_runs,
            batch_spans: batch_stats.spans,
            batch_fallbacks: batch_stats.fallback_rounds,
            batch_occupancy_permille: batch_stats.occupancy_permille(),
            ..FleetCounters::default()
        };

        sink.emit(Event::new(
            "campaign_finished",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("items", Value::U64(counters.items)),
                ("completions", Value::U64(totals.completions)),
                ("wall_s", Value::F64(wall_s)),
                ("compile_misses", Value::U64(counters.compile_misses)),
                ("compile_hits", Value::U64(counters.compile_hits)),
                ("failures", Value::U64(counters.failures)),
                ("resumed", Value::U64(counters.resumed)),
                ("batched_runs", Value::U64(counters.batched_runs)),
                (
                    "batch_occupancy_permille",
                    Value::U64(counters.batch_occupancy_permille),
                ),
                ("halted", Value::Bool(pool.halted)),
            ],
        ));
        sink.flush();

        Ok(CampaignReport {
            spec: spec.clone(),
            workers,
            results,
            failures,
            totals,
            counters,
            item_wall,
            wall_s,
            halted: pool.halted,
        })
    }
}

/// What one lock-step group hands back to the merge: the member results in
/// group order plus the batch's diagnostic counters.
struct GroupOutcome {
    results: Vec<RunResult>,
    stats: BatchStats,
}

/// Rekeys a group-level failure onto one member: the classification,
/// payload and accounting carry over; partial metrics do not (they are
/// only meaningful per device).
fn refail_member(f: &RunFailure, run_key: u64, item: usize) -> RunFailure {
    match f {
        RunFailure::Panicked { payload, .. } => RunFailure::Panicked {
            run_key,
            item,
            payload: payload.clone(),
        },
        RunFailure::TimedOut { steps, wall_ms, .. } => RunFailure::TimedOut {
            run_key,
            item,
            steps: *steps,
            wall_ms: *wall_ms,
            partial: None,
        },
        RunFailure::Transient {
            payload, attempts, ..
        } => RunFailure::Transient {
            run_key,
            item,
            payload: payload.clone(),
            attempts: *attempts,
        },
        RunFailure::SinkDropped { dropped } => RunFailure::SinkDropped { dropped: *dropped },
    }
}

/// Runs one group's workload on its [`DeviceBatch`] in
/// `BUDGET_SLICE_STEPS`-sized `drain` rounds, checking the (group-scaled)
/// step budget and wall deadline between rounds — the batched sibling of
/// [`run_workload_budgeted`], with the same bit-exactness argument:
/// capping a drain round can only split coalesced spans.
fn run_batch_workload_budgeted(
    batch: &mut DeviceBatch,
    workload: Workload,
    budget: &RunBudget,
    attempt_started: Instant,
) -> Result<(Vec<Metrics>, Vec<Vec<Metrics>>), AttemptFail> {
    let mut taken = 0u64;
    match workload {
        Workload::RunFor { seconds } => {
            batch.begin_run_for(seconds);
            drain_batch_budgeted(batch, budget, attempt_started, &mut taken)?;
            Ok((batch.metrics(), vec![Vec::new(); batch.len()]))
        }
        Workload::UntilCompletions { n, max_seconds } => {
            batch.begin_until_completions(n, max_seconds);
            drain_batch_budgeted(batch, budget, attempt_started, &mut taken)?;
            Ok((batch.metrics(), vec![Vec::new(); batch.len()]))
        }
        Workload::Buckets {
            horizon_s,
            bucket_s,
        } => {
            assert!(bucket_s > 0.0 && horizon_s > 0.0, "positive timeline");
            let n = (horizon_s / bucket_s).round().max(1.0) as usize;
            let mut buckets = vec![Vec::with_capacity(n); batch.len()];
            for _ in 0..n {
                batch.begin_run_for(bucket_s);
                drain_batch_budgeted(batch, budget, attempt_started, &mut taken)?;
                for (dest, m) in buckets.iter_mut().zip(batch.metrics()) {
                    dest.push(m);
                }
            }
            let finals = buckets.iter().map(|b| *b.last().expect("n >= 1")).collect();
            Ok((finals, buckets))
        }
    }
}

fn drain_batch_budgeted(
    batch: &mut DeviceBatch,
    budget: &RunBudget,
    attempt_started: Instant,
    taken: &mut u64,
) -> Result<(), AttemptFail> {
    loop {
        if batch.idle() {
            return Ok(());
        }
        if *taken >= budget.max_steps {
            return Err(AttemptFail::TimedOut {
                steps: *taken,
                wall_ms: attempt_started.elapsed().as_secs_f64() * 1e3,
                partial: None,
            });
        }
        let slice = BUDGET_SLICE_STEPS.min(budget.max_steps - *taken);
        *taken += batch.drain(slice);
        let wall = attempt_started.elapsed();
        if wall > budget.deadline {
            return Err(AttemptFail::TimedOut {
                steps: *taken,
                wall_ms: wall.as_secs_f64() * 1e3,
                partial: None,
            });
        }
    }
}

/// One supervised attempt of one item. The outer `Result` is the
/// supervisor's vocabulary (budget overruns, transient faults); the inner
/// one carries hard campaign errors (compile failures are properties of
/// the *spec*, not of one run, so they abort the campaign as before).
fn run_item_budgeted(
    spec: &CampaignSpec,
    app: &App,
    item: WorkItem,
    cache: &ProgramCache,
    budget: &RunBudget,
    attempt_started: Instant,
) -> Result<Result<RunResult, CampaignError>, AttemptFail> {
    let scheme = spec.schemes[item.scheme_idx];
    let t0 = Instant::now();
    let (compiled, cache_hit) = match cache.get_or_compile(app, scheme, &spec.compile) {
        Ok(found) => found,
        Err(error) => {
            return Ok(Err(CampaignError::Compile {
                app: app.name.to_string(),
                scheme,
                error,
            }))
        }
    };
    let mut sim = Simulator::from_compiled(&compiled, spec.config_for(&item));
    let (metrics, buckets) =
        run_workload_budgeted(&mut sim, spec.workload, budget, attempt_started)?;
    Ok(Ok(RunResult {
        item,
        metrics,
        buckets,
        compile_stats: compiled.stats,
        cache_hit,
        wall_ns: t0.elapsed().as_nanos() as u64,
    }))
}

/// Runs one workload in `BUDGET_SLICE_STEPS`-sized `run_capped` slices,
/// checking the step budget (deterministic: the abort point is an exact
/// step count) and the wall deadline (inherently wall-clock) between
/// slices. Slicing is bit-exact vs. the plain run loops — see
/// `Simulator::run_capped` and the `fast_path` regression test.
fn run_workload_budgeted(
    sim: &mut Simulator,
    workload: Workload,
    budget: &RunBudget,
    attempt_started: Instant,
) -> Result<(Metrics, Vec<Metrics>), AttemptFail> {
    let mut taken = 0u64;
    match workload {
        Workload::RunFor { seconds } => {
            let t_end = sim.time_s() + seconds;
            run_span_budgeted(sim, t_end, u64::MAX, budget, attempt_started, &mut taken)?;
            Ok((sim.metrics, Vec::new()))
        }
        Workload::UntilCompletions { n, max_seconds } => {
            let t_end = sim.time_s() + max_seconds;
            run_span_budgeted(sim, t_end, n, budget, attempt_started, &mut taken)?;
            Ok((sim.metrics, Vec::new()))
        }
        Workload::Buckets {
            horizon_s,
            bucket_s,
        } => {
            assert!(bucket_s > 0.0 && horizon_s > 0.0, "positive timeline");
            let n = (horizon_s / bucket_s).round().max(1.0) as usize;
            let mut buckets = Vec::with_capacity(n);
            for _ in 0..n {
                let t_end = sim.time_s() + bucket_s;
                run_span_budgeted(sim, t_end, u64::MAX, budget, attempt_started, &mut taken)?;
                buckets.push(sim.metrics);
            }
            Ok((*buckets.last().expect("n >= 1"), buckets))
        }
    }
}

fn run_span_budgeted(
    sim: &mut Simulator,
    t_end: f64,
    target_completions: u64,
    budget: &RunBudget,
    attempt_started: Instant,
    taken: &mut u64,
) -> Result<(), AttemptFail> {
    loop {
        if sim.time_s() >= t_end || sim.metrics.completions >= target_completions {
            return Ok(());
        }
        if *taken >= budget.max_steps {
            return Err(AttemptFail::TimedOut {
                steps: *taken,
                wall_ms: attempt_started.elapsed().as_secs_f64() * 1e3,
                partial: Some(Box::new(sim.metrics)),
            });
        }
        let slice = BUDGET_SLICE_STEPS.min(budget.max_steps - *taken);
        *taken += sim.run_capped(t_end, target_completions, slice);
        let wall = attempt_started.elapsed();
        if wall > budget.deadline {
            return Err(AttemptFail::TimedOut {
                steps: *taken,
                wall_ms: wall.as_secs_f64() * 1e3,
                partial: Some(Box::new(sim.metrics)),
            });
        }
    }
}

/// The merged outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The spec that ran.
    pub spec: CampaignSpec,
    /// Worker threads actually used.
    pub workers: usize,
    /// Per-item results (successful runs only), in item order.
    pub results: Vec<RunResult>,
    /// Quarantined failures, in item order, with any campaign-scoped
    /// `SinkDropped` entry last. A failed run is *absent* from `results`;
    /// it is here instead.
    pub failures: Vec<RunFailure>,
    /// All item metrics folded in item order.
    pub totals: Metrics,
    /// Fleet-level counters.
    pub counters: FleetCounters,
    /// Histogram of per-item wall times (ns).
    pub item_wall: Histogram,
    /// Campaign wall time (s).
    pub wall_s: f64,
    /// Whether the campaign stopped claiming runs early
    /// (`Campaign::halt_after`). Unclaimed runs are in neither `results`
    /// nor `failures`.
    pub halted: bool,
}

impl CampaignReport {
    /// The result for a grid cell, by axis indices, on the first fault
    /// point (fault-free unless the spec replaced the fault axis) — the
    /// pre-fault-axis signature most sweeps use.
    ///
    /// # Panics
    ///
    /// Panics when that cell has no successful result (it failed and
    /// lives in [`CampaignReport::failures`], or a halted campaign never
    /// ran it) — check `failures`/`halted` first when supervision is in
    /// play.
    pub fn result_for(
        &self,
        app_idx: usize,
        scheme_idx: usize,
        device_idx: usize,
        attack_idx: usize,
        seed_idx: usize,
    ) -> &RunResult {
        self.result_for_faulted(app_idx, scheme_idx, device_idx, attack_idx, 0, seed_idx)
    }

    /// The result for a grid cell, by axis indices including the fault
    /// axis.
    ///
    /// # Panics
    ///
    /// Panics when that cell has no successful result (see
    /// [`CampaignReport::result_for`]).
    pub fn result_for_faulted(
        &self,
        app_idx: usize,
        scheme_idx: usize,
        device_idx: usize,
        attack_idx: usize,
        fault_idx: usize,
        seed_idx: usize,
    ) -> &RunResult {
        let s = &self.spec;
        let index = ((((app_idx * s.schemes.len() + scheme_idx) * s.devices.len() + device_idx)
            * s.attacks.len()
            + attack_idx)
            * s.faults.len()
            + fault_idx)
            * s.seeds.len()
            + seed_idx;
        // `results` is sorted by item index but may have holes (failed or
        // unclaimed cells), so row-major indexing no longer applies.
        match self.results.binary_search_by_key(&index, |r| r.item.index) {
            Ok(pos) => &self.results[pos],
            Err(_) => panic!(
                "grid cell (item {index}) has no successful result: \
                 it failed or was never executed"
            ),
        }
    }

    /// Sum of per-item wall times (s) — what a 1-worker pool would
    /// roughly take; `work_s / wall_s` estimates the parallel speedup.
    pub fn work_s(&self) -> f64 {
        self.results.iter().map(|r| r.wall_ns as f64 * 1e-9).sum()
    }

    /// FNV-1a digest over the deterministic payload (item order, axis
    /// indices, all metric fields, bucket edges, then the failure
    /// identities). Identical for any worker count — and across
    /// kill-and-resume sessions — because every folded field is a pure
    /// function of the spec. Wall-clock fields and timeout partials are
    /// excluded; a clean campaign's digest is unchanged from the
    /// pre-supervision encoding (an empty failure list folds nothing).
    pub fn deterministic_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for r in &self.results {
            eat(r.item.index as u64);
            eat(r.item.app_idx as u64);
            eat(r.item.scheme_idx as u64);
            eat(r.item.device_idx as u64);
            eat(r.item.attack_idx as u64);
            eat(r.item.fault_idx as u64);
            eat(r.item.seed_idx as u64);
            for m in std::iter::once(&r.metrics).chain(r.buckets.iter()) {
                eat(m.sim_time_s.to_bits());
                eat(m.forward_cycles);
                eat(m.overhead_cycles);
                eat(m.completions);
                eat(m.checksum_errors);
                eat(m.jit_checkpoints);
                eat(m.jit_checkpoint_failures);
                eat(m.reboots);
                eat(m.dirty_deaths);
                eat(m.rollbacks);
                eat(m.recovery_slices);
                eat(m.attack_detections);
                eat(m.jit_reenables);
                eat(m.checkpoint_stores);
                eat(m.boundary_commits);
                eat(m.fault_skips);
                eat(m.fault_corruptions);
                eat(m.energy_nj.to_bits());
            }
        }
        for f in &self.failures {
            f.digest_into(&mut eat);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("tiny")
            .apps(["blink", "crc16"])
            .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
            .workload(Workload::RunFor { seconds: 0.01 })
    }

    #[test]
    fn expansion_order_is_row_major() {
        let spec = tiny_spec().seeds([1, 2]);
        let items = spec.expand();
        assert_eq!(items.len(), 2 * 2 * 2);
        assert_eq!(items[0].app_idx, 0);
        assert_eq!(items[0].seed_idx, 0);
        assert_eq!(items[1].seed_idx, 1, "seed is the innermost axis");
        assert_eq!(items[2].scheme_idx, 1);
        assert_eq!(items[2].app_idx, 0);
        assert_eq!(items[4].app_idx, 1, "app is the outermost axis");
        assert_eq!(items[4].scheme_idx, 0);
        assert_eq!(items[7].app_idx, 1);
        assert_eq!(items[7].scheme_idx, 1);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, i);
        }
    }

    #[test]
    fn unknown_app_is_reported() {
        let spec = CampaignSpec::new("bad").apps(["doom"]);
        match Campaign::new(spec).run() {
            Err(CampaignError::UnknownApp(name)) => assert_eq!(name, "doom"),
            other => panic!("expected UnknownApp, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_reported() {
        let spec = CampaignSpec::new("empty");
        assert!(matches!(
            Campaign::new(spec).run(),
            Err(CampaignError::EmptyGrid)
        ));
    }

    #[test]
    fn campaign_matches_direct_simulation() {
        let spec = tiny_spec();
        let report = Campaign::new(spec.clone()).run().unwrap();
        assert_eq!(report.results.len(), 4);
        // Cell (crc16, Gecko) must equal a hand-built simulator run.
        let app = gecko_apps::app_by_name("crc16").unwrap();
        let mut sim = Simulator::new(&app, SimConfig::bench_supply(SchemeKind::Gecko)).unwrap();
        let direct = sim.run_for(0.01);
        let cell = report.result_for(1, 1, 0, 0, 0);
        assert_eq!(cell.metrics, direct);
        // The program cache compiled each (app, scheme) exactly once.
        assert_eq!(report.counters.compile_misses, 4);
        assert_eq!(report.counters.compile_hits, 0);
        assert!(report.totals.completions >= direct.completions);
    }

    #[test]
    fn seeds_share_the_compiled_artifact() {
        let spec = CampaignSpec::new("seeded")
            .apps(["blink"])
            .schemes([SchemeKind::Gecko])
            .seeds([1, 2, 3, 4, 5])
            .workload(Workload::RunFor { seconds: 0.005 });
        let report = Campaign::new(spec).workers(3).run().unwrap();
        assert_eq!(report.counters.compile_misses, 1);
        assert_eq!(report.counters.compile_hits, 4);
        assert_eq!(report.results.iter().filter(|r| r.cache_hit).count(), 4);
    }

    #[test]
    fn buckets_record_cumulative_edges() {
        let spec = CampaignSpec::new("timeline")
            .apps(["blink"])
            .schemes([SchemeKind::Nvp])
            .workload(Workload::Buckets {
                horizon_s: 0.02,
                bucket_s: 0.005,
            });
        let report = Campaign::new(spec).run().unwrap();
        let r = &report.results[0];
        assert_eq!(r.buckets.len(), 4);
        assert!(r
            .buckets
            .windows(2)
            .all(|w| w[0].completions <= w[1].completions));
        assert_eq!(*r.buckets.last().unwrap(), r.metrics);
    }
}
