//! The campaign engine: a declarative grid of simulations, a worker pool,
//! and deterministic aggregation.
//!
//! A [`CampaignSpec`] is the cartesian product
//! `apps × schemes × devices × attacks × seeds`; [`CampaignSpec::expand`]
//! flattens it into an ordered list of [`WorkItem`]s. [`Campaign::run`]
//! executes the items on `workers` std threads pulling from a shared
//! atomic cursor (a lock-free work queue over the fixed item list), with
//! every `(app, scheme, options)` compilation going through the shared
//! [`ProgramCache`].
//!
//! **Determinism.** Each item's simulation depends only on its `SimConfig`
//! — never on scheduling — and results are merged back **in item order**
//! after the pool joins. A campaign therefore produces bit-identical
//! [`CampaignReport::deterministic_digest`] values for any worker count;
//! only wall-clock fields differ.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gecko_apps::App;
use gecko_compiler::{CompileError, CompileOptions, CompileStats};
use gecko_emi::{AttackSchedule, DeviceModel, MonitorKind};
use gecko_energy::ConstantPower;
use gecko_sim::report::Value;
use gecko_sim::{Metrics, SchemeKind, SimConfig, Simulator};

use crate::cache::ProgramCache;
use crate::telemetry::{Event, FleetCounters, Histogram, NullSink, TelemetrySink};

/// The power environment every item runs in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Supply {
    /// Generous DC bench supply (`SimConfig::bench_supply`).
    Bench,
    /// Constant harvested power of `power_w` watts
    /// (`SimConfig::harvesting` uses 1.2 mW).
    Harvesting {
        /// Average harvested power (W).
        power_w: f64,
    },
}

/// Energy-buffer override.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitorSpec {
    /// Capacitance (F).
    pub capacitance_f: f64,
    /// Initial voltage (V).
    pub initial_voltage_v: f64,
    /// Rescale the threshold ladder to match the 1 mF reference energy
    /// (the paper's Section VII-D methodology).
    pub rescale_thresholds: bool,
}

/// What each item simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// `run_for(seconds)`.
    RunFor {
        /// Device time to simulate (s).
        seconds: f64,
    },
    /// `run_until_completions(n, max_seconds)`.
    UntilCompletions {
        /// Completions to reach.
        n: u64,
        /// Give-up horizon (s).
        max_seconds: f64,
    },
    /// `run_for(bucket_s)` repeated over `horizon_s`, recording the
    /// cumulative metrics at each bucket edge (timeline experiments like
    /// Figure 13).
    Buckets {
        /// Total device time (s).
        horizon_s: f64,
        /// Bucket length (s).
        bucket_s: f64,
    },
}

/// A labeled attack schedule (one point on the attack axis).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCase {
    /// Label used in reports ("none", "27MHz@35dBm", scenario "d", ...).
    pub label: String,
    /// The schedule (empty = unattacked).
    pub schedule: AttackSchedule,
}

impl AttackCase {
    /// The unattacked case.
    pub fn none() -> AttackCase {
        AttackCase {
            label: "none".to_string(),
            schedule: AttackSchedule::none(),
        }
    }

    /// A labeled case.
    pub fn new(label: impl Into<String>, schedule: AttackSchedule) -> AttackCase {
        AttackCase {
            label: label.into(),
            schedule,
        }
    }
}

/// A board model + the monitor driving its JIT protocol (one point on the
/// device axis).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCase {
    /// The board's susceptibility model.
    pub device: DeviceModel,
    /// The voltage monitor in use.
    pub monitor: MonitorKind,
}

impl DeviceCase {
    /// Builds a case.
    pub fn new(device: DeviceModel, monitor: MonitorKind) -> DeviceCase {
        DeviceCase { device, monitor }
    }

    /// The default lab board: MSP430FR5994 through its ADC.
    pub fn default_board() -> DeviceCase {
        DeviceCase::new(gecko_emi::devices::msp430fr5994(), MonitorKind::Adc)
    }
}

/// A declarative Monte-Carlo campaign over the evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (reports, telemetry).
    pub name: String,
    /// App names (resolved via `gecko_apps::app_by_name`).
    pub apps: Vec<String>,
    /// Scheme axis.
    pub schemes: Vec<SchemeKind>,
    /// Device axis.
    pub devices: Vec<DeviceCase>,
    /// Attack axis.
    pub attacks: Vec<AttackCase>,
    /// Peripheral-seed axis (Monte-Carlo dimension).
    pub seeds: Vec<u64>,
    /// Power environment.
    pub supply: Supply,
    /// Optional energy-buffer override.
    pub capacitor: Option<CapacitorSpec>,
    /// Optional ADC median filter (taps).
    pub adc_filter_taps: Option<usize>,
    /// Compiler options for the instrumented schemes.
    pub compile: CompileOptions,
    /// What each item runs.
    pub workload: Workload,
}

impl CampaignSpec {
    /// A campaign with the default single-point axes: the lab board, no
    /// attack, seed 7 (matching `SimConfig::bench_supply`).
    pub fn new(name: impl Into<String>) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            apps: Vec::new(),
            schemes: vec![SchemeKind::Gecko],
            devices: vec![DeviceCase::default_board()],
            attacks: vec![AttackCase::none()],
            seeds: vec![7],
            supply: Supply::Bench,
            capacitor: None,
            adc_filter_taps: None,
            compile: CompileOptions::default(),
            workload: Workload::RunFor { seconds: 0.05 },
        }
    }

    /// Replaces the app axis (builder style).
    pub fn apps<I: IntoIterator<Item = S>, S: Into<String>>(mut self, apps: I) -> CampaignSpec {
        self.apps = apps.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the scheme axis (builder style).
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SchemeKind>) -> CampaignSpec {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Replaces the device axis (builder style).
    pub fn devices(mut self, devices: impl IntoIterator<Item = DeviceCase>) -> CampaignSpec {
        self.devices = devices.into_iter().collect();
        self
    }

    /// Replaces the attack axis (builder style).
    pub fn attacks(mut self, attacks: impl IntoIterator<Item = AttackCase>) -> CampaignSpec {
        self.attacks = attacks.into_iter().collect();
        self
    }

    /// Replaces the seed axis (builder style).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> CampaignSpec {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the power environment (builder style).
    pub fn supply(mut self, supply: Supply) -> CampaignSpec {
        self.supply = supply;
        self
    }

    /// Sets the energy buffer (builder style).
    pub fn capacitor(mut self, cap: CapacitorSpec) -> CampaignSpec {
        self.capacitor = Some(cap);
        self
    }

    /// Sets the workload (builder style).
    pub fn workload(mut self, workload: Workload) -> CampaignSpec {
        self.workload = workload;
        self
    }

    /// Flattens the grid into ordered work items:
    /// `for app { for scheme { for device { for attack { for seed }}}}`.
    pub fn expand(&self) -> Vec<WorkItem> {
        let mut items = Vec::with_capacity(
            self.apps.len()
                * self.schemes.len()
                * self.devices.len()
                * self.attacks.len()
                * self.seeds.len(),
        );
        for (app_idx, _) in self.apps.iter().enumerate() {
            for (scheme_idx, _) in self.schemes.iter().enumerate() {
                for (device_idx, _) in self.devices.iter().enumerate() {
                    for (attack_idx, _) in self.attacks.iter().enumerate() {
                        for (seed_idx, _) in self.seeds.iter().enumerate() {
                            items.push(WorkItem {
                                index: items.len(),
                                app_idx,
                                scheme_idx,
                                device_idx,
                                attack_idx,
                                seed_idx,
                            });
                        }
                    }
                }
            }
        }
        items
    }

    /// Builds the `SimConfig` for one item — the *only* place physical
    /// configuration is derived, so the parallel and sequential paths
    /// cannot drift apart.
    pub fn config_for(&self, item: &WorkItem) -> SimConfig {
        let scheme = self.schemes[item.scheme_idx];
        let mut cfg = match self.supply {
            Supply::Bench => SimConfig::bench_supply(scheme),
            Supply::Harvesting { power_w } => {
                let mut cfg = SimConfig::harvesting(scheme);
                cfg.harvester = Box::new(ConstantPower::new(power_w));
                cfg
            }
        };
        let device = &self.devices[item.device_idx];
        cfg = cfg.with_device(device.device.clone(), device.monitor);
        let attack = &self.attacks[item.attack_idx];
        if !attack.schedule.is_empty() {
            cfg = cfg.with_attack(attack.schedule.clone());
        }
        if let Some(cap) = self.capacitor {
            cfg = if cap.rescale_thresholds {
                cfg.with_rescaled_capacitor(cap.capacitance_f, cap.initial_voltage_v)
            } else {
                cfg.with_capacitor(cap.capacitance_f, cap.initial_voltage_v)
            };
        }
        cfg.adc_filter_taps = self.adc_filter_taps;
        cfg.compile = self.compile;
        cfg.seed = self.seeds[item.seed_idx];
        cfg
    }
}

/// One cell of the expanded grid (axis indices into the spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Position in the expanded list (aggregation order).
    pub index: usize,
    /// Index into `spec.apps`.
    pub app_idx: usize,
    /// Index into `spec.schemes`.
    pub scheme_idx: usize,
    /// Index into `spec.devices`.
    pub device_idx: usize,
    /// Index into `spec.attacks`.
    pub attack_idx: usize,
    /// Index into `spec.seeds`.
    pub seed_idx: usize,
}

/// One finished item.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The grid cell.
    pub item: WorkItem,
    /// Final cumulative metrics.
    pub metrics: Metrics,
    /// Cumulative metrics at each bucket edge (empty unless the workload
    /// is [`Workload::Buckets`]).
    pub buckets: Vec<Metrics>,
    /// Static compiler statistics of the (shared) artifact.
    pub compile_stats: CompileStats,
    /// Whether the artifact came from the cache (vs. compiled here).
    pub cache_hit: bool,
    /// Wall-clock nanoseconds this item took (non-deterministic; excluded
    /// from the digest).
    pub wall_ns: u64,
}

/// Campaign failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// An app name did not resolve.
    UnknownApp(String),
    /// The grid is empty (some axis has no points).
    EmptyGrid,
    /// A cell failed to compile.
    Compile {
        /// App name.
        app: String,
        /// Scheme.
        scheme: SchemeKind,
        /// The compiler's error.
        error: CompileError,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::UnknownApp(name) => write!(f, "unknown app {name:?}"),
            CampaignError::EmptyGrid => write!(f, "campaign grid is empty"),
            CampaignError::Compile { app, scheme, error } => {
                write!(f, "compiling {app} for {scheme}: {error:?}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A configured, runnable campaign.
pub struct Campaign {
    spec: CampaignSpec,
    workers: usize,
    sink: Arc<dyn TelemetrySink>,
}

impl Campaign {
    /// Wraps a spec with 1 worker and no telemetry sink.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign {
            spec,
            workers: 1,
            sink: Arc::new(NullSink),
        }
    }

    /// Sets the worker-pool size (builder style; clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Campaign {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a telemetry sink (builder style).
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> Campaign {
        self.sink = sink;
        self
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Executes the campaign: expand, fan out, merge deterministically.
    ///
    /// # Errors
    ///
    /// Returns the first (in item order) resolution or compile error.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let spec = &self.spec;
        let apps: Vec<App> = spec
            .apps
            .iter()
            .map(|name| {
                gecko_apps::app_by_name(name).ok_or_else(|| CampaignError::UnknownApp(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let items = spec.expand();
        if items.is_empty() {
            return Err(CampaignError::EmptyGrid);
        }
        let workers = self.workers.min(items.len());
        let cache = ProgramCache::new();
        let cursor = AtomicUsize::new(0);
        let sink = &self.sink;

        sink.emit(Event::new(
            "campaign_started",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("items", Value::U64(items.len() as u64)),
                ("workers", Value::U64(workers as u64)),
            ],
        ));

        let started = Instant::now();
        let mut slots: Vec<Option<Result<RunResult, CampaignError>>> = Vec::new();
        slots.resize_with(items.len(), || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cache = &cache;
                let cursor = &cursor;
                let items = &items;
                let apps = &apps;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, Result<RunResult, CampaignError>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let item = items[i];
                        sink.emit(Event::new(
                            "item_started",
                            vec![
                                ("item", Value::U64(i as u64)),
                                ("app", Value::Str(spec.apps[item.app_idx].clone())),
                                (
                                    "scheme",
                                    Value::Str(spec.schemes[item.scheme_idx].name().to_string()),
                                ),
                                (
                                    "attack",
                                    Value::Str(spec.attacks[item.attack_idx].label.clone()),
                                ),
                            ],
                        ));
                        let result = run_item(spec, &apps[item.app_idx], item, cache);
                        if let Ok(r) = &result {
                            sink.emit(Event::new(
                                "item_finished",
                                vec![
                                    ("item", Value::U64(i as u64)),
                                    ("completions", Value::U64(r.metrics.completions)),
                                    ("forward_cycles", Value::U64(r.metrics.forward_cycles)),
                                    ("checksum_errors", Value::U64(r.metrics.checksum_errors)),
                                    ("wall_ns", Value::U64(r.wall_ns)),
                                    ("cache_hit", Value::Bool(r.cache_hit)),
                                ],
                            ));
                        }
                        local.push((i, result));
                    }
                    local
                }));
            }
            for handle in handles {
                for (i, result) in handle.join().expect("campaign worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });

        let wall_s = started.elapsed().as_secs_f64();

        // Deterministic merge: walk slots in item order.
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.expect("every item was claimed") {
                Ok(r) => results.push(r),
                Err(e) => return Err(e),
            }
        }

        let mut totals = Metrics::default();
        let mut item_wall = Histogram::new();
        for r in &results {
            totals.absorb(&r.metrics);
            item_wall.record(r.wall_ns);
        }
        let counters = FleetCounters {
            items: results.len() as u64,
            compile_misses: cache.misses(),
            compile_hits: cache.hits(),
            ..FleetCounters::default()
        };

        sink.emit(Event::new(
            "campaign_finished",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("items", Value::U64(counters.items)),
                ("completions", Value::U64(totals.completions)),
                ("wall_s", Value::F64(wall_s)),
                ("compile_misses", Value::U64(counters.compile_misses)),
                ("compile_hits", Value::U64(counters.compile_hits)),
            ],
        ));
        sink.flush();

        Ok(CampaignReport {
            spec: spec.clone(),
            workers,
            results,
            totals,
            counters,
            item_wall,
            wall_s,
        })
    }
}

fn run_item(
    spec: &CampaignSpec,
    app: &App,
    item: WorkItem,
    cache: &ProgramCache,
) -> Result<RunResult, CampaignError> {
    let scheme = spec.schemes[item.scheme_idx];
    let t0 = Instant::now();
    let (compiled, cache_hit) =
        cache
            .get_or_compile(app, scheme, &spec.compile)
            .map_err(|error| CampaignError::Compile {
                app: app.name.to_string(),
                scheme,
                error,
            })?;
    let mut sim = Simulator::from_compiled(&compiled, spec.config_for(&item));
    let (metrics, buckets) = run_workload(&mut sim, spec.workload);
    Ok(RunResult {
        item,
        metrics,
        buckets,
        compile_stats: compiled.stats,
        cache_hit,
        wall_ns: t0.elapsed().as_nanos() as u64,
    })
}

fn run_workload(sim: &mut Simulator, workload: Workload) -> (Metrics, Vec<Metrics>) {
    match workload {
        Workload::RunFor { seconds } => (sim.run_for(seconds), Vec::new()),
        Workload::UntilCompletions { n, max_seconds } => {
            (sim.run_until_completions(n, max_seconds), Vec::new())
        }
        Workload::Buckets {
            horizon_s,
            bucket_s,
        } => {
            assert!(bucket_s > 0.0 && horizon_s > 0.0, "positive timeline");
            let n = (horizon_s / bucket_s).round().max(1.0) as usize;
            let mut buckets = Vec::with_capacity(n);
            for _ in 0..n {
                buckets.push(sim.run_for(bucket_s));
            }
            (*buckets.last().expect("n >= 1"), buckets)
        }
    }
}

/// The merged outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The spec that ran.
    pub spec: CampaignSpec,
    /// Worker threads actually used.
    pub workers: usize,
    /// Per-item results, in item order.
    pub results: Vec<RunResult>,
    /// All item metrics folded in item order.
    pub totals: Metrics,
    /// Fleet-level counters.
    pub counters: FleetCounters,
    /// Histogram of per-item wall times (ns).
    pub item_wall: Histogram,
    /// Campaign wall time (s).
    pub wall_s: f64,
}

impl CampaignReport {
    /// The result for a grid cell, by axis indices.
    pub fn result_for(
        &self,
        app_idx: usize,
        scheme_idx: usize,
        device_idx: usize,
        attack_idx: usize,
        seed_idx: usize,
    ) -> &RunResult {
        let s = &self.spec;
        let index = (((app_idx * s.schemes.len() + scheme_idx) * s.devices.len() + device_idx)
            * s.attacks.len()
            + attack_idx)
            * s.seeds.len()
            + seed_idx;
        &self.results[index]
    }

    /// Sum of per-item wall times (s) — what a 1-worker pool would
    /// roughly take; `work_s / wall_s` estimates the parallel speedup.
    pub fn work_s(&self) -> f64 {
        self.results.iter().map(|r| r.wall_ns as f64 * 1e-9).sum()
    }

    /// FNV-1a digest over the deterministic payload (item order, axis
    /// indices, all metric fields, bucket edges). Identical for any worker
    /// count; wall-clock fields are excluded.
    pub fn deterministic_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for r in &self.results {
            eat(r.item.index as u64);
            eat(r.item.app_idx as u64);
            eat(r.item.scheme_idx as u64);
            eat(r.item.device_idx as u64);
            eat(r.item.attack_idx as u64);
            eat(r.item.seed_idx as u64);
            for m in std::iter::once(&r.metrics).chain(r.buckets.iter()) {
                eat(m.sim_time_s.to_bits());
                eat(m.forward_cycles);
                eat(m.overhead_cycles);
                eat(m.completions);
                eat(m.checksum_errors);
                eat(m.jit_checkpoints);
                eat(m.jit_checkpoint_failures);
                eat(m.reboots);
                eat(m.dirty_deaths);
                eat(m.rollbacks);
                eat(m.recovery_slices);
                eat(m.attack_detections);
                eat(m.jit_reenables);
                eat(m.checkpoint_stores);
                eat(m.boundary_commits);
                eat(m.energy_nj.to_bits());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("tiny")
            .apps(["blink", "crc16"])
            .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
            .workload(Workload::RunFor { seconds: 0.01 })
    }

    #[test]
    fn expansion_order_is_row_major() {
        let spec = tiny_spec().seeds([1, 2]);
        let items = spec.expand();
        assert_eq!(items.len(), 2 * 2 * 2);
        assert_eq!(items[0].app_idx, 0);
        assert_eq!(items[0].seed_idx, 0);
        assert_eq!(items[1].seed_idx, 1, "seed is the innermost axis");
        assert_eq!(items[2].scheme_idx, 1);
        assert_eq!(items[2].app_idx, 0);
        assert_eq!(items[4].app_idx, 1, "app is the outermost axis");
        assert_eq!(items[4].scheme_idx, 0);
        assert_eq!(items[7].app_idx, 1);
        assert_eq!(items[7].scheme_idx, 1);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, i);
        }
    }

    #[test]
    fn unknown_app_is_reported() {
        let spec = CampaignSpec::new("bad").apps(["doom"]);
        match Campaign::new(spec).run() {
            Err(CampaignError::UnknownApp(name)) => assert_eq!(name, "doom"),
            other => panic!("expected UnknownApp, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_reported() {
        let spec = CampaignSpec::new("empty");
        assert!(matches!(
            Campaign::new(spec).run(),
            Err(CampaignError::EmptyGrid)
        ));
    }

    #[test]
    fn campaign_matches_direct_simulation() {
        let spec = tiny_spec();
        let report = Campaign::new(spec.clone()).run().unwrap();
        assert_eq!(report.results.len(), 4);
        // Cell (crc16, Gecko) must equal a hand-built simulator run.
        let app = gecko_apps::app_by_name("crc16").unwrap();
        let mut sim = Simulator::new(&app, SimConfig::bench_supply(SchemeKind::Gecko)).unwrap();
        let direct = sim.run_for(0.01);
        let cell = report.result_for(1, 1, 0, 0, 0);
        assert_eq!(cell.metrics, direct);
        // The program cache compiled each (app, scheme) exactly once.
        assert_eq!(report.counters.compile_misses, 4);
        assert_eq!(report.counters.compile_hits, 0);
        assert!(report.totals.completions >= direct.completions);
    }

    #[test]
    fn seeds_share_the_compiled_artifact() {
        let spec = CampaignSpec::new("seeded")
            .apps(["blink"])
            .schemes([SchemeKind::Gecko])
            .seeds([1, 2, 3, 4, 5])
            .workload(Workload::RunFor { seconds: 0.005 });
        let report = Campaign::new(spec).workers(3).run().unwrap();
        assert_eq!(report.counters.compile_misses, 1);
        assert_eq!(report.counters.compile_hits, 4);
        assert_eq!(report.results.iter().filter(|r| r.cache_hit).count(), 4);
    }

    #[test]
    fn buckets_record_cumulative_edges() {
        let spec = CampaignSpec::new("timeline")
            .apps(["blink"])
            .schemes([SchemeKind::Nvp])
            .workload(Workload::Buckets {
                horizon_s: 0.02,
                bucket_s: 0.005,
            });
        let report = Campaign::new(spec).run().unwrap();
        let r = &report.results[0];
        assert_eq!(r.buckets.len(), 4);
        assert!(r
            .buckets
            .windows(2)
            .all(|w| w[0].completions <= w[1].completions));
        assert_eq!(*r.buckets.last().unwrap(), r.metrics);
    }
}
