//! # gecko-fleet — parallel Monte-Carlo campaign engine
//!
//! The paper's evaluation is a grid: applications × recovery schemes ×
//! board models × attack schedules × peripheral seeds. Running that grid
//! one `Simulator` at a time recompiles the same programs over and over
//! and leaves every core but one idle. This crate turns the grid into a
//! declarative [`CampaignSpec`], executes it on a `std::thread` worker
//! pool with a shared compiled-program cache, and merges the results
//! deterministically — the same campaign produces bit-identical numbers
//! (and [`CampaignReport::deterministic_digest`] values) on 1 worker or
//! 16.
//!
//! Three layers:
//!
//! * [`campaign`] — the spec, the work queue, the pool, the deterministic
//!   merge, and [`fleet_summary`]-style reporting.
//! * [`cache`] — the compile-once [`ProgramCache`] keyed on
//!   `(app, scheme, compile options)`, sharing `Arc<CompiledApp>`
//!   artifacts across workers.
//! * [`telemetry`] — counters, log-scale histograms, span-style
//!   [`Event`]s and pluggable [`TelemetrySink`]s (in-memory for tests,
//!   JSON-lines behind the `json` feature for experiments).
//!
//! Two more layers make campaigns *survivable* (GECKO's own resilience
//! discipline, applied to the harness):
//!
//! * [`supervisor`] — panic quarantine, step/wall run budgets, bounded
//!   retry with deterministic backoff, and seeded [`ChaosSpec`] fault
//!   injection; failures become structured [`RunFailure`]s in the report
//!   instead of killing workers.
//! * [`journal`] — an append-only JSON-lines [`Journal`] of completed
//!   runs; [`Campaign::resume`] skips journaled runs and merges
//!   bit-exactly against an uninterrupted campaign at any worker count.
//!
//! The heavyweight paper sweeps have drop-in ports in [`figures`] that
//! reproduce the sequential `gecko_sim::experiments` rows exactly.
//!
//! ```
//! use gecko_fleet::{Campaign, CampaignSpec, SchemeKind, Workload};
//!
//! let spec = CampaignSpec::new("quickstart")
//!     .apps(["blink", "crc16"])
//!     .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
//!     .seeds([1, 2, 3])
//!     .workload(Workload::RunFor { seconds: 0.005 });
//! let report = Campaign::new(spec).workers(4).run().unwrap();
//! assert_eq!(report.results.len(), 12);
//! assert_eq!(report.counters.compile_misses, 4); // one per (app, scheme)
//! println!("{}", gecko_fleet::fleet_summary(&report));
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod figures;
pub mod frontier;
pub mod journal;
pub mod json;
pub mod spec_io;
pub mod supervisor;
pub mod telemetry;

pub use cache::{CacheKey, ProgramCache};
pub use campaign::{
    AttackCase, Campaign, CampaignError, CampaignReport, CampaignSpec, CapacitorSpec, DeviceCase,
    FaultCase, RunResult, Supply, WorkItem, Workload,
};
pub use frontier::Frontier;
pub use journal::{classify_campaign_lines, Journal};
pub use json::{Json, ParseError};
pub use spec_io::{
    report_deterministic_json, report_to_json, spec_from_json, spec_to_json, DecodeError, SpecError,
};
pub use supervisor::{
    lock_unpoisoned, quarantine, run_supervised, AttemptFail, ChaosSink, ChaosSpec, FailureKind,
    ItemOutcome, PoolConfig, PoolReport, RunBudget, RunFailure, SupervisorSpec, TRANSIENT_PREFIX,
};
pub use telemetry::{
    Event, FleetCounters, Histogram, MemorySink, NullSink, SegmentedSink, TelemetrySink,
};

#[cfg(feature = "json")]
pub use telemetry::{persist_records, JsonlSink};

// Re-exports so campaign code needs only this crate.
pub use gecko_sim::experiments::Fidelity;
pub use gecko_sim::{Metrics, SchemeKind};

/// Renders a campaign report as a fixed-width summary table: one line per
/// work item plus totals, wall-clock, estimated speedup, and cache stats.
pub fn fleet_summary(report: &CampaignReport) -> String {
    use std::fmt::Write as _;
    let spec = &report.spec;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign {:<18} {} items on {} worker(s)",
        spec.name,
        report.results.len(),
        report.workers
    );
    let _ = writeln!(
        out,
        "{:<10} {:<18} {:<8} {:>6} {:>12} {:>12} {:>8}",
        "app", "scheme", "attack", "seed", "fwd cycles", "completions", "wall ms"
    );
    for r in &report.results {
        let _ = writeln!(
            out,
            "{:<10} {:<18} {:<8} {:>6} {:>12} {:>12} {:>8.1}",
            spec.apps[r.item.app_idx],
            spec.schemes[r.item.scheme_idx].name(),
            spec.attacks[r.item.attack_idx].label,
            spec.seeds[r.item.seed_idx],
            r.metrics.forward_cycles,
            r.metrics.completions,
            r.wall_ns as f64 / 1e6,
        );
    }
    let c = &report.counters;
    let _ = writeln!(
        out,
        "totals: {} completions, {} forward cycles, {} checksum errors",
        report.totals.completions, report.totals.forward_cycles, report.totals.checksum_errors
    );
    if !report.failures.is_empty() || c.resumed > 0 || report.halted || c.dropped_records > 0 {
        let _ = writeln!(
            out,
            "supervision: {} failure(s), {} retried attempt(s), {} resumed, {} dropped record(s){}",
            c.failures,
            c.retries,
            c.resumed,
            c.dropped_records,
            if report.halted { " [halted]" } else { "" },
        );
        for f in &report.failures {
            let _ = writeln!(out, "  {} {}", f.kind().name(), f.describe());
        }
    }
    let _ = writeln!(
        out,
        "cache: {} compiles, {} hits | wall {:.2}s, work {:.2}s, speedup {:.2}x",
        c.compile_misses,
        c.compile_hits,
        report.wall_s,
        report.work_s(),
        report.work_s() / report.wall_s.max(1e-9),
    );
    let _ = writeln!(out, "digest: {:016x}", report.deterministic_digest());
    out
}

// The pool shares apps and compiled artifacts across threads; these
// assertions fail to compile if a refactor ever makes them thread-unsafe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<gecko_apps::App>();
    assert_send_sync::<gecko_sim::device::CompiledApp>();
    assert_send_sync::<gecko_emi::DeviceModel>();
    assert_send_sync::<gecko_emi::AttackSchedule>();
    assert_send_sync::<CampaignSpec>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_summary_mentions_everything() {
        let spec = CampaignSpec::new("summary")
            .apps(["blink"])
            .schemes([SchemeKind::Nvp])
            .workload(Workload::RunFor { seconds: 0.002 });
        let report = Campaign::new(spec).run().unwrap();
        let text = fleet_summary(&report);
        assert!(text.contains("campaign summary"));
        assert!(text.contains("blink"));
        assert!(text.contains("NVP"));
        assert!(text.contains("digest:"));
        assert!(text.contains("speedup"));
    }
}
