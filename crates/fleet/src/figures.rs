//! Campaign-engine ports of the paper's heavyweight grid sweeps (Figures
//! 4, 5, 8, 11 and 13).
//!
//! Each function builds the *same* cells as the sequential implementation
//! in `gecko_sim::experiments`, fans them out over a worker pool, and
//! reassembles rows in the sequential row order — so the output is
//! numerically identical to the `gecko_sim::experiments::figN::rows`
//! functions (which stay as the single-threaded reference), just faster on
//! multi-core hosts and with every `(app, scheme)` compiled once.

use gecko_emi::attack::DpiPoint;
use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
use gecko_sim::experiments::fig11::Fig11Row;
use gecko_sim::experiments::fig13::{Fig13Row, MINUTES_PER_SIM_SECOND};
use gecko_sim::experiments::fig4::Fig4Row;
use gecko_sim::experiments::fig5::Fig5Row;
use gecko_sim::experiments::fig8::Fig8Row;
use gecko_sim::experiments::{lin_freq_grid, log_freq_grid, Fidelity, VICTIM_APP};
use gecko_sim::SchemeKind;

use crate::campaign::{
    AttackCase, Campaign, CampaignError, CampaignReport, CampaignSpec, CapacitorSpec, DeviceCase,
    Supply, Workload,
};

/// Shared shape of the attack-study sweeps (fig4/fig5/fig8): victim app on
/// NVP, attack axis = `none` followed by the labeled attack grid, and
/// rate = attacked forward cycles over the unattacked cell's.
fn attack_study(
    name: &str,
    devices: Vec<DeviceCase>,
    attacks: Vec<AttackCase>,
    window_s: f64,
    workers: usize,
) -> Result<CampaignReport, CampaignError> {
    let mut axis = vec![AttackCase::none()];
    axis.extend(attacks);
    let spec = CampaignSpec::new(name)
        .apps([VICTIM_APP])
        .schemes([SchemeKind::Nvp])
        .devices(devices)
        .attacks(axis)
        .workload(Workload::RunFor { seconds: window_s });
    Campaign::new(spec).workers(workers).run()
}

/// Forward-progress rate of attack cell `attack_idx` (1-based within the
/// grid; 0 is the clean baseline) on device `device_idx`.
fn rate(report: &CampaignReport, device_idx: usize, attack_idx: usize) -> f64 {
    let clean = report
        .result_for(0, 0, device_idx, 0, 0)
        .metrics
        .forward_cycles;
    let attacked = report
        .result_for(0, 0, device_idx, attack_idx, 0)
        .metrics
        .forward_cycles;
    attacked as f64 / clean.max(1) as f64
}

/// Figure 4 (DPI sweep: 9 boards × {P1, P2} × frequency grid) through the
/// campaign engine.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn fig4(fidelity: Fidelity, workers: usize) -> Result<Vec<Fig4Row>, CampaignError> {
    let points = match fidelity {
        Fidelity::Quick => 9,
        Fidelity::Full => 49,
    };
    let freqs = log_freq_grid(1e6, 1e9, points);
    let injections = [("P1", DpiPoint::P1), ("P2", DpiPoint::P2)];
    let mut attacks = Vec::new();
    for (label, point) in injections {
        for &f in &freqs {
            attacks.push(AttackCase::new(
                format!("{label}@{:.0}Hz", f),
                AttackSchedule::continuous(EmiSignal::new(f, 20.0), Injection::Dpi(point)),
            ));
        }
    }
    let devices: Vec<DeviceCase> = gecko_emi::devices::all_devices()
        .into_iter()
        .map(|d| DeviceCase::new(d, MonitorKind::Adc))
        .collect();
    let report = attack_study("fig4", devices, attacks, fidelity.window_s(), workers)?;

    let mut out = Vec::new();
    for (di, case) in report.spec.devices.iter().enumerate() {
        for (pi, (label, _)) in injections.iter().enumerate() {
            for (fi, &f) in freqs.iter().enumerate() {
                out.push(Fig4Row {
                    device: case.device.name().to_string(),
                    point: (*label).to_string(),
                    freq_hz: f,
                    rate: rate(&report, di, 1 + pi * freqs.len() + fi),
                });
            }
        }
    }
    Ok(out)
}

/// Figure 5 (remote sweep: 9 boards × 5–500 MHz at 35 dBm / 5 m) through
/// the campaign engine.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn fig5(fidelity: Fidelity, workers: usize) -> Result<Vec<Fig5Row>, CampaignError> {
    use gecko_sim::experiments::fig5::{DISTANCE_M, POWER_DBM};
    let step = match fidelity {
        Fidelity::Quick => 11e6,
        Fidelity::Full => 5e6,
    };
    let freqs = lin_freq_grid(5e6, 500e6, step);
    let attacks: Vec<AttackCase> = freqs
        .iter()
        .map(|&f| {
            AttackCase::new(
                format!("{:.0}Hz", f),
                AttackSchedule::continuous(
                    EmiSignal::new(f, POWER_DBM),
                    Injection::Remote {
                        distance_m: DISTANCE_M,
                    },
                ),
            )
        })
        .collect();
    let devices: Vec<DeviceCase> = gecko_emi::devices::all_devices()
        .into_iter()
        .map(|d| DeviceCase::new(d, MonitorKind::Adc))
        .collect();
    let report = attack_study("fig5", devices, attacks, fidelity.window_s(), workers)?;

    let mut out = Vec::new();
    for (di, case) in report.spec.devices.iter().enumerate() {
        for (fi, &f) in freqs.iter().enumerate() {
            out.push(Fig5Row {
                device: case.device.name().to_string(),
                freq_hz: f,
                rate: rate(&report, di, 1 + fi),
            });
        }
    }
    Ok(out)
}

/// Figure 8 (distance × power grid on the MSP430FR5994 at 27 MHz) through
/// the campaign engine.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn fig8(fidelity: Fidelity, workers: usize) -> Result<Vec<Fig8Row>, CampaignError> {
    let (distances, powers): (Vec<f64>, Vec<f64>) = match fidelity {
        Fidelity::Quick => (vec![0.5, 2.0, 5.0], vec![10.0, 25.0, 35.0]),
        Fidelity::Full => (
            vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
            vec![0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0],
        ),
    };
    let mut attacks = Vec::new();
    for &d in &distances {
        for &p in &powers {
            attacks.push(AttackCase::new(
                format!("{d}m@{p}dBm"),
                AttackSchedule::continuous(
                    EmiSignal::new(27e6, p),
                    Injection::Remote { distance_m: d },
                ),
            ));
        }
    }
    let report = attack_study(
        "fig8",
        vec![DeviceCase::default_board()],
        attacks,
        fidelity.window_s(),
        workers,
    )?;

    let mut out = Vec::new();
    for (di, &d) in distances.iter().enumerate() {
        for (pi, &p) in powers.iter().enumerate() {
            out.push(Fig8Row {
                distance_m: d,
                power_dbm: p,
                rate: rate(&report, 0, 1 + di * powers.len() + pi),
            });
        }
    }
    Ok(out)
}

/// Figure 11 (11 apps × 4 schemes, outage-free normalized execution time)
/// through the campaign engine. This is the flagship cache workload: 44
/// cells, 44 compilations sequentially — 44 cells, 44 distinct compiles
/// here too, but each `(app, scheme)` exactly once even with `seeds`
/// widened, and the grid itself runs in parallel.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn fig11(fidelity: Fidelity, workers: usize) -> Result<Vec<Fig11Row>, CampaignError> {
    let runs = match fidelity {
        Fidelity::Quick => 3,
        Fidelity::Full => 20,
    };
    let apps: Vec<String> = gecko_apps::all_apps()
        .iter()
        .map(|a| a.name.to_string())
        .collect();
    let spec = CampaignSpec::new("fig11")
        .apps(apps)
        .schemes(SchemeKind::all())
        .workload(Workload::UntilCompletions {
            n: runs,
            max_seconds: 30.0,
        });
    let report = Campaign::new(spec).workers(workers).run()?;

    let mut out = Vec::new();
    for (ai, app) in report.spec.apps.iter().enumerate() {
        let cycles = |si: usize| {
            let m = report.result_for(ai, si, 0, 0, 0).metrics;
            assert!(m.completions >= runs, "{app}: {m:?}");
            (m.forward_cycles + m.overhead_cycles) as f64 / m.completions as f64
        };
        let nvp = cycles(0);
        for (si, scheme) in report.spec.schemes.iter().enumerate() {
            let c = cycles(si);
            out.push(Fig11Row {
                app: app.clone(),
                scheme: scheme.name().to_string(),
                cycles_per_run: c,
                normalized: c / nvp,
            });
        }
    }
    Ok(out)
}

/// Figure 13 (six attack scenarios × three schemes, throughput timelines
/// in the harvesting environment) through the campaign engine. The
/// unattacked-NVP baseline runs as its own single-item campaign (one
/// uninterrupted `run_for`, exactly like the sequential code), then the
/// 18 timelines fan out with the bucketed workload.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn fig13(fidelity: Fidelity, workers: usize) -> Result<Vec<Fig13Row>, CampaignError> {
    let scale = match fidelity {
        Fidelity::Quick => 0.25,
        Fidelity::Full => 1.0,
    } * MINUTES_PER_SIM_SECOND;
    let horizon_min = 50.0;
    let burst_min = 5.0;
    let bucket_min = 2.5;
    let cap = CapacitorSpec {
        capacitance_f: 100e-6,
        initial_voltage_v: 3.3,
        rescale_thresholds: false,
    };
    let harvesting = Supply::Harvesting { power_w: 1.2e-3 };

    let base_spec = CampaignSpec::new("fig13-baseline")
        .apps([VICTIM_APP])
        .schemes([SchemeKind::Nvp])
        .supply(harvesting)
        .capacitor(cap)
        .workload(Workload::RunFor {
            seconds: horizon_min * scale,
        });
    let base = Campaign::new(base_spec).run()?;
    let base_per_bucket = (base.totals.completions as f64 * bucket_min / horizon_min).max(1e-9);

    let scenarios = gecko_sim::experiments::fig13::scenarios();
    let attacks: Vec<AttackCase> = scenarios
        .iter()
        .map(|(label, bursts)| {
            AttackCase::new(
                *label,
                AttackSchedule::bursts(
                    EmiSignal::new(27e6, 35.0),
                    Injection::Remote { distance_m: 5.0 },
                    &bursts.iter().map(|m| m * scale).collect::<Vec<_>>(),
                    burst_min * scale,
                ),
            )
        })
        .collect();
    let spec = CampaignSpec::new("fig13")
        .apps([VICTIM_APP])
        .schemes([SchemeKind::Nvp, SchemeKind::Ratchet, SchemeKind::Gecko])
        .attacks(attacks)
        .supply(harvesting)
        .capacitor(cap)
        .workload(Workload::Buckets {
            horizon_s: horizon_min * scale,
            bucket_s: bucket_min * scale,
        });
    let report = Campaign::new(spec).workers(workers).run()?;

    // Reassemble in the sequential row order: scenario → scheme → bucket.
    let mut out = Vec::new();
    for (xi, (label, _)) in scenarios.iter().enumerate() {
        let schedule = &report.spec.attacks[xi].schedule;
        for (si, scheme) in report.spec.schemes.iter().enumerate() {
            let buckets = &report.result_for(0, si, 0, xi, 0).buckets;
            let mut prev = 0u64;
            for (bi, m) in buckets.iter().enumerate() {
                let t = bi as f64 * bucket_min;
                let done = m.completions - prev;
                prev = m.completions;
                let mid = (t + bucket_min / 2.0) * scale;
                out.push(Fig13Row {
                    scenario: (*label).to_string(),
                    scheme: scheme.name().to_string(),
                    t_min: t,
                    under_attack: schedule.active_at(mid).is_some(),
                    throughput_pct: 100.0 * done as f64 / base_per_bucket,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // fig8 Quick is the smallest full attack study: 1 device × (1 + 9)
    // cells. The parallel port must agree with the sequential reference
    // bit-for-bit.
    #[test]
    fn fig8_matches_sequential_reference() {
        let parallel = fig8(Fidelity::Quick, 4).unwrap();
        let sequential = gecko_sim::experiments::fig8::rows(Fidelity::Quick);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn fig4_matches_sequential_reference() {
        let parallel = fig4(Fidelity::Quick, 4).unwrap();
        let sequential = gecko_sim::experiments::fig4::rows(Fidelity::Quick);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn fig5_matches_sequential_reference() {
        let parallel = fig5(Fidelity::Quick, 4).unwrap();
        let sequential = gecko_sim::experiments::fig5::rows(Fidelity::Quick);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn fig13_matches_sequential_reference() {
        let parallel = fig13(Fidelity::Quick, 4).unwrap();
        let sequential = gecko_sim::experiments::fig13::rows(Fidelity::Quick);
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p, s);
        }
    }
}
