//! The compiled-program cache: each `(app, scheme, compile options)` cell
//! is compiled exactly once per campaign and the artifact is shared
//! read-only (via `Arc`) across all worker threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use gecko_apps::App;
use gecko_compiler::{CompileError, CompileOptions};
use gecko_sim::device::CompiledApp;
use gecko_sim::SchemeKind;

use crate::supervisor::lock_unpoisoned;

/// What a compilation depends on. `CompileOptions` is expanded into its
/// fields so the key stays `Eq + Hash` without imposing those bounds
/// upstream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Application name (apps are identified by name in a campaign).
    pub app: String,
    /// The recovery scheme.
    pub scheme: SchemeKind,
    /// `CompileOptions::wcet_budget_cycles`.
    pub wcet_budget_cycles: Option<u64>,
    /// `CompileOptions::prune`.
    pub prune: bool,
    /// `CompileOptions::max_slice_insts`.
    pub max_slice_insts: usize,
}

impl CacheKey {
    /// Builds the key for one cell.
    pub fn new(app: &str, scheme: SchemeKind, options: &CompileOptions) -> CacheKey {
        CacheKey {
            app: app.to_string(),
            scheme,
            wcet_budget_cycles: options.wcet_budget_cycles,
            prune: options.prune,
            max_slice_insts: options.max_slice_insts,
        }
    }
}

type Slot = Arc<OnceLock<Result<Arc<CompiledApp>, CompileError>>>;

/// A concurrent compile-once cache.
///
/// The map lock is held only to find/insert the cell's `OnceLock`; the
/// compilation itself runs outside it, so different cells compile in
/// parallel while racing workers on the *same* cell block on the
/// `OnceLock` and then share the single artifact.
#[derive(Debug, Default)]
pub struct ProgramCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the compiled artifact for `(app, scheme, options)` plus a
    /// `cache_hit` flag (`false` exactly for the one caller that ran the
    /// compilation), compiling on first use. Concurrent callers for the
    /// same key get the same `Arc`; racing callers that blocked on the
    /// in-flight compilation report a hit.
    ///
    /// # Errors
    ///
    /// Propagates the (cached) compiler error for the cell.
    pub fn get_or_compile(
        &self,
        app: &App,
        scheme: SchemeKind,
        options: &CompileOptions,
    ) -> Result<(Arc<CompiledApp>, bool), CompileError> {
        let key = CacheKey::new(app.name, scheme, options);
        // Poison-recovering lock: a quarantined panic while some worker
        // held the map lock must not wedge every later compilation. The
        // map itself is only mutated by `entry().or_default()`, which
        // cannot leave it half-updated, and `OnceLock::get_or_init` rolls
        // back cleanly if an initializer panics, so recovery is sound.
        let slot = {
            let mut slots = lock_unpoisoned(&self.slots);
            slots.entry(key).or_default().clone()
        };
        let mut compiled_here = false;
        let result = slot.get_or_init(|| {
            compiled_here = true;
            CompiledApp::build(app, scheme, options).map(Arc::new)
        });
        if compiled_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone().map(|artifact| (artifact, !compiled_here))
    }

    /// Lookups that found an existing artifact.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that compiled (exactly one per distinct key).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cells in the cache.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.slots).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_each_cell_exactly_once() {
        let cache = ProgramCache::new();
        let app = gecko_apps::app_by_name("crc16").unwrap();
        let opts = CompileOptions::default();
        let (a, a_hit) = cache
            .get_or_compile(&app, SchemeKind::Gecko, &opts)
            .unwrap();
        let (b, b_hit) = cache
            .get_or_compile(&app, SchemeKind::Gecko, &opts)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the artifact");
        assert!(!a_hit, "first lookup compiles");
        assert!(b_hit, "second lookup hits");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);

        let (c, c_hit) = cache.get_or_compile(&app, SchemeKind::Nvp, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!c_hit, "new scheme is a new cell");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn distinct_options_are_distinct_cells() {
        let cache = ProgramCache::new();
        let app = gecko_apps::app_by_name("crc16").unwrap();
        let opts = CompileOptions::default();
        let (pruned, _) = cache
            .get_or_compile(&app, SchemeKind::Gecko, &opts)
            .unwrap();
        let (unpruned, _) = cache
            .get_or_compile(&app, SchemeKind::Gecko, &opts.without_pruning())
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_ne!(pruned.stats.checkpoints_after, 0);
        assert!(unpruned.stats.checkpoints_after >= pruned.stats.checkpoints_after);
    }

    #[test]
    fn recovers_from_a_poisoned_map_lock() {
        let cache = ProgramCache::new();
        let app = gecko_apps::app_by_name("crc16").unwrap();
        let opts = CompileOptions::default();
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.slots.lock().unwrap();
            panic!("simulated quarantined panic while holding the cache lock");
        }));
        assert!(poisoner.is_err());
        assert!(cache.slots.lock().is_err(), "the lock really is poisoned");
        let (_, hit) = cache
            .get_or_compile(&app, SchemeKind::Gecko, &opts)
            .unwrap();
        assert!(!hit, "compilation proceeds past the poison");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn concurrent_same_key_shares_one_compile() {
        let cache = Arc::new(ProgramCache::new());
        let app = gecko_apps::app_by_name("fft").unwrap();
        let opts = CompileOptions::default();
        let mut hit_flags = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let app = app.clone();
                handles.push(s.spawn(move || {
                    let (_, hit) = cache
                        .get_or_compile(&app, SchemeKind::Gecko, &opts)
                        .unwrap();
                    hit
                }));
            }
            for h in handles {
                hit_flags.push(h.join().unwrap());
            }
        });
        assert_eq!(cache.misses(), 1, "one compilation for four workers");
        assert_eq!(cache.hits(), 3);
        assert_eq!(
            hit_flags.iter().filter(|&&hit| !hit).count(),
            1,
            "exactly one caller compiled: {hit_flags:?}"
        );
    }
}
