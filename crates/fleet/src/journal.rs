//! Append-only JSON-lines run journals — the "checkpoint" behind
//! [`Campaign::resume`](crate::Campaign::resume).
//!
//! A journal records, one JSON object per line, every run a campaign has
//! completed: a header that fingerprints the spec, the full per-run
//! result (all 16 [`Metrics`] fields, compile statistics, bucket edges),
//! and nothing else. On resume the campaign re-reads the journal, skips
//! every journaled run, and merges journaled results with freshly
//! executed ones **in item order** — so a killed-and-resumed campaign is
//! bit-exact against an uninterrupted one at any worker count (the same
//! invariant the worker pool already guarantees).
//!
//! Design notes:
//!
//! * Lines are written through the same dependency-free encoder as every
//!   other JSON artifact in the workspace ([`gecko_sim::report`]); f64
//!   fields round-trip exactly because the encoder emits Rust's shortest
//!   round-trip formatting (integral floats keep a `.0`).
//! * A run's `bucket` lines are appended *before* its `run_done` line, so
//!   a torn write (kill mid-append) at worst loses the final line — a run
//!   without its `run_done` marker is simply re-executed.
//! * Journal I/O never panics a worker: failed appends degrade to a drop
//!   counter, surfaced like any other degraded sink.
//! * Malformed or foreign lines are skipped, not fatal; the spec
//!   fingerprint in the header is what guards against resuming the wrong
//!   campaign.
//! * Durability is checkpoint-shaped, not per-line: [`Journal::sync`] is
//!   called by the campaign once the pool drains (and segment seals fsync
//!   on their own), so the clean path stays cheap while a power cut can
//!   only cost lines since the last checkpoint — which resume re-executes.
//! * A file torn mid-append is repaired on [`Journal::open`] (the partial
//!   final line is truncated away and counted in
//!   [`Journal::torn_tails`]), so resume never sees a glued-together
//!   hybrid of an old tail and a new append.
//! * For long-running services, [`Journal::segmented`] stores the lines
//!   in a [`gecko_store::SegmentedLog`] — sealed segments the store's
//!   pruner can compact (under [`classify_campaign_lines`]) without
//!   disturbing the bit-exact resume guarantee.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gecko_compiler::CompileStats;
use gecko_sim::report::{Record as _, Value};
use gecko_sim::Metrics;
use gecko_store::{SegmentedLog, Verdict};

use crate::campaign::RunResult;
use crate::supervisor::lock_unpoisoned;
use crate::telemetry::json_kv;

/// The storage behind a journal: an in-memory line buffer (tests,
/// kill/resume property tests), an append-only file, or a segmented log
/// managed by `gecko-store` (prunable, retention-aware).
enum Backend {
    Memory(Vec<String>),
    File {
        path: PathBuf,
        writer: std::io::BufWriter<std::fs::File>,
    },
    Segmented(Arc<SegmentedLog>),
}

/// An append-only JSON-lines journal. Cheap to share behind an `Arc`;
/// appends are serialized by an internal (poison-recovering) lock and
/// flushed line-by-line so a kill loses at most the line being written.
pub struct Journal {
    backend: Mutex<Backend>,
    dropped: AtomicU64,
    torn_tails: AtomicU64,
}

impl Journal {
    /// An in-memory journal (nothing touches disk).
    pub fn memory() -> Journal {
        Journal {
            backend: Mutex::new(Backend::Memory(Vec::new())),
            dropped: AtomicU64::new(0),
            torn_tails: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) an append-only file journal. Existing
    /// lines are preserved — that is the whole point. A final line torn
    /// by a kill mid-append is truncated away (and counted in
    /// [`Journal::torn_tails`]) rather than poisoning the next append.
    ///
    /// # Errors
    ///
    /// Propagates file-open and tail-repair errors.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let torn = path.exists() && gecko_store::repair_torn_tail(path)?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal {
            backend: Mutex::new(Backend::File {
                path: path.to_path_buf(),
                writer: std::io::BufWriter::new(file),
            }),
            dropped: AtomicU64::new(0),
            torn_tails: AtomicU64::new(u64::from(torn)),
        })
    }

    /// Wraps a [`SegmentedLog`] as a journal. The log stays shared: the
    /// campaign appends through this journal while the store's pruner
    /// compacts sealed segments of the same log concurrently.
    pub fn segmented(log: Arc<SegmentedLog>) -> Journal {
        Journal {
            backend: Mutex::new(Backend::Segmented(log)),
            dropped: AtomicU64::new(0),
            torn_tails: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) a segmented journal in directory `dir`.
    ///
    /// # Errors
    ///
    /// Propagates [`SegmentedLog::open`] errors.
    pub fn open_segmented(dir: &Path, cfg: gecko_store::LogConfig) -> std::io::Result<Journal> {
        Ok(Journal::segmented(Arc::new(SegmentedLog::open(dir, cfg)?)))
    }

    /// The underlying segmented log, when this journal has one (for
    /// pruner registration and stats).
    pub fn segment_log(&self) -> Option<Arc<SegmentedLog>> {
        match &*lock_unpoisoned(&self.backend) {
            Backend::Segmented(log) => Some(Arc::clone(log)),
            _ => None,
        }
    }

    /// Appends one line (the terminating newline is added here). Never
    /// panics: on I/O failure the line is dropped and counted.
    pub fn append(&self, line: &str) {
        let mut backend = lock_unpoisoned(&self.backend);
        match &mut *backend {
            Backend::Memory(lines) => lines.push(line.to_string()),
            Backend::File { writer, .. } => {
                let ok = writeln!(writer, "{line}").is_ok() && writer.flush().is_ok();
                if !ok {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Backend::Segmented(log) => log.append(line),
        }
    }

    /// Forces everything appended so far onto stable storage (`fsync`) —
    /// the checkpoint-boundary durability hook. The campaign calls this
    /// once the pool drains rather than per line, so the clean path stays
    /// cheap; failures are counted as drops (the lines may not survive a
    /// power cut) instead of panicking.
    pub fn sync(&self) {
        let mut backend = lock_unpoisoned(&self.backend);
        let result = match &mut *backend {
            Backend::Memory(_) => Ok(()),
            Backend::File { writer, .. } => {
                writer.flush().and_then(|()| writer.get_ref().sync_all())
            }
            Backend::Segmented(log) => log.sync(),
        };
        if result.is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Every line currently in the journal, in append order (for a file
    /// journal this re-reads the file, so it also sees lines written by
    /// a previous process).
    pub fn lines(&self) -> Vec<String> {
        let mut backend = lock_unpoisoned(&self.backend);
        match &mut *backend {
            Backend::Memory(lines) => lines.clone(),
            Backend::File { path, writer } => {
                let _ = writer.flush();
                let mut text = String::new();
                match std::fs::File::open(&*path) {
                    Ok(mut f) => {
                        let _ = f.read_to_string(&mut text);
                    }
                    Err(_) => return Vec::new(),
                }
                text.lines().map(str::to_string).collect()
            }
            Backend::Segmented(log) => log.lines(),
        }
    }

    /// Lines dropped because of I/O failures (including failed
    /// [`Journal::sync`] checkpoints).
    pub fn dropped(&self) -> u64 {
        let backend_drops = match &*lock_unpoisoned(&self.backend) {
            Backend::Segmented(log) => log.dropped(),
            _ => 0,
        };
        self.dropped.load(Ordering::Relaxed) + backend_drops
    }

    /// Torn final lines truncated away when the journal was opened.
    pub fn torn_tails(&self) -> u64 {
        let backend_torn = match &*lock_unpoisoned(&self.backend) {
            Backend::Segmented(log) => log.torn_tails(),
            _ => 0,
        };
        self.torn_tails.load(Ordering::Relaxed) + backend_torn
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = lock_unpoisoned(&self.backend);
        match &*backend {
            Backend::Memory(lines) => write!(f, "Journal::memory({} lines)", lines.len()),
            Backend::File { path, .. } => write!(f, "Journal::open({})", path.display()),
            Backend::Segmented(log) => write!(f, "Journal::segmented({log:?})"),
        }
    }
}

// ---------------------------------------------------------------------------
// A tolerant flat-JSON reader (the decoder half of the workspace's
// dependency-free JSON story; the encoder lives in gecko_sim::report).
// ---------------------------------------------------------------------------

/// A scalar read back from a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A string.
    Str(String),
    /// A non-negative integer (no `.`/exponent, no sign).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (the encoder always emits a `.` for floats).
    F64(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonScalar {
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::F64(v) => Some(*v),
            JsonScalar::U64(v) => Some(*v as f64),
            JsonScalar::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonScalar::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"key": scalar, ...}`) into ordered
/// key/value pairs. Returns `None` on anything malformed or nested — a
/// torn journal line is skipped, never fatal.
pub fn parse_flat_json(line: &str) -> Option<Vec<(String, JsonScalar)>> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        i: 0,
    };
    p.expect(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.eat(b'}') {
        return p.at_end().then_some(out);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.scalar()?;
        out.push((key, value));
        p.skip_ws();
        if p.eat(b',') {
            continue;
        }
        p.expect(b'}')?;
        return p.at_end().then_some(out);
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        self.eat(b).then_some(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.i == self.bytes.len()
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn scalar(&mut self) -> Option<JsonScalar> {
        match self.peek()? {
            b'"' => Some(JsonScalar::Str(self.string()?)),
            b't' => self.literal("true", JsonScalar::Bool(true)),
            b'f' => self.literal("false", JsonScalar::Bool(false)),
            b'n' => self.literal("null", JsonScalar::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn literal(&mut self, word: &str, value: JsonScalar) -> Option<JsonScalar> {
        let end = self.i + word.len();
        if self.bytes.get(self.i..end)? == word.as_bytes() {
            self.i = end;
            Some(value)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<JsonScalar> {
        let start = self.i;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.i += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i]).ok()?;
        if is_float {
            text.parse().ok().map(JsonScalar::F64)
        } else if text.starts_with('-') {
            text.parse().ok().map(JsonScalar::I64)
        } else {
            text.parse().ok().map(JsonScalar::U64)
        }
    }
}

/// Convenience over [`parse_flat_json`]: field lookup by name.
pub fn field<'a>(fields: &'a [(String, JsonScalar)], name: &str) -> Option<&'a JsonScalar> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Campaign journal lines
// ---------------------------------------------------------------------------

/// Journal line kinds for metric campaigns (`gecko-fleet`). The checker
/// defines its own vocabulary on top of the same [`Journal`] + parser.
pub mod lines {
    /// Header: campaign identity + spec fingerprint.
    pub const HEADER: &str = "campaign";
    /// One bucket edge of a `Workload::Buckets` run (precedes `run_done`).
    pub const BUCKET: &str = "bucket";
    /// A completed run with its full result payload.
    pub const RUN_DONE: &str = "run_done";
}

/// Encodes the journal header for a campaign.
pub fn encode_header(name: &str, fingerprint: u64) -> String {
    json_kv(&[
        ("journal", Value::Str(lines::HEADER.to_string())),
        ("name", Value::Str(name.to_string())),
        ("fingerprint", Value::U64(fingerprint)),
    ])
}

/// Decodes a journal header line (`None` if this is not a header).
pub fn decode_header(line: &str) -> Option<(String, u64)> {
    let fields = parse_flat_json(line)?;
    if field(&fields, "journal")?.as_str()? != lines::HEADER {
        return None;
    }
    Some((
        field(&fields, "name")?.as_str()?.to_string(),
        field(&fields, "fingerprint")?.as_u64()?,
    ))
}

/// Encodes one completed run as its journal lines: the `bucket` lines
/// first, the `run_done` marker last (torn-write safety).
pub(crate) fn encode_run(run_key: u64, result: &RunResult) -> Vec<String> {
    let mut out = Vec::with_capacity(result.buckets.len() + 1);
    for (i, bucket) in result.buckets.iter().enumerate() {
        let mut fields = vec![
            ("kind", Value::Str(lines::BUCKET.to_string())),
            ("run_key", Value::U64(run_key)),
            ("bucket", Value::U64(i as u64)),
        ];
        fields.extend(bucket.fields());
        out.push(json_kv(&fields));
    }
    let s = &result.compile_stats;
    let mut fields = vec![
        ("kind", Value::Str(lines::RUN_DONE.to_string())),
        ("run_key", Value::U64(run_key)),
        ("item", Value::U64(result.item.index as u64)),
        ("buckets", Value::U64(result.buckets.len() as u64)),
        ("cache_hit", Value::Bool(result.cache_hit)),
        ("wall_ns", Value::U64(result.wall_ns)),
        ("cs_regions", Value::U64(s.regions as u64)),
        ("cs_regions_split", Value::U64(s.regions_split as u64)),
        (
            "cs_checkpoints_before",
            Value::U64(s.checkpoints_before as u64),
        ),
        (
            "cs_checkpoints_after",
            Value::U64(s.checkpoints_after as u64),
        ),
        (
            "cs_checkpoints_pruned",
            Value::U64(s.checkpoints_pruned as u64),
        ),
        ("cs_recovery_blocks", Value::U64(s.recovery_blocks as u64)),
        ("cs_recovery_insts", Value::U64(s.recovery_insts as u64)),
        ("cs_coloring_fixups", Value::U64(s.coloring_fixups as u64)),
        (
            "cs_boundaries_hoisted",
            Value::U64(s.boundaries_hoisted as u64),
        ),
    ];
    fields.extend(result.metrics.fields());
    out.push(json_kv(&fields));
    out
}

/// A run restored from the journal (everything but the `WorkItem`, which
/// the resuming campaign re-derives from the item index).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JournaledRun {
    pub item: usize,
    pub metrics: Metrics,
    pub buckets: Vec<Metrics>,
    pub compile_stats: CompileStats,
    pub cache_hit: bool,
    pub wall_ns: u64,
}

fn metrics_from(fields: &[(String, JsonScalar)]) -> Option<Metrics> {
    let u = |name: &str| field(fields, name)?.as_u64();
    let f = |name: &str| field(fields, name)?.as_f64();
    Some(Metrics {
        sim_time_s: f("sim_time_s")?,
        forward_cycles: u("forward_cycles")?,
        overhead_cycles: u("overhead_cycles")?,
        completions: u("completions")?,
        checksum_errors: u("checksum_errors")?,
        jit_checkpoints: u("jit_checkpoints")?,
        jit_checkpoint_failures: u("jit_checkpoint_failures")?,
        reboots: u("reboots")?,
        dirty_deaths: u("dirty_deaths")?,
        rollbacks: u("rollbacks")?,
        recovery_slices: u("recovery_slices")?,
        attack_detections: u("attack_detections")?,
        jit_reenables: u("jit_reenables")?,
        checkpoint_stores: u("checkpoint_stores")?,
        boundary_commits: u("boundary_commits")?,
        fault_skips: u("fault_skips")?,
        fault_corruptions: u("fault_corruptions")?,
        energy_nj: f("energy_nj")?,
    })
}

fn compile_stats_from(fields: &[(String, JsonScalar)]) -> Option<CompileStats> {
    let u = |name: &str| Some(field(fields, name)?.as_u64()? as usize);
    Some(CompileStats {
        regions: u("cs_regions")?,
        regions_split: u("cs_regions_split")?,
        checkpoints_before: u("cs_checkpoints_before")?,
        checkpoints_after: u("cs_checkpoints_after")?,
        checkpoints_pruned: u("cs_checkpoints_pruned")?,
        recovery_blocks: u("cs_recovery_blocks")?,
        recovery_insts: u("cs_recovery_insts")?,
        coloring_fixups: u("cs_coloring_fixups")?,
        boundaries_hoisted: u("cs_boundaries_hoisted")?,
    })
}

/// Replays a campaign journal: the header (if any) plus every completed
/// run keyed by run key. Runs whose `run_done` line is missing or torn —
/// or whose bucket lines are incomplete — are silently absent (they will
/// simply be re-executed). Later duplicates win, so a journal appended by
/// two overlapping sessions still resolves deterministically.
pub(crate) fn decode_campaign(
    journal_lines: &[String],
) -> (Option<(String, u64)>, HashMap<u64, JournaledRun>) {
    let mut header = None;
    let mut buckets: HashMap<u64, Vec<(u64, Metrics)>> = HashMap::new();
    let mut runs = HashMap::new();
    for line in journal_lines {
        let Some(fields) = parse_flat_json(line) else {
            continue;
        };
        if let Some(h) = decode_header(line) {
            header.get_or_insert(h);
            continue;
        }
        let Some(kind) = field(&fields, "kind").and_then(JsonScalar::as_str) else {
            continue;
        };
        let Some(run_key) = field(&fields, "run_key").and_then(JsonScalar::as_u64) else {
            continue;
        };
        match kind {
            k if k == lines::BUCKET => {
                let (Some(index), Some(metrics)) = (
                    field(&fields, "bucket").and_then(JsonScalar::as_u64),
                    metrics_from(&fields),
                ) else {
                    continue;
                };
                buckets.entry(run_key).or_default().push((index, metrics));
            }
            k if k == lines::RUN_DONE => {
                let decoded = (|| {
                    let item = field(&fields, "item")?.as_u64()? as usize;
                    let n_buckets = field(&fields, "buckets")?.as_u64()?;
                    let mut edges = buckets.remove(&run_key).unwrap_or_default();
                    edges.sort_by_key(|(i, _)| *i);
                    let complete = edges.len() as u64 == n_buckets
                        && edges.iter().enumerate().all(|(i, (j, _))| i as u64 == *j);
                    if !complete {
                        return None;
                    }
                    Some(JournaledRun {
                        item,
                        metrics: metrics_from(&fields)?,
                        buckets: edges.into_iter().map(|(_, m)| m).collect(),
                        compile_stats: compile_stats_from(&fields)?,
                        cache_hit: field(&fields, "cache_hit")?.as_bool()?,
                        wall_ns: field(&fields, "wall_ns")?.as_u64()?,
                    })
                })();
                if let Some(run) = decoded {
                    runs.insert(run_key, run);
                }
            }
            _ => {}
        }
    }
    (header, runs)
}

/// Classifies every line of a campaign journal for the store's
/// compactor: one [`Verdict`] per line, where `Delete` marks lines
/// the resume decoder either skips (torn/garbage, incomplete run groups,
/// duplicate headers) or resolves against a later duplicate (superseded
/// runs). The invariant pruning rests on: deleting every `Delete` line
/// leaves `decode_campaign` output unchanged — so a resumed campaign
/// merges bit-exactly whether or not the journal was pruned in between.
///
/// A run's lines are classified as a *group* (its `bucket` edges plus the
/// `run_done` marker), mirroring how the decoder consumes them: a
/// superseded run's whole group dies together, and an incomplete group
/// (torn `run_done`, missing edges) is dead because the decoder restores
/// nothing from it. Trailing `bucket` lines with no `run_done` yet are
/// kept — the campaign may still be appending their run. Parseable lines
/// in a foreign vocabulary are kept untouched.
pub fn classify_campaign_lines(journal_lines: &[String]) -> Vec<Verdict> {
    let mut verdicts = vec![Verdict::Keep; journal_lines.len()];
    let mut seen_header = false;
    // Per key: bucket-line indices of the group currently being appended.
    let mut pending: HashMap<u64, Vec<usize>> = HashMap::new();
    // Per key: the line indices of the last *complete* group (the one the
    // decoder will restore).
    let mut last_group: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, line) in journal_lines.iter().enumerate() {
        let Some(fields) = parse_flat_json(line) else {
            verdicts[i] = Verdict::Delete; // torn/garbage: invisible to the decoder
            continue;
        };
        if decode_header(line).is_some() {
            if seen_header {
                verdicts[i] = Verdict::Delete; // the decoder keeps the first header
            }
            seen_header = true;
            continue;
        }
        let kind = field(&fields, "kind").and_then(JsonScalar::as_str);
        let run_key = field(&fields, "run_key").and_then(JsonScalar::as_u64);
        match (kind, run_key) {
            (Some(k), Some(run_key)) if k == lines::BUCKET => {
                // The decoder only accumulates a bucket edge that carries
                // an index and full metrics; anything less is invisible.
                let usable = field(&fields, "bucket")
                    .and_then(JsonScalar::as_u64)
                    .is_some()
                    && metrics_from(&fields).is_some();
                if usable {
                    pending.entry(run_key).or_default().push(i);
                } else {
                    verdicts[i] = Verdict::Delete;
                }
            }
            (Some(k), Some(run_key)) if k == lines::RUN_DONE => {
                let mut group = pending.remove(&run_key).unwrap_or_default();
                group.push(i);
                // Mirror the decoder's completeness test exactly: edges
                // sort to a contiguous 0..n matching the declared count,
                // and the run_done payload fully decodes.
                let complete = (|| {
                    let n_buckets = field(&fields, "buckets")?.as_u64()?;
                    let mut edges: Vec<u64> = Vec::with_capacity(group.len() - 1);
                    for &gi in &group[..group.len() - 1] {
                        let f = parse_flat_json(&journal_lines[gi])?;
                        edges.push(field(&f, "bucket")?.as_u64()?);
                    }
                    edges.sort_unstable();
                    let contiguous = edges.len() as u64 == n_buckets
                        && edges.iter().enumerate().all(|(j, e)| j as u64 == *e);
                    if !contiguous {
                        return None;
                    }
                    field(&fields, "item")?.as_u64()?;
                    metrics_from(&fields)?;
                    compile_stats_from(&fields)?;
                    field(&fields, "cache_hit")?.as_bool()?;
                    field(&fields, "wall_ns")?.as_u64()?;
                    Some(())
                })()
                .is_some();
                if complete {
                    if let Some(superseded) = last_group.insert(run_key, group) {
                        for idx in superseded {
                            verdicts[idx] = Verdict::Delete;
                        }
                    }
                } else {
                    // The decoder consumes the edges and restores nothing:
                    // the whole group is dead.
                    for idx in group {
                        verdicts[idx] = Verdict::Delete;
                    }
                }
            }
            _ => {} // foreign vocabulary: not ours to prune
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::WorkItem;

    #[test]
    fn parser_round_trips_encoder_output() {
        let line = json_kv(&[
            ("s", Value::Str("a\"b\\c\nd".to_string())),
            ("u", Value::U64(u64::MAX)),
            ("i", Value::I64(-42)),
            ("f", Value::F64(0.1 + 0.2)),
            ("g", Value::F64(2.0)),
            ("tiny", Value::F64(3.1e-7)),
            ("b", Value::Bool(true)),
            ("z", Value::Null),
        ]);
        let fields = parse_flat_json(&line).expect("parses");
        assert_eq!(field(&fields, "s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(field(&fields, "u").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(field(&fields, "i"), Some(&JsonScalar::I64(-42)));
        // Bit-exact f64 round-trips — the property resume correctness
        // rests on.
        assert_eq!(
            field(&fields, "f").unwrap().as_f64().unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert_eq!(field(&fields, "g").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            field(&fields, "tiny").unwrap().as_f64().unwrap().to_bits(),
            3.1e-7f64.to_bits()
        );
        assert_eq!(field(&fields, "b").unwrap().as_bool(), Some(true));
        assert_eq!(field(&fields, "z"), Some(&JsonScalar::Null));
    }

    #[test]
    fn parser_rejects_torn_and_nested_lines() {
        assert!(parse_flat_json("").is_none());
        assert!(parse_flat_json("{\"a\":1").is_none(), "torn line");
        assert!(parse_flat_json("{\"a\":{\"b\":1}}").is_none(), "nested");
        assert!(parse_flat_json("{\"a\":[1]}").is_none(), "array");
        assert!(parse_flat_json("{\"a\":1} trailing").is_none());
        assert!(parse_flat_json("{}").is_some_and(|f| f.is_empty()));
    }

    fn sample_result(index: usize, buckets: usize) -> RunResult {
        let item = WorkItem {
            index,
            app_idx: 0,
            scheme_idx: 0,
            device_idx: 0,
            attack_idx: 0,
            fault_idx: 0,
            seed_idx: index,
        };
        let mut metrics = Metrics {
            sim_time_s: 0.1 + index as f64 * 0.37,
            forward_cycles: 1_000 + index as u64,
            completions: 3,
            energy_nj: 17.25e3 + index as f64,
            ..Metrics::default()
        };
        let buckets: Vec<Metrics> = (0..buckets)
            .map(|b| {
                let mut m = metrics;
                m.forward_cycles = 100 * (b as u64 + 1);
                m
            })
            .collect();
        if let Some(last) = buckets.last() {
            metrics = *last;
        }
        RunResult {
            item,
            metrics,
            buckets,
            compile_stats: CompileStats {
                regions: 5,
                checkpoints_after: 2,
                ..CompileStats::default()
            },
            cache_hit: index > 0,
            wall_ns: 123_456 + index as u64,
        }
    }

    #[test]
    fn run_lines_round_trip_bit_exactly() {
        let journal = Journal::memory();
        journal.append(&encode_header("rt", 0xFEED));
        let a = sample_result(0, 0);
        let b = sample_result(4, 3);
        for line in encode_run(11, &a).iter().chain(encode_run(22, &b).iter()) {
            journal.append(line);
        }
        let (header, runs) = decode_campaign(&journal.lines());
        assert_eq!(header, Some(("rt".to_string(), 0xFEED)));
        assert_eq!(runs.len(), 2);
        let ra = &runs[&11];
        assert_eq!(ra.item, 0);
        assert_eq!(ra.metrics, a.metrics);
        assert_eq!(ra.compile_stats, a.compile_stats);
        assert_eq!(ra.cache_hit, a.cache_hit);
        assert_eq!(ra.wall_ns, a.wall_ns);
        let rb = &runs[&22];
        assert_eq!(rb.buckets, b.buckets);
        assert_eq!(rb.metrics, b.metrics);
    }

    #[test]
    fn torn_tail_loses_only_the_unfinished_run() {
        let journal = Journal::memory();
        journal.append(&encode_header("torn", 1));
        for line in encode_run(1, &sample_result(0, 2)) {
            journal.append(&line);
        }
        // A second run whose run_done line never made it out...
        let partial = encode_run(2, &sample_result(1, 2));
        journal.append(&partial[0]);
        // ...and a torn half-line from the kill itself.
        journal.append("{\"kind\":\"run_done\",\"run_key\":2,\"it");
        let (_, runs) = decode_campaign(&journal.lines());
        assert!(runs.contains_key(&1), "completed run survives");
        assert!(!runs.contains_key(&2), "unfinished run is re-executed");
    }

    #[test]
    fn classifier_only_deletes_lines_the_decoder_ignores() {
        let journal = Journal::memory();
        journal.append(&encode_header("cls", 9));
        journal.append(&encode_header("cls", 9)); // duplicate header: dead
                                                  // Run 1 journaled twice (overlapping sessions): first group dies.
        for line in encode_run(1, &sample_result(0, 2)) {
            journal.append(&line);
        }
        journal.append("{\"kind\":\"run_done\",\"run_key\":7,\"it"); // torn: dead
        for line in encode_run(1, &sample_result(0, 2)) {
            journal.append(&line);
        }
        // Run 2: complete, must survive untouched.
        for line in encode_run(2, &sample_result(1, 1)) {
            journal.append(&line);
        }
        // Run 3: bucket edges with no run_done yet — still in flight.
        let partial = encode_run(3, &sample_result(2, 2));
        journal.append(&partial[0]);
        journal.append(&partial[1]);
        // A foreign-vocabulary line is not ours to prune.
        journal.append("{\"kind\":\"chunk_done\",\"run_key\":4,\"windows\":3}");

        let all = journal.lines();
        let verdicts = classify_campaign_lines(&all);
        let pruned: Vec<String> = all
            .iter()
            .zip(&verdicts)
            .filter(|(_, v)| **v == Verdict::Keep)
            .map(|(l, _)| l.clone())
            .collect();
        assert!(pruned.len() < all.len(), "something was prunable");
        assert_eq!(
            decode_campaign(&all),
            decode_campaign(&pruned),
            "pruning must be invisible to the decoder"
        );
        assert!(
            pruned.iter().any(|l| l.contains("chunk_done")),
            "foreign lines survive"
        );
        let in_flight = pruned
            .iter()
            .filter(|l| l.contains("\"run_key\":3"))
            .count();
        assert_eq!(in_flight, 2, "in-flight bucket edges survive");
        assert_eq!(
            pruned.iter().filter(|l| decode_header(l).is_some()).count(),
            1,
            "exactly one header survives"
        );
    }

    #[test]
    fn open_repairs_a_torn_tail_and_counts_it() {
        let path =
            std::env::temp_dir().join(format!("gecko-journal-torn-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path).unwrap();
            journal.append(&encode_header("torn", 3));
            for line in encode_run(5, &sample_result(0, 0)) {
                journal.append(&line);
            }
        }
        // Kill mid-append: chop the file mid-byte of its last record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();

        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.torn_tails(), 1, "repair is counted");
        let (header, runs) = decode_campaign(&journal.lines());
        assert_eq!(header, Some(("torn".to_string(), 3)));
        assert!(!runs.contains_key(&5), "the torn run is re-executed");
        // Appends after the repair start on a fresh line — journal the
        // run again and it decodes.
        for line in encode_run(5, &sample_result(0, 0)) {
            journal.append(&line);
        }
        journal.sync();
        let (_, runs) = decode_campaign(&journal.lines());
        assert!(runs.contains_key(&5));
        assert_eq!(journal.dropped(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segmented_journal_round_trips_and_exposes_its_log() {
        let dir = std::env::temp_dir().join(format!("gecko-journal-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = Journal::open_segmented(
            &dir,
            gecko_store::LogConfig {
                max_segment_bytes: 256,
            },
        )
        .unwrap();
        journal.append(&encode_header("seg", 11));
        for key in 0..6 {
            for line in encode_run(key, &sample_result(key as usize, 1)) {
                journal.append(&line);
            }
        }
        journal.sync();
        let log = journal.segment_log().expect("segmented backend");
        assert!(log.segments().len() > 1, "small segments rotate");
        let (header, runs) = decode_campaign(&journal.lines());
        assert_eq!(header, Some(("seg".to_string(), 11)));
        assert_eq!(runs.len(), 6);

        // Reopen reads the same lines back.
        drop(journal);
        let reopened = Journal::open_segmented(
            &dir,
            gecko_store::LogConfig {
                max_segment_bytes: 256,
            },
        )
        .unwrap();
        let (_, runs) = decode_campaign(&reopened.lines());
        assert_eq!(runs.len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_journal_persists_across_reopen() {
        let path =
            std::env::temp_dir().join(format!("gecko-journal-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path).unwrap();
            journal.append(&encode_header("file", 7));
            for line in encode_run(9, &sample_result(0, 0)) {
                journal.append(&line);
            }
            assert_eq!(journal.dropped(), 0);
        }
        let reopened = Journal::open(&path).unwrap();
        let (header, runs) = decode_campaign(&reopened.lines());
        assert_eq!(header, Some(("file".to_string(), 7)));
        assert!(runs.contains_key(&9));
        let _ = std::fs::remove_file(&path);
    }
}
