//! Structured telemetry: counters, log-scale histograms, span-style events
//! and pluggable sinks.
//!
//! The campaign engine separates two kinds of observability data:
//!
//! * **Deterministic aggregates** ([`FleetCounters`], the per-item
//!   [`gecko_sim::Metrics`]) are merged in work-item order after the pool
//!   joins, so they are bit-identical regardless of worker count.
//! * **Events** ([`Event`]) stream to a [`TelemetrySink`] *while* workers
//!   run. Their interleaving reflects real scheduling and is inherently
//!   non-deterministic across worker counts; use them for progress
//!   monitoring and post-hoc analysis, not for reproducibility checks.
//!
//! Sinks: [`NullSink`] (default), [`MemorySink`] (tests), and — behind the
//! `json` feature — [`JsonlSink`], which writes one JSON object per line
//! using the dependency-free encoder in [`gecko_sim::report`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gecko_sim::report::{write_json_string, Record, Value};

use crate::supervisor::lock_unpoisoned;

/// A span-style telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event kind, e.g. `"campaign_started"`, `"item_finished"`.
    pub kind: &'static str,
    /// Ordered payload fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Creates an event.
    pub fn new(kind: &'static str, fields: Vec<(&'static str, Value)>) -> Event {
        Event { kind, fields }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }
}

impl Record for Event {
    fn fields(&self) -> Vec<(&'static str, Value)> {
        let mut out = Vec::with_capacity(self.fields.len() + 1);
        out.push(("event", Value::Str(self.kind.to_string())));
        out.extend(self.fields.iter().cloned());
        out
    }
}

/// Where telemetry events go. Implementations must be callable from many
/// worker threads at once.
pub trait TelemetrySink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: Event);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}

    /// Number of records this sink has *dropped* instead of delivering
    /// (I/O failures, injected chaos). Sinks must degrade to dropping —
    /// never panic the emitting worker; the campaign surfaces the count
    /// as a [`crate::RunFailure::SinkDropped`] entry. Default: 0.
    fn dropped_records(&self) -> u64 {
        0
    }
}

/// Discards everything.
#[derive(Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn emit(&self, _event: Event) {}
}

/// Buffers events in memory — the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything emitted so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Number of events with the given kind.
    pub fn count(&self, kind: &str) -> usize {
        lock_unpoisoned(&self.events)
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }
}

impl TelemetrySink for MemorySink {
    fn emit(&self, event: Event) {
        lock_unpoisoned(&self.events).push(event);
    }
}

/// A JSON-lines sink over any writer (usually a file): one event object
/// per line, in arrival order.
///
/// Write failures never panic the emitting worker: the record is dropped,
/// the drop is counted, and the campaign surfaces the total as a
/// `SinkDropped` failure — telemetry degrades, the science continues.
#[cfg(feature = "json")]
pub struct JsonlSink<W: std::io::Write + Send> {
    writer: Mutex<W>,
    dropped: AtomicU64,
}

#[cfg(feature = "json")]
impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSON-lines file sink.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::from_writer(std::io::BufWriter::new(file)))
    }
}

#[cfg(feature = "json")]
impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn from_writer(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
            dropped: AtomicU64::new(0),
        }
    }

    /// Unwraps the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(feature = "json")]
impl<W: std::io::Write + Send> TelemetrySink for JsonlSink<W> {
    fn emit(&self, event: Event) {
        let line = event.to_json();
        let mut w = lock_unpoisoned(&self.writer);
        if writeln!(w, "{line}").is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if lock_unpoisoned(&self.writer).flush().is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn dropped_records(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A telemetry sink writing one event object per line into a
/// [`gecko_store::SegmentedLog`] — the retention-aware sibling of
/// [`JsonlSink`]. Old segments can be aged out by the store's pruner
/// (`LogRetention`) while the campaign keeps appending to the tail; drop
/// accounting and degradation semantics come from the log itself.
pub struct SegmentedSink {
    log: std::sync::Arc<gecko_store::SegmentedLog>,
}

impl SegmentedSink {
    /// Wraps a shared segmented log as a sink.
    pub fn new(log: std::sync::Arc<gecko_store::SegmentedLog>) -> SegmentedSink {
        SegmentedSink { log }
    }

    /// The underlying log (for pruner registration and stats).
    pub fn log(&self) -> std::sync::Arc<gecko_store::SegmentedLog> {
        std::sync::Arc::clone(&self.log)
    }
}

impl TelemetrySink for SegmentedSink {
    fn emit(&self, event: Event) {
        self.log.append(&event.to_json());
    }

    fn flush(&self) {
        // A failed sync is not a lost line (the append already landed in
        // the OS cache); the log's drop counter covers real losses.
        let _ = self.log.sync();
    }

    fn dropped_records(&self) -> u64 {
        self.log.dropped()
    }
}

/// Persists a slice of records as `<dir>/<name>.jsonl`, one object per
/// line — the single JSON pipeline every experiment dump goes through.
///
/// # Errors
///
/// Propagates I/O errors.
#[cfg(feature = "json")]
pub fn persist_records<R: Record>(
    dir: &std::path::Path,
    name: &str,
    rows: &[R],
) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    let mut w = std::io::BufWriter::new(std::fs::File::create(&path)?);
    for r in rows {
        writeln!(w, "{}", r.to_json())?;
    }
    w.flush()?;
    Ok(path)
}

/// Deterministic fleet-level counters, merged in work-item order.
///
/// The exploration counters (`forks` onward) stay zero for metric sweeps;
/// checker campaigns (`gecko-check`) fill them in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetCounters {
    /// Work items executed.
    pub items: u64,
    /// Compiled-program cache misses (actual compilations).
    pub compile_misses: u64,
    /// Compiled-program cache hits (shared artifacts).
    pub compile_hits: u64,
    /// Exploration forks taken (snapshots of the golden trace).
    pub forks: u64,
    /// Post-recovery states actually explored to completion.
    pub states_explored: u64,
    /// Explorations answered from the state-hash memo table.
    pub memo_hits: u64,
    /// Crash-consistency violations found.
    pub violations: u64,
    /// Runs that ended in a quarantined failure (any taxonomy bucket
    /// except `SinkDropped`, which is record-scoped).
    pub failures: u64,
    /// Retry attempts performed beyond each run's first try.
    pub retries: u64,
    /// Runs restored from a resume journal instead of re-executed.
    pub resumed: u64,
    /// Telemetry/journal records dropped by degraded sinks.
    pub dropped_records: u64,
    /// Runs executed through the lock-step `DeviceBatch` path (zero when
    /// the campaign ran per-item).
    pub batched_runs: u64,
    /// Coalesced spans the batched path committed (event-horizon active
    /// spans plus hibernation fast-forwards).
    pub batch_spans: u64,
    /// Device-rounds where an ON device fell off the batch planner onto
    /// the exact scalar path (it rejoins at the next round).
    pub batch_fallbacks: u64,
    /// Batch-planner coverage in permille of live device-rounds (0 when
    /// nothing ran batched). Diagnostic ratio, not additive — recomputed
    /// from the summed round counters at merge time.
    pub batch_occupancy_permille: u64,
    /// Malformed or unknown-tag journal lines surfaced as diagnostics
    /// during a resume (each costs a re-run of the affected item).
    pub journal_diagnostics: u64,
    /// Check windows answered from a persisted memo store instead of
    /// re-explored (`gecko-check` incremental runs only).
    pub memo_windows: u64,
    /// Work-stealing frontier steals performed by the claim layer (zero
    /// under the static-cursor discipline). Scheduling diagnostic — not
    /// part of any deterministic digest.
    pub frontier_steals: u64,
}

/// A log₂-bucketed histogram of `u64` samples (wall-times, cycle counts).
/// Bucket `i` holds samples whose value needs `i` significant bits, so the
/// range 1 ns .. 10 min of nanoseconds fits in 64 buckets with ~2×
/// resolution — plenty for scheduling telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower edge of the bucket
    /// containing that rank (2× resolution by construction).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(self.max)
    }
}

/// A monotonically increasing sequence source for event ordering.
#[derive(Debug, Default)]
pub struct Sequencer(AtomicU64);

impl Sequencer {
    /// Next sequence number (starts at 0).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// Helper: a `("k", v)` JSON object string from raw parts, for summaries.
pub fn json_kv(pairs: &[(&str, Value)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(k, &mut out);
        out.push(':');
        v.write_json(&mut out);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.emit(Event::new("a", vec![("n", Value::U64(1))]));
        sink.emit(Event::new("b", vec![]));
        let ev = sink.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, "a");
        assert_eq!(ev[0].field("n"), Some(&Value::U64(1)));
        assert_eq!(sink.count("b"), 1);
    }

    #[test]
    fn event_json_includes_kind_first() {
        let e = Event::new("item_finished", vec![("item", Value::U64(3))]);
        assert_eq!(e.to_json(), r#"{"event":"item_finished","item":3}"#);
    }

    #[test]
    fn histogram_buckets_merge_and_quantile() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            a.record(v);
        }
        for v in [100u64, 200, 400, 800] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(800));
        assert!(a.mean() > 100.0);
        let q50 = a.quantile(0.5).unwrap();
        assert!(q50 <= 100, "lower half is the small values: {q50}");
        assert!(a.quantile(1.0).unwrap() >= 512);
    }

    #[cfg(feature = "json")]
    #[test]
    fn jsonl_sink_degrades_to_drop_counting_on_io_error() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let sink = JsonlSink::from_writer(Broken);
        assert_eq!(sink.dropped_records(), 0);
        sink.emit(Event::new("x", vec![]));
        sink.emit(Event::new("y", vec![]));
        assert_eq!(sink.dropped_records(), 2, "every failed write counted");
        sink.flush();
        assert_eq!(sink.dropped_records(), 3, "failed flush counted too");
    }

    #[cfg(feature = "json")]
    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::from_writer(Vec::new());
        sink.emit(Event::new("x", vec![("v", Value::F64(1.5))]));
        sink.emit(Event::new("y", vec![]));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with(r#"{"event":"x","v":1.5}"#));
    }
}
