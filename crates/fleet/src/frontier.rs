//! Work-stealing claim frontier: splittable ranges of work-item indices.
//!
//! The supervised pool's default claim discipline is a single atomic
//! cursor — perfect load balance for uniform items, but checker window
//! chunks are *not* uniform (a chunk near a violation explores far more
//! states than a memo-warmed one), and a static cursor cannot give one
//! worker a long contiguous run of a pair's chunks (which is what makes
//! the checker's simulator-carry optimization fire). The [`Frontier`]
//! replaces the cursor with a deque of contiguous index ranges:
//!
//! * Each worker holds one contiguous **lease** `[next, end)` and pops
//!   its front on every claim — consecutive claims stay consecutive.
//! * A worker with an empty lease takes the unclaimed **free range**
//!   with the smallest start, keeping initial assignment deterministic.
//! * With no free ranges left, it **steals** from the victim with the
//!   most remaining work, splitting the victim's lease: the victim keeps
//!   the front `bias` permille (default 500 — half), the thief takes the
//!   tail. A one-item lease moves wholesale.
//!
//! Which worker claims which index is scheduling-dependent — and
//! irrelevant: results are content-addressed per item and merged in item
//! order after the pool drains, so the report digest is invariant across
//! worker counts and steal schedules (DESIGN.md §18).

use std::sync::Mutex;

struct FrontierState {
    /// Unclaimed ranges `[start, end)`, in no particular order.
    free: Vec<(usize, usize)>,
    /// Per-worker lease `[next, end)`; empty when `next == end`.
    leases: Vec<(usize, usize)>,
    steals: u64,
    splits: u64,
}

/// A shared claim frontier for [`run_supervised`](crate::run_supervised):
/// plug one in via [`PoolConfig::claim`](crate::PoolConfig::claim).
pub struct Frontier {
    state: Mutex<FrontierState>,
    /// Permille of a stolen lease the victim keeps (clamped to ≤ 999 so
    /// the thief always takes at least one item).
    bias: u64,
}

impl Frontier {
    /// A frontier over `ranges` (contiguous `[start, end)` index
    /// intervals; empty ranges are ignored) for `workers` workers, with
    /// the default steal bias (victim keeps half).
    pub fn new(ranges: &[(usize, usize)], workers: usize) -> Frontier {
        Frontier {
            state: Mutex::new(FrontierState {
                free: ranges.iter().copied().filter(|(s, e)| s < e).collect(),
                leases: vec![(0, 0); workers.max(1)],
                steals: 0,
                splits: 0,
            }),
            bias: 500,
        }
    }

    /// Builder: set the steal bias in permille — the fraction of a
    /// stolen lease the *victim* keeps. 500 splits in half; 0 hands the
    /// whole lease over; 999 steals a single trailing item. Values are
    /// clamped to ≤ 999.
    pub fn with_bias(mut self, permille: u64) -> Frontier {
        self.bias = permille.min(999);
        self
    }

    /// Claims the next item index for `worker`: lease front, else the
    /// earliest free range, else a steal. `None` once the frontier is
    /// drained (every index handed out).
    pub fn claim(&self, worker: usize) -> Option<usize> {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let w = worker.min(s.leases.len() - 1);
        // 1. Own lease.
        if s.leases[w].0 < s.leases[w].1 {
            let i = s.leases[w].0;
            s.leases[w].0 += 1;
            return Some(i);
        }
        // 2. Earliest free range.
        if let Some(at) = (0..s.free.len()).min_by_key(|&i| s.free[i].0) {
            s.leases[w] = s.free.swap_remove(at);
            let i = s.leases[w].0;
            s.leases[w].0 += 1;
            return Some(i);
        }
        // 3. Steal from the victim with the most remaining work.
        let victim = (0..s.leases.len())
            .filter(|&v| v != w && s.leases[v].1 > s.leases[v].0)
            .max_by_key(|&v| s.leases[v].1 - s.leases[v].0)?;
        let (next, end) = s.leases[victim];
        let len = end - next;
        // Victim keeps the front `bias` permille (but the thief always
        // gets at least one item; a one-item lease moves wholesale).
        let keep = ((len as u128 * self.bias as u128 / 1000) as usize).min(len - 1);
        s.leases[victim].1 = next + keep;
        s.leases[w] = (next + keep, end);
        s.steals += 1;
        if keep > 0 {
            s.splits += 1;
        }
        let i = s.leases[w].0;
        s.leases[w].0 += 1;
        Some(i)
    }

    /// Steals performed (lease transfers, split or wholesale).
    pub fn steals(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).steals
    }

    /// Steals that split a lease (victim kept a nonempty front).
    pub fn splits(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).splits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn drain_all(frontier: &Frontier, workers: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut live: Vec<usize> = (0..workers).collect();
        // Round-robin drain: deterministic, exercises steals once the
        // free list empties.
        while !live.is_empty() {
            live.retain(|&w| match frontier.claim(w) {
                Some(i) => {
                    out.push(i);
                    true
                }
                None => false,
            });
        }
        out
    }

    #[test]
    fn every_index_is_claimed_exactly_once() {
        for workers in [1, 2, 3, 8] {
            let frontier = Frontier::new(&[(0, 7), (7, 7), (7, 20)], workers);
            let claimed = drain_all(&frontier, workers);
            let unique: BTreeSet<usize> = claimed.iter().copied().collect();
            assert_eq!(claimed.len(), 20, "workers={workers}");
            assert_eq!(unique, (0..20).collect(), "workers={workers}");
        }
    }

    #[test]
    fn single_worker_claims_in_order_without_steals() {
        let frontier = Frontier::new(&[(0, 5), (5, 9)], 1);
        let claimed = drain_all(&frontier, 1);
        assert_eq!(claimed, (0..9).collect::<Vec<_>>());
        assert_eq!(frontier.steals(), 0);
        assert_eq!(frontier.splits(), 0);
    }

    #[test]
    fn steals_split_the_largest_lease() {
        // One big range; worker 0 leases it all, worker 1 must steal.
        let frontier = Frontier::new(&[(0, 16)], 2);
        assert_eq!(frontier.claim(0), Some(0));
        let stolen = frontier.claim(1).unwrap();
        // Victim had [1,16); it keeps the front half, thief starts at 8.
        assert_eq!(stolen, 8);
        assert_eq!(frontier.steals(), 1);
        assert_eq!(frontier.splits(), 1);
        // Both workers now advance their own leases contiguously.
        assert_eq!(frontier.claim(0), Some(1));
        assert_eq!(frontier.claim(1), Some(9));
    }

    #[test]
    fn bias_extremes_still_cover_everything() {
        for bias in [0, 250, 999] {
            let frontier = Frontier::new(&[(0, 11)], 3).with_bias(bias);
            let claimed = drain_all(&frontier, 3);
            let unique: BTreeSet<usize> = claimed.iter().copied().collect();
            assert_eq!(unique, (0..11).collect(), "bias={bias}");
        }
    }

    #[test]
    fn one_item_leases_move_wholesale() {
        let frontier = Frontier::new(&[(0, 2)], 2).with_bias(999);
        assert_eq!(frontier.claim(0), Some(0)); // lease now [1,2)
        assert_eq!(frontier.claim(1), Some(1)); // stolen wholesale
        assert_eq!(frontier.steals(), 1);
        assert_eq!(frontier.splits(), 0);
        assert_eq!(frontier.claim(0), None);
        assert_eq!(frontier.claim(1), None);
    }
}
