//! A full (nested) JSON decoder and tree encoder — the read half of the
//! workspace's dependency-free JSON story.
//!
//! [`gecko_sim::report`] owns the *encoder*: every artifact this workspace
//! writes (journal lines, telemetry events, experiment rows, bench
//! summaries) goes through [`Value::write_json`] or the [`Record`] trait.
//! The journal additionally carries a tolerant *flat* parser
//! ([`crate::journal::parse_flat_json`]) that is deliberately limited to
//! one-level objects so torn journal lines degrade to "skip the line".
//!
//! The network front door (`gecko-serve`) needs more: campaign
//! specifications arrive as nested JSON documents (arrays of attack
//! windows, device objects, workload variants) from clients that deserve
//! *actionable* errors, not `None`. This module provides:
//!
//! * [`Json`] — an owned JSON tree whose scalar variants mirror
//!   [`Value`] (`u64`/`i64`/`f64` are kept distinct so integers survive
//!   round trips bit-exactly).
//! * [`Json::parse`] — a recursive-descent parser with byte-offset
//!   [`ParseError`]s ("byte 41: expected ':' after object key").
//! * [`Json::encode`] — the inverse, emitting the exact same float
//!   formatting as [`Value::write_json`], so
//!   `Json::parse(doc)?.encode() == doc` for every document this
//!   workspace produces (the encode→decode→encode property the
//!   round-trip suites pin down).
//!
//! [`Record`]: gecko_sim::report::Record

use std::fmt;

use gecko_sim::report::{write_json_string, Value};

/// Maximum nesting depth [`Json::parse`] accepts. Deep enough for every
/// wire document in the workspace, shallow enough that a hostile request
/// cannot overflow the parser's stack.
pub const MAX_DEPTH: usize = 64;

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no `.`, exponent, or sign).
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// A float literal (contains `.` or an exponent).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order (the encoder's order is part of
    /// the round-trip contract).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// A [`ParseError`] carrying the byte offset of the first problem and
    /// what the parser expected there.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let doc = p.value(0)?;
        p.skip_ws();
        if p.i != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(doc)
    }

    /// Encodes the tree as compact JSON, using the same scalar formatting
    /// as [`Value::write_json`] (floats keep a `.0` when integral; NaN
    /// and infinities encode as `null`).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => Value::Null.write_json(out),
            Json::Bool(b) => Value::Bool(*b).write_json(out),
            Json::U64(v) => Value::U64(*v).write_json(out),
            Json::I64(v) => Value::I64(*v).write_json(out),
            Json::F64(v) => Value::F64(*v).write_json(out),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Converts an encoder [`Value`] into its tree form.
    pub fn from_value(value: &Value) -> Json {
        match value {
            Value::Str(s) => Json::Str(s.clone()),
            Value::U64(v) => Json::U64(*v),
            Value::I64(v) => Json::I64(*v),
            Value::F64(v) => Json::F64(*v),
            Value::Bool(b) => Json::Bool(*b),
            Value::Null => Json::Null,
        }
    }

    /// A short name for this node's type, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::U64(_) | Json::I64(_) | Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Object-field lookup by key (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A parse failure: where, and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What the parser expected at that offset.
    pub expected: String,
    /// What it found instead (a short excerpt, or "end of input").
    pub found: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "byte {}: expected {}, found {}",
            self.offset, self.expected, self.found
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &str) -> ParseError {
        let found = if self.i >= self.bytes.len() {
            "end of input".to_string()
        } else {
            let end = (self.i + 12).min(self.bytes.len());
            let excerpt = String::from_utf8_lossy(&self.bytes[self.i..end]);
            format!("{excerpt:?}")
        };
        ParseError {
            offset: self.i,
            expected: expected.to_string(),
            found,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("shallower nesting (depth limit reached)"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("'\"' starting an object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            return Err(self.err("',' or '}' in object"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return Err(self.err("',' or ']' in array"));
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        let end = self.i + word.len();
        if self.bytes.get(self.i..end) == Some(word.as_bytes()) {
            self.i = end;
            Ok(value)
        } else {
            Err(self.err(&format!("'{word}'")))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("four hex digits after '\\u'"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("four hex digits after '\\u'"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("a valid unicode scalar"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(self.err("a valid escape character")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str, so
                    // char boundaries are intact.
                    let rest = std::str::from_utf8(&self.bytes[self.i..])
                        .map_err(|_| self.err("valid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.i += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i]).expect("ASCII span");
        let parsed = if is_float {
            text.parse().ok().map(Json::F64)
        } else if text.starts_with('-') {
            text.parse().ok().map(Json::I64)
        } else {
            text.parse().ok().map(Json::U64)
        };
        parsed.ok_or_else(|| {
            self.i = start;
            self.err("a number")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(r#"{"a": [1, -2, 3.5, null], "b": {"c": "x", "d": true}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(
            doc.get("b").unwrap().get("d").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[1], Json::I64(-2));
    }

    #[test]
    fn encode_round_trips_bit_exactly() {
        let doc = Json::Obj(vec![
            ("u".into(), Json::U64(u64::MAX)),
            ("i".into(), Json::I64(-42)),
            ("f".into(), Json::F64(0.1 + 0.2)),
            ("g".into(), Json::F64(2.0)),
            ("s".into(), Json::Str("a\"b\\c\nd".into())),
            (
                "arr".into(),
                Json::Arr(vec![Json::Null, Json::Bool(false), Json::F64(3.1e-7)]),
            ),
            ("obj".into(), Json::Obj(vec![("k".into(), Json::U64(1))])),
        ]);
        let text = doc.encode();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.encode(), text, "encode→decode→encode is identity");
    }

    #[test]
    fn errors_carry_offset_and_expectation() {
        let e = Json::parse(r#"{"a" 1}"#).unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(e.expected.contains("':'"), "{e}");
        let e = Json::parse(r#"{"a": 1"#).unwrap_err();
        assert!(e.found.contains("end of input"), "{e}");
        let e = Json::parse("[1, 2,]").unwrap_err();
        assert!(e.to_string().starts_with("byte 6"), "{e}");
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.expected.contains("depth"), "{e}");
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn number_taxonomy_matches_the_encoder() {
        assert_eq!(Json::parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::F64(7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        // The encoder writes non-finite floats as null; parsing never
        // produces a non-finite number.
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
    }
}
