//! The supervision layer: panic quarantine, run budgets, bounded retry
//! with deterministic backoff, and deterministic chaos injection.
//!
//! GECKO's thesis is graceful degradation under hostile conditions, and
//! the campaign engine holds itself to the same discipline: one
//! misbehaving run must never destroy a campaign. Every run executes
//! inside [`quarantine`] (a `catch_unwind` wrapper with a noise-filtering
//! panic hook), under a [`RunBudget`] (step budget + wall-clock deadline),
//! and failures are *classified*, not propagated:
//!
//! * [`RunFailure::Panicked`] — the run panicked; the payload is captured
//!   and the worker keeps draining its queue.
//! * [`RunFailure::TimedOut`] — the run exceeded its step budget or
//!   deadline; partial metrics ride along so a pathological configuration
//!   is *flagged*, not hung on. Step-budget timeouts are deterministic;
//!   deadline timeouts reflect real time.
//! * [`RunFailure::Transient`] — the run signalled a retryable fault
//!   (panic payload prefixed [`TRANSIENT_PREFIX`], or a cooperative
//!   [`AttemptFail::Transient`]) and still failed after the bounded,
//!   splitmix64-jittered retry schedule.
//! * [`RunFailure::SinkDropped`] — telemetry records were dropped
//!   (I/O failure or injected chaos); one structured failure summarizes
//!   the count.
//!
//! [`ChaosSpec`] threads seeded fault injection (panics, transient
//! faults, slow runs, sink write failures) through the same splitmix64
//! discipline as every other stochastic element of the workspace: the
//! fault plan for a run depends only on `(chaos seed, run key, attempt)`,
//! never on scheduling, so supervision is exercised by deterministic,
//! reproducible tests rather than luck.
//!
//! [`run_supervised`] is the generic worker pool shared by
//! `gecko_fleet::Campaign` and `gecko-check`'s `CheckCampaign`: an atomic
//! work cursor, per-item supervision, optional journal-resume skipping and
//! an optional halt-after-N-runs graceful stop.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError};
use std::time::{Duration, Instant};

use gecko_isa::rng::{SplitMix64, GOLDEN_GAMMA};
use gecko_sim::report::Value;
use gecko_sim::Metrics;

use crate::telemetry::{Event, TelemetrySink};

/// Panic-payload prefix that marks a failure as *transient* (retryable):
/// a run may `panic!("{TRANSIENT_PREFIX}lost the flaky resource")` and the
/// supervisor will re-run it under the bounded backoff schedule instead of
/// recording a hard panic.
pub const TRANSIENT_PREFIX: &str = "transient: ";

/// Default per-run wall-clock deadline (5 minutes) when the campaign does
/// not override it — generous enough that it only fires on genuine hangs.
pub const DEFAULT_WALL_MS: u64 = 300_000;

/// Steps-per-simulated-second cap used to derive a run's step budget from
/// its workload: the 16 MHz reference clock executes at most 16 M
/// instruction steps (and 4 k sleep ticks) per simulated second, so 64 M
/// gives 4× headroom before a run is declared pathological.
pub const DERIVED_STEPS_PER_SIM_SECOND: u64 = 64_000_000;

/// Floor for derived step budgets, so sub-millisecond workloads keep room
/// to breathe.
pub const MIN_DERIVED_STEPS: u64 = 1 << 20;

/// Locks a mutex, recovering from poison: a quarantined panic inside a
/// lock must not poison the rest of the campaign, so shared state
/// (program cache, telemetry sinks, journals) treats poison as "the
/// protected data is still valid, the panicker's *run* was discarded".
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Chaos injection
// ---------------------------------------------------------------------------

/// Deterministic fault-injection policy, threaded through splitmix64: the
/// plan for a run is a pure function of `(seed, run_key, attempt)`.
/// Probabilities are in per-mille (`0` = never, `1000` = always).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    /// Chaos stream seed (decorrelated from the simulation seeds).
    pub seed: u64,
    /// Probability (‰) that an attempt panics outright.
    pub panic_per_mille: u32,
    /// Probability (‰) that an attempt fails with a transient
    /// (retryable) fault.
    pub transient_per_mille: u32,
    /// Probability (‰) that an attempt is stalled by [`ChaosSpec::slow_ms`]
    /// before the run starts (exercises the wall-clock deadline).
    pub slow_per_mille: u32,
    /// Stall duration for slow-run injection (ms).
    pub slow_ms: u64,
    /// Probability (‰) that a telemetry record is dropped on write
    /// (exercises the sink-degradation path).
    pub sink_fail_per_mille: u32,
}

impl ChaosSpec {
    /// No chaos (the default).
    pub fn off() -> ChaosSpec {
        ChaosSpec::default()
    }

    /// A chaos policy with the given seed and everything else off.
    pub fn seeded(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            ..ChaosSpec::default()
        }
    }

    /// Whether every injection probability is zero.
    pub fn is_off(&self) -> bool {
        self.panic_per_mille == 0
            && self.transient_per_mille == 0
            && self.slow_per_mille == 0
            && self.sink_fail_per_mille == 0
    }

    /// The deterministic fault plan for one attempt of one run. Exposed so
    /// tests can predict exactly which runs a chaos campaign will fail.
    pub fn plan_for(&self, run_key: u64, attempt: u32) -> ChaosPlan {
        let mut rng =
            SplitMix64::new(self.seed ^ run_key ^ (attempt as u64).wrapping_mul(GOLDEN_GAMMA));
        let mut roll = |per_mille: u32| per_mille > 0 && rng.next_u64() % 1000 < per_mille as u64;
        ChaosPlan {
            panic: roll(self.panic_per_mille),
            transient: roll(self.transient_per_mille),
            slow: roll(self.slow_per_mille),
        }
    }
}

/// The resolved fault plan for one attempt (see [`ChaosSpec::plan_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Panic before the run starts.
    pub panic: bool,
    /// Fail with a transient (retryable) fault.
    pub transient: bool,
    /// Stall for [`ChaosSpec::slow_ms`] before the run starts.
    pub slow: bool,
}

/// A telemetry sink wrapper that deterministically drops records with
/// seeded probability — the chaos hook for the sink-degradation path.
/// Drop decisions are keyed on the record sequence number, so the *count*
/// of drops depends only on the number of records, not on scheduling.
pub struct ChaosSink {
    inner: Arc<dyn TelemetrySink>,
    seed: u64,
    fail_per_mille: u32,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl ChaosSink {
    /// Wraps `inner`, dropping records with `fail_per_mille` probability.
    pub fn new(inner: Arc<dyn TelemetrySink>, seed: u64, fail_per_mille: u32) -> ChaosSink {
        ChaosSink {
            inner,
            seed,
            fail_per_mille,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

impl TelemetrySink for ChaosSink {
    fn emit(&self, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(GOLDEN_GAMMA));
        if self.fail_per_mille > 0 && rng.next_u64() % 1000 < self.fail_per_mille as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.emit(event);
    }

    fn flush(&self) {
        self.inner.flush();
    }

    fn dropped_records(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) + self.inner.dropped_records()
    }
}

// ---------------------------------------------------------------------------
// Budgets and the supervision policy
// ---------------------------------------------------------------------------

/// The resolved per-run budget every attempt executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum simulation steps one run may take (deterministic bound).
    pub max_steps: u64,
    /// Maximum wall-clock time one attempt may take.
    pub deadline: Duration,
}

/// Supervision policy for a campaign: budgets, the retry schedule, and
/// the chaos policy. `None` budget fields are derived from the spec at
/// run time (see [`SupervisorSpec::resolve_budget`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorSpec {
    /// Step budget override (`None` = derive from the workload:
    /// `seconds × `[`DERIVED_STEPS_PER_SIM_SECOND`], floored at
    /// [`MIN_DERIVED_STEPS`]).
    pub max_steps: Option<u64>,
    /// Wall-clock deadline override in ms (`None` = [`DEFAULT_WALL_MS`]).
    pub max_wall_ms: Option<u64>,
    /// Attempts per run (≥ 1): transient failures re-run up to this bound.
    pub max_attempts: u32,
    /// Base backoff between retry attempts (ms); attempt `k` sleeps
    /// `base·2^(k-1)` plus splitmix64 jitter in `[0, base]`, capped at 1 s.
    pub backoff_base_ms: u64,
    /// Fault-injection policy.
    pub chaos: ChaosSpec,
}

impl Default for SupervisorSpec {
    fn default() -> SupervisorSpec {
        SupervisorSpec {
            max_steps: None,
            max_wall_ms: None,
            max_attempts: 3,
            backoff_base_ms: 1,
            chaos: ChaosSpec::off(),
        }
    }
}

impl SupervisorSpec {
    /// Resolves the concrete budget for runs whose workload simulates
    /// `workload_seconds` of device time.
    pub fn resolve_budget(&self, workload_seconds: f64) -> RunBudget {
        let derived = (workload_seconds.max(0.0) * DERIVED_STEPS_PER_SIM_SECOND as f64)
            .ceil()
            .min(u64::MAX as f64) as u64;
        RunBudget {
            max_steps: self.max_steps.unwrap_or(derived.max(MIN_DERIVED_STEPS)),
            deadline: Duration::from_millis(self.max_wall_ms.unwrap_or(DEFAULT_WALL_MS)),
        }
    }

    /// The deterministic backoff before retry attempt `next_attempt`
    /// (2, 3, ...) of `run_key`: exponential in the attempt with
    /// splitmix64 jitter, capped at one second.
    pub fn backoff_for(&self, run_key: u64, next_attempt: u32) -> Duration {
        let base = self.backoff_base_ms;
        if base == 0 {
            return Duration::ZERO;
        }
        let mut rng = SplitMix64::new(
            self.chaos.seed ^ run_key ^ (next_attempt as u64).wrapping_mul(0xB0FF_0FF5),
        );
        let exp = base.saturating_mul(1u64 << (next_attempt.saturating_sub(2)).min(10));
        let jitter = rng.range_u64(0, base + 1);
        Duration::from_millis(exp.saturating_add(jitter).min(1_000))
    }
}

// ---------------------------------------------------------------------------
// Failure taxonomy
// ---------------------------------------------------------------------------

/// The failure taxonomy: why a run produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The run panicked.
    Panicked,
    /// The run exceeded its step budget or wall-clock deadline.
    TimedOut,
    /// The run kept failing transiently through every retry attempt.
    Transient,
    /// Telemetry records were dropped.
    SinkDropped,
}

impl FailureKind {
    /// Stable lowercase name for reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panicked => "panicked",
            FailureKind::TimedOut => "timed-out",
            FailureKind::Transient => "transient",
            FailureKind::SinkDropped => "sink-dropped",
        }
    }
}

/// One structured failure in a campaign report. Quarantined failures are
/// *results*, not errors: the campaign completes and reports them next to
/// the successful runs.
#[derive(Debug, Clone, PartialEq)]
pub enum RunFailure {
    /// The run panicked; `payload` is the captured panic message.
    Panicked {
        /// Stable identity of the failed run.
        run_key: u64,
        /// Work-item index of the failed run.
        item: usize,
        /// The panic payload (stringified).
        payload: String,
    },
    /// The run exceeded its budget.
    TimedOut {
        /// Stable identity of the failed run.
        run_key: u64,
        /// Work-item index of the failed run.
        item: usize,
        /// Simulation steps taken before the budget fired.
        steps: u64,
        /// Wall-clock ms the attempt had consumed.
        wall_ms: f64,
        /// Metrics accumulated up to the abort point (step-budget
        /// timeouts carry deterministic partials; deadline timeouts may
        /// not have any). Boxed to keep the failure enum small.
        partial: Option<Box<Metrics>>,
    },
    /// The run failed transiently on every one of `attempts` tries.
    Transient {
        /// Stable identity of the failed run.
        run_key: u64,
        /// Work-item index of the failed run.
        item: usize,
        /// The last transient payload.
        payload: String,
        /// Attempts consumed (== the configured `max_attempts`).
        attempts: u32,
    },
    /// `dropped` telemetry/journal records were dropped instead of
    /// panicking the writer.
    SinkDropped {
        /// Records dropped over the whole campaign.
        dropped: u64,
    },
}

impl RunFailure {
    /// This failure's taxonomy bucket.
    pub fn kind(&self) -> FailureKind {
        match self {
            RunFailure::Panicked { .. } => FailureKind::Panicked,
            RunFailure::TimedOut { .. } => FailureKind::TimedOut,
            RunFailure::Transient { .. } => FailureKind::Transient,
            RunFailure::SinkDropped { .. } => FailureKind::SinkDropped,
        }
    }

    /// The failed run's key (`None` for campaign-scoped failures).
    pub fn run_key(&self) -> Option<u64> {
        match self {
            RunFailure::Panicked { run_key, .. }
            | RunFailure::TimedOut { run_key, .. }
            | RunFailure::Transient { run_key, .. } => Some(*run_key),
            RunFailure::SinkDropped { .. } => None,
        }
    }

    /// The failed run's work-item index (`None` for campaign-scoped
    /// failures).
    pub fn item(&self) -> Option<usize> {
        match self {
            RunFailure::Panicked { item, .. }
            | RunFailure::TimedOut { item, .. }
            | RunFailure::Transient { item, .. } => Some(*item),
            RunFailure::SinkDropped { .. } => None,
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            RunFailure::Panicked {
                run_key,
                item,
                payload,
            } => format!("[item {item}] panicked (run {run_key:#018x}): {payload}"),
            RunFailure::TimedOut {
                run_key,
                item,
                steps,
                wall_ms,
                ..
            } => format!(
                "[item {item}] timed out (run {run_key:#018x}) after {steps} steps / {wall_ms:.1} ms"
            ),
            RunFailure::Transient {
                run_key,
                item,
                payload,
                attempts,
            } => format!(
                "[item {item}] transient after {attempts} attempts (run {run_key:#018x}): {payload}"
            ),
            RunFailure::SinkDropped { dropped } => {
                format!("telemetry degraded: {dropped} record(s) dropped")
            }
        }
    }

    /// Folds the deterministic identity of this failure (kind, run key,
    /// item, attempts) into an FNV-style digest closure. Partial metrics
    /// and wall-clock are excluded: deadline timeouts reflect real time.
    pub fn digest_into(&self, eat: &mut dyn FnMut(u64)) {
        match self {
            RunFailure::Panicked { run_key, item, .. } => {
                eat(1);
                eat(*run_key);
                eat(*item as u64);
            }
            RunFailure::TimedOut { run_key, item, .. } => {
                eat(2);
                eat(*run_key);
                eat(*item as u64);
            }
            RunFailure::Transient {
                run_key,
                item,
                attempts,
                ..
            } => {
                eat(3);
                eat(*run_key);
                eat(*item as u64);
                eat(*attempts as u64);
            }
            RunFailure::SinkDropped { dropped } => {
                eat(4);
                eat(*dropped);
            }
        }
    }
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A cooperative failure an attempt closure can report without panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptFail {
    /// The run exceeded its budget (the closure checked cooperatively).
    TimedOut {
        /// Steps taken when the budget fired.
        steps: u64,
        /// Wall ms consumed when the budget fired.
        wall_ms: f64,
        /// Metrics accumulated up to the abort point, when available.
        /// Boxed so the `Err` variant stays pointer-sized.
        partial: Option<Box<Metrics>>,
    },
    /// A retryable fault.
    Transient {
        /// What went wrong.
        payload: String,
    },
}

// ---------------------------------------------------------------------------
// Quarantine
// ---------------------------------------------------------------------------

thread_local! {
    static QUARANTINED: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUARANTINED.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with panics quarantined: a panic is captured and returned as
/// its stringified payload instead of unwinding (and the default
/// panic-hook backtrace noise is suppressed for quarantined panics only).
/// The closure's state is per-run; shared state it touched is guarded by
/// poison-recovering locks (see [`lock_unpoisoned`]).
pub fn quarantine<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    QUARANTINED.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUARANTINED.with(|q| q.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

// ---------------------------------------------------------------------------
// The supervised worker pool
// ---------------------------------------------------------------------------

/// What the pool recorded for one work item.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemOutcome<T> {
    /// The run completed (possibly after retries).
    Done(T),
    /// The run failed and was quarantined.
    Failed(RunFailure),
}

/// The pool's merged outcome: one slot per item, in item order.
#[derive(Debug)]
pub struct PoolReport<T> {
    /// Per-item outcomes; `None` for items never claimed (skipped by the
    /// caller's resume set, or unclaimed after a halt).
    pub outcomes: Vec<Option<ItemOutcome<T>>>,
    /// Retry attempts performed beyond each run's first try.
    pub retries: u64,
    /// Whether the pool stopped claiming because `halt_after` was reached.
    pub halted: bool,
}

/// Pool configuration for [`run_supervised`].
pub struct PoolConfig<'a> {
    /// Worker-thread count (clamped to ≥ 1 by the caller).
    pub workers: usize,
    /// Stable per-item run keys (chaos/backoff streams key off these).
    pub run_keys: &'a [u64],
    /// Items to skip entirely (already restored from a journal).
    pub skip: &'a [bool],
    /// Supervision policy.
    pub sup: &'a SupervisorSpec,
    /// Resolved per-run budget.
    pub budget: RunBudget,
    /// Stop claiming new items once this many runs have been accounted
    /// (completed or failed) this session — the graceful-kill hook.
    pub halt_after: Option<u64>,
    /// Cooperative kill switch: when the flag flips true, workers finish
    /// the run they are on (journaling it as usual) and stop claiming new
    /// ones, reporting `halted`. This is the asynchronous sibling of
    /// `halt_after` — a daemon's shutdown/cancel path flips it from
    /// another thread, and a journaled campaign later resumes bit-exactly.
    pub stop: Option<&'a AtomicBool>,
    /// Work-stealing claim frontier. `None` claims items off a shared
    /// atomic cursor (the historical discipline); `Some` routes every
    /// claim through [`Frontier::claim`](crate::Frontier::claim), giving
    /// each worker contiguous index runs with locality-preserving steals.
    /// Either way every index in `0..run_keys.len()` is claimed exactly
    /// once, so outcomes (merged in item order) are identical.
    pub claim: Option<&'a crate::Frontier>,
    /// Telemetry sink for `run_failed` / `run_retried` events.
    pub sink: &'a Arc<dyn TelemetrySink>,
}

/// Executes `attempt` for every non-skipped item on a supervised worker
/// pool: panics are quarantined, budgets enforced (cooperatively by the
/// closure plus a post-hoc deadline check), transient failures retried
/// with deterministic backoff, and chaos injected per the spec. The
/// closure receives `(item index, attempt number (1-based), budget,
/// attempt start)` and returns its result or a cooperative failure.
///
/// Outcomes land in item order; which worker ran what never matters.
pub fn run_supervised<T, F>(cfg: &PoolConfig<'_>, attempt: F) -> PoolReport<T>
where
    T: Send,
    F: Fn(usize, u32, &RunBudget, Instant) -> Result<T, AttemptFail> + Sync,
{
    let n = cfg.run_keys.len();
    assert_eq!(cfg.skip.len(), n, "skip mask must cover every item");
    let cursor = AtomicUsize::new(0);
    let accounted = AtomicU64::new(cfg.skip.iter().filter(|&&s| s).count() as u64);
    let retries = AtomicU64::new(0);
    let halted = AtomicBool::new(false);
    let mut slots: Vec<Option<ItemOutcome<T>>> = Vec::new();
    slots.resize_with(n, || None);
    let workers = cfg.workers.clamp(1, n.max(1));

    let mut worker_crash: Option<String> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let cursor = &cursor;
            let accounted = &accounted;
            let retries = &retries;
            let halted = &halted;
            let attempt = &attempt;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, ItemOutcome<T>)> = Vec::new();
                loop {
                    if let Some(h) = cfg.halt_after {
                        if accounted.load(Ordering::Relaxed) >= h {
                            halted.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    if let Some(stop) = cfg.stop {
                        if stop.load(Ordering::Relaxed) {
                            halted.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    let i = match cfg.claim {
                        Some(frontier) => frontier.claim(w).unwrap_or(usize::MAX),
                        None => cursor.fetch_add(1, Ordering::Relaxed),
                    };
                    if i >= n {
                        break;
                    }
                    if cfg.skip[i] {
                        continue;
                    }
                    let (outcome, item_retries) = supervise_item(cfg, cfg.run_keys[i], i, attempt);
                    retries.fetch_add(item_retries, Ordering::Relaxed);
                    accounted.fetch_add(1, Ordering::Relaxed);
                    local.push((i, outcome));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, outcome) in local {
                        slots[i] = Some(outcome);
                    }
                }
                Err(payload) => {
                    // The supervisor itself crashed (should be impossible:
                    // runs are quarantined). Items the dead worker claimed
                    // stay `None` and are surfaced by the caller.
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    worker_crash = Some(msg);
                }
            }
        }
    });

    // A crashed worker loses the items it had claimed but not returned;
    // without a halt those are exactly the `None` slots.
    if let Some(msg) = worker_crash {
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() && !cfg.skip[i] && cfg.halt_after.is_none() && cfg.stop.is_none() {
                *slot = Some(ItemOutcome::Failed(RunFailure::Panicked {
                    run_key: cfg.run_keys[i],
                    item: i,
                    payload: format!("worker crashed: {msg}"),
                }));
            }
        }
    }

    PoolReport {
        outcomes: slots,
        retries: retries.load(Ordering::Relaxed),
        halted: halted.load(Ordering::Relaxed),
    }
}

/// Supervises every attempt of one item: chaos, quarantine, budget
/// classification, bounded retry. Returns the final outcome plus the
/// number of retries consumed.
fn supervise_item<T, F>(
    cfg: &PoolConfig<'_>,
    run_key: u64,
    item: usize,
    attempt: &F,
) -> (ItemOutcome<T>, u64)
where
    F: Fn(usize, u32, &RunBudget, Instant) -> Result<T, AttemptFail> + Sync,
{
    let sup = cfg.sup;
    let mut retries = 0u64;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let plan = sup.chaos.plan_for(run_key, attempts);
        if plan.slow {
            std::thread::sleep(Duration::from_millis(sup.chaos.slow_ms));
        }
        let started = Instant::now();
        let caught = quarantine(|| {
            if plan.panic {
                panic!("chaos: injected panic (run {run_key:#018x}, attempt {attempts})");
            }
            if plan.transient {
                panic!("{TRANSIENT_PREFIX}chaos: injected transient fault (run {run_key:#018x}, attempt {attempts})");
            }
            attempt(item, attempts, &cfg.budget, started)
        });
        let transient_payload = match caught {
            Ok(Ok(value)) => {
                let wall = started.elapsed();
                if wall > cfg.budget.deadline {
                    // The run completed, but only by blowing through its
                    // deadline between two cooperative checks: still a
                    // pathological configuration worth flagging.
                    let failure = RunFailure::TimedOut {
                        run_key,
                        item,
                        steps: 0,
                        wall_ms: wall.as_secs_f64() * 1e3,
                        partial: None,
                    };
                    emit_run_failed(cfg, &failure, attempts);
                    return (ItemOutcome::Failed(failure), retries);
                }
                return (ItemOutcome::Done(value), retries);
            }
            Ok(Err(AttemptFail::TimedOut {
                steps,
                wall_ms,
                partial,
            })) => {
                let failure = RunFailure::TimedOut {
                    run_key,
                    item,
                    steps,
                    wall_ms,
                    partial,
                };
                emit_run_failed(cfg, &failure, attempts);
                return (ItemOutcome::Failed(failure), retries);
            }
            Ok(Err(AttemptFail::Transient { payload })) => payload,
            Err(payload) => match payload.strip_prefix(TRANSIENT_PREFIX) {
                Some(rest) => rest.to_string(),
                None => {
                    let failure = RunFailure::Panicked {
                        run_key,
                        item,
                        payload,
                    };
                    emit_run_failed(cfg, &failure, attempts);
                    return (ItemOutcome::Failed(failure), retries);
                }
            },
        };
        if attempts >= sup.max_attempts.max(1) {
            let failure = RunFailure::Transient {
                run_key,
                item,
                payload: transient_payload,
                attempts,
            };
            emit_run_failed(cfg, &failure, attempts);
            return (ItemOutcome::Failed(failure), retries);
        }
        retries += 1;
        cfg.sink.emit(Event::new(
            "run_retried",
            vec![
                ("item", Value::U64(item as u64)),
                ("run_key", Value::U64(run_key)),
                ("attempt", Value::U64(attempts as u64)),
                ("payload", Value::Str(transient_payload)),
            ],
        ));
        std::thread::sleep(sup.backoff_for(run_key, attempts + 1));
    }
}

fn emit_run_failed(cfg: &PoolConfig<'_>, failure: &RunFailure, attempts: u32) {
    cfg.sink.emit(Event::new(
        "run_failed",
        vec![
            ("item", Value::U64(failure.item().unwrap_or(0) as u64)),
            ("run_key", Value::U64(failure.run_key().unwrap_or(0))),
            ("kind", Value::Str(failure.kind().name().to_string())),
            ("attempt", Value::U64(attempts as u64)),
            ("detail", Value::Str(failure.describe())),
        ],
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{MemorySink, NullSink};

    fn null_sink() -> Arc<dyn TelemetrySink> {
        Arc::new(NullSink)
    }

    #[test]
    fn lock_unpoisoned_recovers_the_data() {
        let m = Mutex::new(41);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(r.is_err());
        assert!(m.lock().is_err(), "the mutex really is poisoned");
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42);
    }

    #[test]
    fn quarantine_captures_payloads() {
        assert_eq!(quarantine(|| 7), Ok(7));
        assert_eq!(
            quarantine(|| -> u32 { panic!("boom") }),
            Err("boom".to_string())
        );
        let msg = format!("{TRANSIENT_PREFIX}flaky");
        assert_eq!(quarantine(|| -> u32 { panic!("{msg}") }), Err(msg));
    }

    #[test]
    fn chaos_plans_are_deterministic_and_seed_sensitive() {
        let chaos = ChaosSpec {
            seed: 9,
            panic_per_mille: 500,
            transient_per_mille: 500,
            slow_per_mille: 500,
            ..ChaosSpec::default()
        };
        for key in [1u64, 2, 0xdead_beef] {
            assert_eq!(chaos.plan_for(key, 1), chaos.plan_for(key, 1));
            assert_eq!(chaos.plan_for(key, 2), chaos.plan_for(key, 2));
        }
        let plans_a: Vec<ChaosPlan> = (0..64).map(|k| chaos.plan_for(k, 1)).collect();
        let other = ChaosSpec { seed: 10, ..chaos };
        let plans_b: Vec<ChaosPlan> = (0..64).map(|k| other.plan_for(k, 1)).collect();
        assert_ne!(plans_a, plans_b, "seed must matter");
        assert!(ChaosSpec::off().is_off());
        assert!(!chaos.is_off());
    }

    #[test]
    fn pool_quarantines_panics_and_drains_the_queue() {
        let keys: Vec<u64> = (0..16).collect();
        let skip = vec![false; 16];
        let sup = SupervisorSpec::default();
        let sink = null_sink();
        let cfg = PoolConfig {
            workers: 4,
            run_keys: &keys,
            skip: &skip,
            sup: &sup,
            budget: sup.resolve_budget(0.01),
            halt_after: None,
            stop: None,
            claim: None,
            sink: &sink,
        };
        let report = run_supervised(&cfg, |i, _, _, _| {
            if i % 5 == 0 {
                panic!("run {i} exploded");
            }
            Ok(i * 10)
        });
        assert!(!report.halted);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match outcome.as_ref().expect("claimed") {
                ItemOutcome::Done(v) => {
                    assert_ne!(i % 5, 0);
                    assert_eq!(*v, i * 10);
                }
                ItemOutcome::Failed(RunFailure::Panicked { item, payload, .. }) => {
                    assert_eq!(i % 5, 0);
                    assert_eq!(*item, i);
                    assert!(payload.contains("exploded"), "{payload}");
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn transient_failures_retry_with_bounded_attempts() {
        let keys = [77u64];
        let skip = [false];
        let sup = SupervisorSpec {
            max_attempts: 3,
            backoff_base_ms: 0,
            ..SupervisorSpec::default()
        };
        let sink: Arc<dyn TelemetrySink> = Arc::new(MemorySink::new());
        let cfg = PoolConfig {
            workers: 1,
            run_keys: &keys,
            skip: &skip,
            sup: &sup,
            budget: sup.resolve_budget(0.01),
            halt_after: None,
            stop: None,
            claim: None,
            sink: &sink,
        };
        // Succeeds on the third attempt.
        let report = run_supervised(&cfg, |_, attempt, _, _| {
            if attempt < 3 {
                Err(AttemptFail::Transient {
                    payload: format!("flaky #{attempt}"),
                })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(report.retries, 2);
        assert!(matches!(report.outcomes[0], Some(ItemOutcome::Done(3))));

        // Never succeeds: classified Transient with the attempt count.
        let report = run_supervised(&cfg, |_, attempt, _, _| -> Result<u32, AttemptFail> {
            Err(AttemptFail::Transient {
                payload: format!("flaky #{attempt}"),
            })
        });
        assert_eq!(report.retries, 2);
        match report.outcomes[0].as_ref().unwrap() {
            ItemOutcome::Failed(RunFailure::Transient {
                attempts, payload, ..
            }) => {
                assert_eq!(*attempts, 3);
                assert_eq!(payload, "flaky #3");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transient_panics_are_retried_too() {
        let keys = [5u64];
        let skip = [false];
        let sup = SupervisorSpec {
            max_attempts: 2,
            backoff_base_ms: 0,
            ..SupervisorSpec::default()
        };
        let sink = null_sink();
        let cfg = PoolConfig {
            workers: 1,
            run_keys: &keys,
            skip: &skip,
            sup: &sup,
            budget: sup.resolve_budget(0.01),
            halt_after: None,
            stop: None,
            claim: None,
            sink: &sink,
        };
        let report = run_supervised(&cfg, |_, attempt, _, _| {
            if attempt == 1 {
                panic!("{TRANSIENT_PREFIX}lost the resource");
            }
            Ok("recovered")
        });
        assert_eq!(report.retries, 1);
        assert!(matches!(
            report.outcomes[0],
            Some(ItemOutcome::Done("recovered"))
        ));
    }

    #[test]
    fn halt_after_stops_claiming() {
        let keys: Vec<u64> = (0..32).collect();
        let skip = vec![false; 32];
        let sup = SupervisorSpec::default();
        let sink = null_sink();
        let cfg = PoolConfig {
            workers: 1,
            run_keys: &keys,
            skip: &skip,
            sup: &sup,
            budget: sup.resolve_budget(0.01),
            halt_after: Some(10),
            stop: None,
            claim: None,
            sink: &sink,
        };
        let report = run_supervised(&cfg, |i, _, _, _| Ok(i));
        assert!(report.halted);
        let done = report.outcomes.iter().flatten().count();
        assert_eq!(done, 10, "exactly halt_after runs were accounted");
    }

    #[test]
    fn budgets_derive_from_the_workload() {
        let sup = SupervisorSpec::default();
        let b = sup.resolve_budget(2.0);
        assert_eq!(b.max_steps, 2 * DERIVED_STEPS_PER_SIM_SECOND);
        assert_eq!(b.deadline, Duration::from_millis(DEFAULT_WALL_MS));
        let b = sup.resolve_budget(1e-6);
        assert_eq!(b.max_steps, MIN_DERIVED_STEPS, "floored");
        let sup = SupervisorSpec {
            max_steps: Some(123),
            max_wall_ms: Some(456),
            ..SupervisorSpec::default()
        };
        let b = sup.resolve_budget(10.0);
        assert_eq!(b.max_steps, 123);
        assert_eq!(b.deadline, Duration::from_millis(456));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let sup = SupervisorSpec {
            backoff_base_ms: 4,
            ..SupervisorSpec::default()
        };
        for attempt in 2..6 {
            let a = sup.backoff_for(99, attempt);
            assert_eq!(a, sup.backoff_for(99, attempt), "deterministic");
            assert!(a <= Duration::from_millis(1_000), "capped");
        }
        let quiet = SupervisorSpec {
            backoff_base_ms: 0,
            ..SupervisorSpec::default()
        };
        assert_eq!(quiet.backoff_for(1, 2), Duration::ZERO);
    }

    #[test]
    fn chaos_sink_drops_deterministically() {
        let inner = Arc::new(MemorySink::new());
        let chaos = ChaosSink::new(inner.clone(), 3, 500);
        for i in 0..100u64 {
            chaos.emit(Event::new("e", vec![("i", Value::U64(i))]));
        }
        let dropped = chaos.dropped_records();
        assert!(dropped > 10 && dropped < 90, "~half dropped: {dropped}");
        assert_eq!(inner.events().len() as u64 + dropped, 100);
        // Same seed, same record count => same drop count.
        let again = ChaosSink::new(Arc::new(MemorySink::new()), 3, 500);
        for i in 0..100u64 {
            again.emit(Event::new("e", vec![("i", Value::U64(i))]));
        }
        assert_eq!(again.dropped_records(), dropped);
    }
}
