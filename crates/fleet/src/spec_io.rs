//! Wire formats for campaigns: typed JSON (de)serialization of
//! [`CampaignSpec`] and JSON rendering of merged [`CampaignReport`]s.
//!
//! This is the fleet's public submit/observe seam. A network client (or a
//! config file) describes a campaign as a nested JSON document; the
//! decoder here turns it into the same typed [`CampaignSpec`] the library
//! path uses — so a served sweep and an in-process sweep run literally
//! the same code and merge to the same
//! [`deterministic_digest`](CampaignReport::deterministic_digest).
//!
//! Decoding is strict and *actionable*: every error carries the JSON path
//! of the offending node (`attacks[2].windows[0].freq_hz: expected a
//! positive frequency, got -1.0`), unknown fields are rejected with the
//! accepted spelling list, and enums (schemes, devices, monitors,
//! injections) resolve through the same registries the rest of the
//! workspace uses ([`SchemeKind::from_name`],
//! [`gecko_emi::devices::device_by_name`]).
//!
//! Encoding mirrors [`gecko_sim::report::Value`]'s formatting exactly, so
//! `spec_from_json(spec_to_json(s)) == s` and re-encoding a parsed
//! document reproduces it byte-for-byte (the round-trip property suite
//! pins this down).

use std::fmt;

use gecko_emi::devices::device_by_name;
use gecko_emi::fault::{FaultModel, FaultSchedule, TimedFault};
use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind, TimedAttack};
use gecko_sim::report::Record;
use gecko_sim::Metrics;

use crate::campaign::{
    AttackCase, CampaignReport, CampaignSpec, CapacitorSpec, DeviceCase, FaultCase, RunResult,
    Supply, Workload,
};
use crate::json::{Json, ParseError};
use crate::supervisor::RunFailure;
use crate::SchemeKind;

/// A typed decoding failure: the JSON path of the offending node and what
/// was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Dotted/indexed path of the node (`attacks[0].windows[1].end_s`).
    pub path: String,
    /// What was expected there.
    pub message: String,
}

impl DecodeError {
    fn new(path: &str, message: impl Into<String>) -> DecodeError {
        DecodeError {
            path: path.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a JSON campaign spec was rejected: it was not JSON at all, or it
/// was JSON of the wrong shape.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Lexical/syntactic failure, with byte offset.
    Parse(ParseError),
    /// Shape/typing failure, with JSON path.
    Decode(DecodeError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Decode(e) => write!(f, "invalid campaign spec: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> SpecError {
        SpecError::Parse(e)
    }
}

impl From<DecodeError> for SpecError {
    fn from(e: DecodeError) -> SpecError {
        SpecError::Decode(e)
    }
}

// ---------------------------------------------------------------------------
// Typed accessors (path-carrying)
// ---------------------------------------------------------------------------

fn type_err(v: &Json, path: &str, wanted: &str) -> DecodeError {
    DecodeError::new(path, format!("expected {wanted}, got {}", v.kind_name()))
}

fn as_str<'a>(v: &'a Json, path: &str) -> Result<&'a str, DecodeError> {
    v.as_str().ok_or_else(|| type_err(v, path, "a string"))
}

fn as_f64(v: &Json, path: &str) -> Result<f64, DecodeError> {
    v.as_f64().ok_or_else(|| type_err(v, path, "a number"))
}

fn as_u64(v: &Json, path: &str) -> Result<u64, DecodeError> {
    v.as_u64()
        .ok_or_else(|| type_err(v, path, "a non-negative integer"))
}

fn as_usize(v: &Json, path: &str) -> Result<usize, DecodeError> {
    Ok(as_u64(v, path)? as usize)
}

fn as_bool(v: &Json, path: &str) -> Result<bool, DecodeError> {
    v.as_bool().ok_or_else(|| type_err(v, path, "a boolean"))
}

fn as_arr<'a>(v: &'a Json, path: &str) -> Result<&'a [Json], DecodeError> {
    v.as_arr().ok_or_else(|| type_err(v, path, "an array"))
}

fn as_obj<'a>(v: &'a Json, path: &str) -> Result<&'a [(String, Json)], DecodeError> {
    v.as_obj().ok_or_else(|| type_err(v, path, "an object"))
}

/// Required-field lookup.
fn get<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a Json, DecodeError> {
    as_obj(v, path)?;
    v.get(key)
        .ok_or_else(|| DecodeError::new(path, format!("missing required field `{key}`")))
}

/// Optional-field lookup; an explicit `null` reads as absent.
fn opt<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    match v.get(key) {
        Some(Json::Null) | None => None,
        Some(found) => Some(found),
    }
}

/// Rejects fields outside `allowed` — typos come back as errors naming
/// the accepted spellings, not as silently ignored keys.
fn check_keys(v: &Json, path: &str, allowed: &[&str]) -> Result<(), DecodeError> {
    for (key, _) in as_obj(v, path)? {
        if !allowed.contains(&key.as_str()) {
            return Err(DecodeError::new(
                path,
                format!(
                    "unknown field `{key}` (expected one of: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CampaignSpec encode
// ---------------------------------------------------------------------------

fn monitor_name(kind: MonitorKind) -> &'static str {
    match kind {
        MonitorKind::Adc => "adc",
        MonitorKind::Comparator => "comparator",
    }
}

fn injection_value(injection: Injection) -> Json {
    use gecko_emi::attack::DpiPoint;
    match injection {
        Injection::Dpi(DpiPoint::P1) => {
            Json::Obj(vec![("kind".into(), Json::Str("dpi_p1".into()))])
        }
        Injection::Dpi(DpiPoint::P2) => {
            Json::Obj(vec![("kind".into(), Json::Str("dpi_p2".into()))])
        }
        Injection::Remote { distance_m } => Json::Obj(vec![
            ("kind".into(), Json::Str("remote".into())),
            ("distance_m".into(), Json::F64(distance_m)),
        ]),
    }
}

fn fault_model_value(model: FaultModel) -> Json {
    let mut fields = vec![("kind".into(), Json::Str(model.name().into()))];
    if let FaultModel::OperandBitflip { bit } = model {
        fields.push(("bit".into(), Json::U64(bit as u64)));
    }
    Json::Obj(fields)
}

fn fault_window_value(w: &TimedFault) -> Json {
    Json::Obj(vec![
        ("start_s".into(), Json::F64(w.start_s)),
        (
            "end_s".into(),
            if w.end_s.is_finite() {
                Json::F64(w.end_s)
            } else {
                Json::Null
            },
        ),
        ("freq_hz".into(), Json::F64(w.signal.freq_hz)),
        ("power_dbm".into(), Json::F64(w.signal.power_dbm)),
        ("injection".into(), injection_value(w.injection)),
        ("model".into(), fault_model_value(w.model)),
    ])
}

fn window_value(w: &TimedAttack) -> Json {
    Json::Obj(vec![
        ("start_s".into(), Json::F64(w.start_s)),
        // A window open forever (`continuous`) encodes as null, since
        // JSON has no infinity literal.
        (
            "end_s".into(),
            if w.end_s.is_finite() {
                Json::F64(w.end_s)
            } else {
                Json::Null
            },
        ),
        ("freq_hz".into(), Json::F64(w.signal.freq_hz)),
        ("power_dbm".into(), Json::F64(w.signal.power_dbm)),
        ("injection".into(), injection_value(w.injection)),
    ])
}

/// Encodes a spec as a JSON tree. Every field is written, including the
/// defaulted ones, so the document is self-describing.
pub fn spec_value(spec: &CampaignSpec) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(spec.name.clone())),
        (
            "apps".into(),
            Json::Arr(spec.apps.iter().map(|a| Json::Str(a.clone())).collect()),
        ),
        (
            "schemes".into(),
            Json::Arr(
                spec.schemes
                    .iter()
                    .map(|s| Json::Str(s.slug().to_string()))
                    .collect(),
            ),
        ),
        (
            "devices".into(),
            Json::Arr(
                spec.devices
                    .iter()
                    .map(|d| {
                        Json::Obj(vec![
                            ("device".into(), Json::Str(d.device.name().to_string())),
                            ("monitor".into(), Json::Str(monitor_name(d.monitor).into())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "attacks".into(),
            Json::Arr(
                spec.attacks
                    .iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(a.label.clone())),
                            (
                                "windows".into(),
                                Json::Arr(a.schedule.windows().iter().map(window_value).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "faults".into(),
            Json::Arr(
                spec.faults
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(f.label.clone())),
                            (
                                "windows".into(),
                                Json::Arr(
                                    f.schedule
                                        .windows()
                                        .iter()
                                        .map(fault_window_value)
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "seeds".into(),
            Json::Arr(spec.seeds.iter().map(|&s| Json::U64(s)).collect()),
        ),
        (
            "supply".into(),
            match spec.supply {
                Supply::Bench => Json::Obj(vec![("kind".into(), Json::Str("bench".into()))]),
                Supply::Harvesting { power_w } => Json::Obj(vec![
                    ("kind".into(), Json::Str("harvesting".into())),
                    ("power_w".into(), Json::F64(power_w)),
                ]),
                Supply::Starved {
                    power_w,
                    period_s,
                    starve_s,
                    attenuation,
                } => Json::Obj(vec![
                    ("kind".into(), Json::Str("starved".into())),
                    ("power_w".into(), Json::F64(power_w)),
                    ("period_s".into(), Json::F64(period_s)),
                    ("starve_s".into(), Json::F64(starve_s)),
                    ("attenuation".into(), Json::F64(attenuation)),
                ]),
            },
        ),
        (
            "capacitor".into(),
            match spec.capacitor {
                None => Json::Null,
                Some(cap) => Json::Obj(vec![
                    ("capacitance_f".into(), Json::F64(cap.capacitance_f)),
                    ("initial_voltage_v".into(), Json::F64(cap.initial_voltage_v)),
                    (
                        "rescale_thresholds".into(),
                        Json::Bool(cap.rescale_thresholds),
                    ),
                ]),
            },
        ),
        (
            "adc_filter_taps".into(),
            spec.adc_filter_taps
                .map_or(Json::Null, |t| Json::U64(t as u64)),
        ),
        (
            "compile".into(),
            Json::Obj(vec![
                (
                    "wcet_budget_cycles".into(),
                    spec.compile
                        .wcet_budget_cycles
                        .map_or(Json::Null, Json::U64),
                ),
                ("prune".into(), Json::Bool(spec.compile.prune)),
                (
                    "max_slice_insts".into(),
                    Json::U64(spec.compile.max_slice_insts as u64),
                ),
            ]),
        ),
        (
            "workload".into(),
            match spec.workload {
                Workload::RunFor { seconds } => Json::Obj(vec![
                    ("kind".into(), Json::Str("run_for".into())),
                    ("seconds".into(), Json::F64(seconds)),
                ]),
                Workload::UntilCompletions { n, max_seconds } => Json::Obj(vec![
                    ("kind".into(), Json::Str("until_completions".into())),
                    ("n".into(), Json::U64(n)),
                    ("max_seconds".into(), Json::F64(max_seconds)),
                ]),
                Workload::Buckets {
                    horizon_s,
                    bucket_s,
                } => Json::Obj(vec![
                    ("kind".into(), Json::Str("buckets".into())),
                    ("horizon_s".into(), Json::F64(horizon_s)),
                    ("bucket_s".into(), Json::F64(bucket_s)),
                ]),
            },
        ),
    ])
}

/// Encodes a spec as a compact JSON string.
pub fn spec_to_json(spec: &CampaignSpec) -> String {
    spec_value(spec).encode()
}

// ---------------------------------------------------------------------------
// CampaignSpec decode
// ---------------------------------------------------------------------------

fn decode_injection(v: &Json, path: &str) -> Result<Injection, DecodeError> {
    use gecko_emi::attack::DpiPoint;
    check_keys(v, path, &["kind", "distance_m"])?;
    let kind = as_str(get(v, path, "kind")?, &format!("{path}.kind"))?;
    match kind {
        "dpi_p1" => Ok(Injection::Dpi(DpiPoint::P1)),
        "dpi_p2" => Ok(Injection::Dpi(DpiPoint::P2)),
        "remote" => {
            let dpath = format!("{path}.distance_m");
            let distance_m = as_f64(get(v, path, "distance_m")?, &dpath)?;
            if !(distance_m.is_finite() && distance_m >= 0.0) {
                return Err(DecodeError::new(&dpath, "expected a non-negative distance"));
            }
            Ok(Injection::Remote { distance_m })
        }
        other => Err(DecodeError::new(
            &format!("{path}.kind"),
            format!("unknown injection kind {other:?} (expected dpi_p1, dpi_p2, or remote)"),
        )),
    }
}

fn decode_window(v: &Json, path: &str) -> Result<TimedAttack, DecodeError> {
    check_keys(
        v,
        path,
        &["start_s", "end_s", "freq_hz", "power_dbm", "injection"],
    )?;
    let start_s = as_f64(get(v, path, "start_s")?, &format!("{path}.start_s"))?;
    let end_s = match opt(v, "end_s") {
        None => f64::INFINITY,
        Some(e) => as_f64(e, &format!("{path}.end_s"))?,
    };
    let fpath = format!("{path}.freq_hz");
    let freq_hz = as_f64(get(v, path, "freq_hz")?, &fpath)?;
    if !(freq_hz.is_finite() && freq_hz > 0.0) {
        return Err(DecodeError::new(
            &fpath,
            format!("expected a positive frequency, got {freq_hz}"),
        ));
    }
    let power_dbm = as_f64(get(v, path, "power_dbm")?, &format!("{path}.power_dbm"))?;
    let injection = decode_injection(get(v, path, "injection")?, &format!("{path}.injection"))?;
    Ok(TimedAttack {
        start_s,
        end_s,
        signal: EmiSignal::new(freq_hz, power_dbm),
        injection,
    })
}

fn decode_attack(v: &Json, path: &str) -> Result<AttackCase, DecodeError> {
    check_keys(v, path, &["label", "windows"])?;
    let label = as_str(get(v, path, "label")?, &format!("{path}.label"))?.to_string();
    let mut windows = Vec::new();
    if let Some(list) = opt(v, "windows") {
        for (i, w) in as_arr(list, &format!("{path}.windows"))?.iter().enumerate() {
            windows.push(decode_window(w, &format!("{path}.windows[{i}]"))?);
        }
    }
    Ok(AttackCase {
        label,
        schedule: AttackSchedule::from_windows(windows),
    })
}

fn decode_fault_model(v: &Json, path: &str) -> Result<FaultModel, DecodeError> {
    check_keys(v, path, &["kind", "bit"])?;
    match as_str(get(v, path, "kind")?, &format!("{path}.kind"))? {
        "skip" => Ok(FaultModel::Skip),
        "opcode-corrupt" => Ok(FaultModel::OpcodeCorrupt),
        "operand-bitflip" => {
            let bpath = format!("{path}.bit");
            let bit = as_u64(get(v, path, "bit")?, &bpath)?;
            if bit >= 32 {
                return Err(DecodeError::new(&bpath, "expected a bit index in 0..32"));
            }
            Ok(FaultModel::OperandBitflip { bit: bit as u8 })
        }
        other => Err(DecodeError::new(
            &format!("{path}.kind"),
            format!(
                "unknown fault model {other:?} (expected skip, opcode-corrupt, or operand-bitflip)"
            ),
        )),
    }
}

fn decode_fault_window(v: &Json, path: &str) -> Result<TimedFault, DecodeError> {
    check_keys(
        v,
        path,
        &[
            "start_s",
            "end_s",
            "freq_hz",
            "power_dbm",
            "injection",
            "model",
        ],
    )?;
    let start_s = as_f64(get(v, path, "start_s")?, &format!("{path}.start_s"))?;
    let end_s = match opt(v, "end_s") {
        None => f64::INFINITY,
        Some(e) => as_f64(e, &format!("{path}.end_s"))?,
    };
    let fpath = format!("{path}.freq_hz");
    let freq_hz = as_f64(get(v, path, "freq_hz")?, &fpath)?;
    if !(freq_hz.is_finite() && freq_hz > 0.0) {
        return Err(DecodeError::new(
            &fpath,
            format!("expected a positive frequency, got {freq_hz}"),
        ));
    }
    let power_dbm = as_f64(get(v, path, "power_dbm")?, &format!("{path}.power_dbm"))?;
    let injection = decode_injection(get(v, path, "injection")?, &format!("{path}.injection"))?;
    let model = decode_fault_model(get(v, path, "model")?, &format!("{path}.model"))?;
    Ok(TimedFault {
        start_s,
        end_s,
        signal: EmiSignal::new(freq_hz, power_dbm),
        injection,
        model,
    })
}

fn decode_fault(v: &Json, path: &str) -> Result<FaultCase, DecodeError> {
    check_keys(v, path, &["label", "windows"])?;
    let label = as_str(get(v, path, "label")?, &format!("{path}.label"))?.to_string();
    let mut windows = Vec::new();
    if let Some(list) = opt(v, "windows") {
        for (i, w) in as_arr(list, &format!("{path}.windows"))?.iter().enumerate() {
            windows.push(decode_fault_window(w, &format!("{path}.windows[{i}]"))?);
        }
    }
    Ok(FaultCase {
        label,
        schedule: FaultSchedule::from_windows(windows),
    })
}

fn decode_device(v: &Json, path: &str) -> Result<DeviceCase, DecodeError> {
    check_keys(v, path, &["device", "monitor"])?;
    let dpath = format!("{path}.device");
    let name = as_str(get(v, path, "device")?, &dpath)?;
    let device = device_by_name(name).ok_or_else(|| {
        let known: Vec<&str> = gecko_emi::devices::all_devices()
            .iter()
            .map(|d| d.name())
            .collect();
        DecodeError::new(
            &dpath,
            format!(
                "unknown device {name:?} (known boards: {})",
                known.join(", ")
            ),
        )
    })?;
    let monitor = match opt(v, "monitor") {
        None => MonitorKind::Adc,
        Some(m) => {
            let mpath = format!("{path}.monitor");
            match as_str(m, &mpath)? {
                "adc" => MonitorKind::Adc,
                "comparator" => MonitorKind::Comparator,
                other => {
                    return Err(DecodeError::new(
                        &mpath,
                        format!("unknown monitor {other:?} (expected adc or comparator)"),
                    ))
                }
            }
        }
    };
    Ok(DeviceCase { device, monitor })
}

fn decode_supply(v: &Json, path: &str) -> Result<Supply, DecodeError> {
    check_keys(
        v,
        path,
        &["kind", "power_w", "period_s", "starve_s", "attenuation"],
    )?;
    let positive_power = |key: &str| -> Result<f64, DecodeError> {
        let ppath = format!("{path}.{key}");
        let power_w = as_f64(get(v, path, key)?, &ppath)?;
        if !(power_w.is_finite() && power_w > 0.0) {
            return Err(DecodeError::new(
                &ppath,
                "expected positive harvested power",
            ));
        }
        Ok(power_w)
    };
    match as_str(get(v, path, "kind")?, &format!("{path}.kind"))? {
        "bench" => Ok(Supply::Bench),
        "harvesting" => Ok(Supply::Harvesting {
            power_w: positive_power("power_w")?,
        }),
        "starved" => {
            let power_w = positive_power("power_w")?;
            let ppath = format!("{path}.period_s");
            let period_s = as_f64(get(v, path, "period_s")?, &ppath)?;
            if !(period_s.is_finite() && period_s > 0.0) {
                return Err(DecodeError::new(
                    &ppath,
                    "expected a positive attack period",
                ));
            }
            let spath = format!("{path}.starve_s");
            let starve_s = as_f64(get(v, path, "starve_s")?, &spath)?;
            if !(starve_s.is_finite() && (0.0..=period_s).contains(&starve_s)) {
                return Err(DecodeError::new(
                    &spath,
                    "expected a starvation window within [0, period_s]",
                ));
            }
            let apath = format!("{path}.attenuation");
            let attenuation = as_f64(get(v, path, "attenuation")?, &apath)?;
            if !(attenuation.is_finite() && (0.0..=1.0).contains(&attenuation)) {
                return Err(DecodeError::new(
                    &apath,
                    "expected an attenuation fraction in [0, 1]",
                ));
            }
            Ok(Supply::Starved {
                power_w,
                period_s,
                starve_s,
                attenuation,
            })
        }
        other => Err(DecodeError::new(
            &format!("{path}.kind"),
            format!("unknown supply kind {other:?} (expected bench, harvesting, or starved)"),
        )),
    }
}

fn decode_workload(v: &Json, path: &str) -> Result<Workload, DecodeError> {
    check_keys(
        v,
        path,
        &[
            "kind",
            "seconds",
            "n",
            "max_seconds",
            "horizon_s",
            "bucket_s",
        ],
    )?;
    let positive = |key: &str| -> Result<f64, DecodeError> {
        let fpath = format!("{path}.{key}");
        let x = as_f64(get(v, path, key)?, &fpath)?;
        if !(x.is_finite() && x > 0.0) {
            return Err(DecodeError::new(&fpath, "expected a positive duration"));
        }
        Ok(x)
    };
    match as_str(get(v, path, "kind")?, &format!("{path}.kind"))? {
        "run_for" => Ok(Workload::RunFor {
            seconds: positive("seconds")?,
        }),
        "until_completions" => Ok(Workload::UntilCompletions {
            n: as_u64(get(v, path, "n")?, &format!("{path}.n"))?,
            max_seconds: positive("max_seconds")?,
        }),
        "buckets" => Ok(Workload::Buckets {
            horizon_s: positive("horizon_s")?,
            bucket_s: positive("bucket_s")?,
        }),
        other => Err(DecodeError::new(
            &format!("{path}.kind"),
            format!(
                "unknown workload kind {other:?} (expected run_for, until_completions, or buckets)"
            ),
        )),
    }
}

/// Decodes a campaign spec from a parsed JSON tree. Only `name` is
/// required; absent axes keep the [`CampaignSpec::new`] defaults.
pub fn spec_from_value(v: &Json, path: &str) -> Result<CampaignSpec, DecodeError> {
    check_keys(
        v,
        path,
        &[
            "name",
            "apps",
            "schemes",
            "devices",
            "attacks",
            "faults",
            "seeds",
            "supply",
            "capacitor",
            "adc_filter_taps",
            "compile",
            "workload",
        ],
    )?;
    let sub = |key: &str| {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    };
    let name = as_str(get(v, path, "name")?, &sub("name"))?;
    if name.is_empty() {
        return Err(DecodeError::new(&sub("name"), "campaign name is empty"));
    }
    let mut spec = CampaignSpec::new(name);

    if let Some(list) = opt(v, "apps") {
        spec.apps = as_arr(list, &sub("apps"))?
            .iter()
            .enumerate()
            .map(|(i, a)| Ok(as_str(a, &format!("{}[{i}]", sub("apps")))?.to_string()))
            .collect::<Result<_, DecodeError>>()?;
    }
    if let Some(list) = opt(v, "schemes") {
        spec.schemes = as_arr(list, &sub("schemes"))?
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let spath = format!("{}[{i}]", sub("schemes"));
                let name = as_str(s, &spath)?;
                SchemeKind::from_name(name).ok_or_else(|| {
                    let known: Vec<&str> = SchemeKind::all().iter().map(|s| s.slug()).collect();
                    DecodeError::new(
                        &spath,
                        format!(
                            "unknown scheme {name:?} (expected one of: {})",
                            known.join(", ")
                        ),
                    )
                })
            })
            .collect::<Result<_, DecodeError>>()?;
    }
    if let Some(list) = opt(v, "devices") {
        spec.devices = as_arr(list, &sub("devices"))?
            .iter()
            .enumerate()
            .map(|(i, d)| decode_device(d, &format!("{}[{i}]", sub("devices"))))
            .collect::<Result<_, DecodeError>>()?;
    }
    if let Some(list) = opt(v, "attacks") {
        spec.attacks = as_arr(list, &sub("attacks"))?
            .iter()
            .enumerate()
            .map(|(i, a)| decode_attack(a, &format!("{}[{i}]", sub("attacks"))))
            .collect::<Result<_, DecodeError>>()?;
    }
    if let Some(list) = opt(v, "faults") {
        spec.faults = as_arr(list, &sub("faults"))?
            .iter()
            .enumerate()
            .map(|(i, f)| decode_fault(f, &format!("{}[{i}]", sub("faults"))))
            .collect::<Result<_, DecodeError>>()?;
    }
    if let Some(list) = opt(v, "seeds") {
        spec.seeds = as_arr(list, &sub("seeds"))?
            .iter()
            .enumerate()
            .map(|(i, s)| as_u64(s, &format!("{}[{i}]", sub("seeds"))))
            .collect::<Result<_, DecodeError>>()?;
    }
    if let Some(supply) = opt(v, "supply") {
        spec.supply = decode_supply(supply, &sub("supply"))?;
    }
    if let Some(cap) = opt(v, "capacitor") {
        let cpath = sub("capacitor");
        check_keys(
            cap,
            &cpath,
            &["capacitance_f", "initial_voltage_v", "rescale_thresholds"],
        )?;
        spec.capacitor = Some(CapacitorSpec {
            capacitance_f: as_f64(
                get(cap, &cpath, "capacitance_f")?,
                &format!("{cpath}.capacitance_f"),
            )?,
            initial_voltage_v: as_f64(
                get(cap, &cpath, "initial_voltage_v")?,
                &format!("{cpath}.initial_voltage_v"),
            )?,
            rescale_thresholds: match opt(cap, "rescale_thresholds") {
                None => false,
                Some(b) => as_bool(b, &format!("{cpath}.rescale_thresholds"))?,
            },
        });
    }
    if let Some(taps) = opt(v, "adc_filter_taps") {
        spec.adc_filter_taps = Some(as_usize(taps, &sub("adc_filter_taps"))?);
    }
    if let Some(compile) = opt(v, "compile") {
        let cpath = sub("compile");
        check_keys(
            compile,
            &cpath,
            &["wcet_budget_cycles", "prune", "max_slice_insts"],
        )?;
        // Start from defaults; `"wcet_budget_cycles": null` disables
        // splitting, absence keeps the default budget.
        if let Some((_, budget)) = as_obj(compile, &cpath)?
            .iter()
            .find(|(k, _)| k == "wcet_budget_cycles")
        {
            spec.compile.wcet_budget_cycles = match budget {
                Json::Null => None,
                b => Some(as_u64(b, &format!("{cpath}.wcet_budget_cycles"))?),
            };
        }
        if let Some(prune) = opt(compile, "prune") {
            spec.compile.prune = as_bool(prune, &format!("{cpath}.prune"))?;
        }
        if let Some(max) = opt(compile, "max_slice_insts") {
            spec.compile.max_slice_insts = as_usize(max, &format!("{cpath}.max_slice_insts"))?;
        }
    }
    if let Some(workload) = opt(v, "workload") {
        spec.workload = decode_workload(workload, &sub("workload"))?;
    }
    Ok(spec)
}

/// Parses and decodes a campaign spec from JSON text.
///
/// # Errors
///
/// [`SpecError::Parse`] with a byte offset when the text is not JSON;
/// [`SpecError::Decode`] with a JSON path when the document has the wrong
/// shape.
pub fn spec_from_json(text: &str) -> Result<CampaignSpec, SpecError> {
    Ok(spec_from_value(&Json::parse(text)?, "")?)
}

// ---------------------------------------------------------------------------
// CampaignReport encode
// ---------------------------------------------------------------------------

fn metrics_value(m: &Metrics) -> Json {
    Json::Obj(
        m.fields()
            .into_iter()
            .map(|(name, value)| (name.to_string(), Json::from_value(&value)))
            .collect(),
    )
}

fn failure_value(f: &RunFailure) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str(f.kind().name().to_string())),
        (
            "item".into(),
            f.item().map_or(Json::Null, |i| Json::U64(i as u64)),
        ),
        ("run_key".into(), f.run_key().map_or(Json::Null, Json::U64)),
        ("detail".into(), Json::Str(f.describe())),
    ])
}

fn result_value(spec: &CampaignSpec, r: &RunResult, deterministic: bool) -> Json {
    let cs = &r.compile_stats;
    let mut fields = vec![
        ("item".into(), Json::U64(r.item.index as u64)),
        ("app".into(), Json::Str(spec.apps[r.item.app_idx].clone())),
        (
            "scheme".into(),
            Json::Str(spec.schemes[r.item.scheme_idx].slug().to_string()),
        ),
        (
            "device".into(),
            Json::Str(spec.devices[r.item.device_idx].device.name().to_string()),
        ),
        (
            "attack".into(),
            Json::Str(spec.attacks[r.item.attack_idx].label.clone()),
        ),
        (
            "fault".into(),
            Json::Str(spec.faults[r.item.fault_idx].label.clone()),
        ),
        ("seed".into(), Json::U64(spec.seeds[r.item.seed_idx])),
        (
            "compile_stats".into(),
            Json::Obj(vec![
                ("regions".into(), Json::U64(cs.regions as u64)),
                ("regions_split".into(), Json::U64(cs.regions_split as u64)),
                (
                    "checkpoints_before".into(),
                    Json::U64(cs.checkpoints_before as u64),
                ),
                (
                    "checkpoints_after".into(),
                    Json::U64(cs.checkpoints_after as u64),
                ),
                (
                    "checkpoints_pruned".into(),
                    Json::U64(cs.checkpoints_pruned as u64),
                ),
                (
                    "recovery_blocks".into(),
                    Json::U64(cs.recovery_blocks as u64),
                ),
                ("recovery_insts".into(), Json::U64(cs.recovery_insts as u64)),
                (
                    "coloring_fixups".into(),
                    Json::U64(cs.coloring_fixups as u64),
                ),
                (
                    "boundaries_hoisted".into(),
                    Json::U64(cs.boundaries_hoisted as u64),
                ),
            ]),
        ),
        ("metrics".into(), metrics_value(&r.metrics)),
        (
            "buckets".into(),
            Json::Arr(r.buckets.iter().map(metrics_value).collect()),
        ),
    ];
    if !deterministic {
        fields.push(("cache_hit".into(), Json::Bool(r.cache_hit)));
        fields.push(("wall_ns".into(), Json::U64(r.wall_ns)));
    }
    Json::Obj(fields)
}

fn report_value(report: &CampaignReport, deterministic: bool) -> Json {
    let spec = &report.spec;
    let mut fields = vec![
        ("campaign".into(), Json::Str(spec.name.clone())),
        ("fingerprint".into(), Json::U64(spec.fingerprint())),
        ("digest".into(), Json::U64(report.deterministic_digest())),
    ];
    if !deterministic {
        let c = &report.counters;
        fields.push(("workers".into(), Json::U64(report.workers as u64)));
        fields.push(("halted".into(), Json::Bool(report.halted)));
        fields.push(("wall_s".into(), Json::F64(report.wall_s)));
        fields.push((
            "counters".into(),
            Json::Obj(vec![
                ("items".into(), Json::U64(c.items)),
                ("compile_misses".into(), Json::U64(c.compile_misses)),
                ("compile_hits".into(), Json::U64(c.compile_hits)),
                ("failures".into(), Json::U64(c.failures)),
                ("retries".into(), Json::U64(c.retries)),
                ("resumed".into(), Json::U64(c.resumed)),
                ("dropped_records".into(), Json::U64(c.dropped_records)),
                ("batched_runs".into(), Json::U64(c.batched_runs)),
                ("batch_spans".into(), Json::U64(c.batch_spans)),
                ("batch_fallbacks".into(), Json::U64(c.batch_fallbacks)),
                (
                    "batch_occupancy_permille".into(),
                    Json::U64(c.batch_occupancy_permille),
                ),
            ]),
        ));
    }
    fields.push(("totals".into(), metrics_value(&report.totals)));
    fields.push((
        "results".into(),
        Json::Arr(
            report
                .results
                .iter()
                .map(|r| result_value(spec, r, deterministic))
                .collect(),
        ),
    ));
    fields.push((
        "failures".into(),
        Json::Arr(report.failures.iter().map(failure_value).collect()),
    ));
    Json::Obj(fields)
}

/// Encodes a merged campaign report as JSON: identity, digest, counters,
/// per-item results (with compile stats, metrics, buckets), and the
/// quarantined failures. Includes wall-clock fields, which differ from
/// run to run.
pub fn report_to_json(report: &CampaignReport) -> String {
    report_value(report, false).encode()
}

/// Encodes only the *deterministic* payload of a report: name,
/// fingerprint, digest, totals, results without wall-clock/cache fields,
/// and failures. Two runs of the same spec — at any worker count, killed
/// and resumed or not, served over HTTP or run in-process — produce
/// byte-identical output, so this is the document end-to-end tests (and
/// the serve smoke gate) diff bit-exactly.
pub fn report_deterministic_json(report: &CampaignReport) -> String {
    report_value(report, true).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fancy_spec() -> CampaignSpec {
        use gecko_emi::attack::DpiPoint;
        let sig = EmiSignal::new(27e6, 35.0);
        CampaignSpec::new("fancy")
            .apps(["blink", "crc16"])
            .schemes([SchemeKind::Gecko, SchemeKind::Nvp])
            .devices([
                DeviceCase::default_board(),
                DeviceCase::new(gecko_emi::devices::msp430fr6989(), MonitorKind::Comparator),
            ])
            .attacks([
                AttackCase::none(),
                AttackCase::new(
                    "cont",
                    AttackSchedule::continuous(sig, Injection::Remote { distance_m: 2.0 }),
                ),
                AttackCase::new(
                    "bursts",
                    AttackSchedule::bursts(sig, Injection::Dpi(DpiPoint::P2), &[0.1, 0.5], 0.05),
                ),
            ])
            .faults([
                FaultCase::none(),
                FaultCase::new(
                    "skip-bursts",
                    FaultSchedule::bursts(
                        sig,
                        Injection::Dpi(DpiPoint::P2),
                        FaultModel::Skip,
                        &[0.2, 0.7],
                        0.05,
                    ),
                ),
                FaultCase::new(
                    "bitflip",
                    FaultSchedule::continuous(
                        sig,
                        Injection::Remote { distance_m: 1.0 },
                        FaultModel::OperandBitflip { bit: 17 },
                    ),
                ),
            ])
            .seeds([7, u64::MAX])
            .supply(Supply::Starved {
                power_w: 0.0012,
                period_s: 0.5,
                starve_s: 0.1,
                attenuation: 0.25,
            })
            .capacitor(CapacitorSpec {
                capacitance_f: 1e-3,
                initial_voltage_v: 3.2,
                rescale_thresholds: true,
            })
            .workload(Workload::UntilCompletions {
                n: 3,
                max_seconds: 30.0,
            })
    }

    #[test]
    fn spec_round_trips_typed_and_textual() {
        let spec = fancy_spec();
        let text = spec_to_json(&spec);
        let back = spec_from_json(&text).unwrap();
        assert_eq!(back, spec, "decode(encode(spec)) == spec");
        assert_eq!(spec_to_json(&back), text, "re-encode is byte-identical");
    }

    #[test]
    fn minimal_spec_defaults_match_new() {
        let spec = spec_from_json(r#"{"name":"tiny"}"#).unwrap();
        assert_eq!(spec, CampaignSpec::new("tiny"));
    }

    #[test]
    fn errors_carry_json_paths() {
        let e = spec_from_json(r#"{"name":"x","schemes":["warp"]}"#).unwrap_err();
        assert!(
            e.to_string().contains("schemes[0]") && e.to_string().contains("warp"),
            "{e}"
        );
        let e = spec_from_json(
            r#"{"name":"x","attacks":[{"label":"a","windows":[{"start_s":0.0,"freq_hz":-1.0,
                "power_dbm":30.0,"injection":{"kind":"dpi_p1"}}]}]}"#,
        )
        .unwrap_err();
        assert!(
            e.to_string().contains("attacks[0].windows[0].freq_hz"),
            "{e}"
        );
        let e = spec_from_json(r#"{"name":"x","devices":[{"device":"ZX81"}]}"#).unwrap_err();
        assert!(e.to_string().contains("known boards"), "{e}");
        let e = spec_from_json(r#"{"name":"x","seedz":[1]}"#).unwrap_err();
        assert!(e.to_string().contains("unknown field `seedz`"), "{e}");
        let e = spec_from_json(
            r#"{"name":"x","faults":[{"label":"f","windows":[{"start_s":0.0,"freq_hz":27e6,
                "power_dbm":35.0,"injection":{"kind":"dpi_p2"},"model":{"kind":"glitch"}}]}]}"#,
        )
        .unwrap_err();
        assert!(
            e.to_string().contains("faults[0].windows[0].model.kind")
                && e.to_string().contains("glitch"),
            "{e}"
        );
        let e = spec_from_json(
            r#"{"name":"x","supply":{"kind":"starved","power_w":1e-3,"period_s":1.0,
                "starve_s":2.0,"attenuation":0.5}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("supply.starve_s"), "{e}");
        let e = spec_from_json("{").unwrap_err();
        assert!(matches!(e, SpecError::Parse(_)), "{e}");
    }

    #[test]
    fn served_grid_equals_library_grid() {
        // The decoded spec must expand to the same run keys — this is what
        // makes a served campaign bit-identical to the library path.
        let spec = fancy_spec();
        let back = spec_from_json(&spec_to_json(&spec)).unwrap();
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn report_json_round_trips_through_the_tree() {
        let spec = CampaignSpec::new("tiny-report")
            .apps(["blink"])
            .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
            .workload(Workload::RunFor { seconds: 0.002 });
        let report = crate::Campaign::new(spec).run().unwrap();
        for text in [report_to_json(&report), report_deterministic_json(&report)] {
            let tree = Json::parse(&text).unwrap();
            assert_eq!(tree.encode(), text, "encode→decode→encode is identity");
            assert_eq!(
                tree.get("digest").unwrap().as_u64(),
                Some(report.deterministic_digest())
            );
        }
        let det1 = report_deterministic_json(&report);
        let report8 = crate::Campaign::new(report.spec.clone())
            .workers(8)
            .run()
            .unwrap();
        assert_eq!(
            report_deterministic_json(&report8),
            det1,
            "deterministic document is worker-count invariant"
        );
    }
}
