//! Regenerates Figure 15: capacitor-size sensitivity.

use gecko_bench::{fidelity_from_env, print_table, save_rows};
use gecko_sim::experiments::fig15;

fn main() {
    let rows = fig15::rows(fidelity_from_env());
    save_rows("fig15", &rows);
    let table = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0} mF", r.capacitance_f * 1e3),
                r.scheme.clone(),
                format!("{:.2} s", r.total_time_s),
                r.completions.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Fig. 15: total execution time vs capacitor size (equal buffered energy)",
        &["capacitance", "scheme", "total time", "runs"],
        &table,
    );
}
