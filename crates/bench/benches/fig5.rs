//! Regenerates Figure 5: remote-attack sweeps over the nine ADC boards.

use gecko_bench::{fidelity_from_env, mhz, pct, print_table, save_rows, workers_from_env};

fn main() {
    let rows =
        gecko_fleet::figures::fig5(fidelity_from_env(), workers_from_env()).expect("fig5 campaign");
    save_rows("fig5", &rows);
    let devices: std::collections::BTreeSet<_> = rows.iter().map(|r| r.device.clone()).collect();
    let mut summary = Vec::new();
    for d in &devices {
        let min = rows
            .iter()
            .filter(|r| &r.device == d)
            .min_by(|a, b| a.rate.total_cmp(&b.rate))
            .unwrap();
        summary.push(vec![d.clone(), pct(min.rate), mhz(min.freq_hz)]);
    }
    print_table(
        "Fig. 5: remote attack (35 dBm, 5 m) — per-device minimum forward progress",
        &["device", "R_min", "at"],
        &summary,
    );
    let fr = rows
        .iter()
        .filter(|r| r.device.contains("FR5994"))
        .map(|r| vec![mhz(r.freq_hz), pct(r.rate)])
        .collect::<Vec<_>>();
    print_table("Fig. 5 series (MSP430FR5994)", &["freq", "R"], &fr);
}
