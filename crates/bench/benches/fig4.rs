//! Regenerates Figure 4: DPI forward-progress-vs-frequency curves.

use gecko_bench::{fidelity_from_env, mhz, pct, print_table, save_rows, workers_from_env};

fn main() {
    let rows =
        gecko_fleet::figures::fig4(fidelity_from_env(), workers_from_env()).expect("fig4 campaign");
    save_rows("fig4", &rows);
    for point in ["P1", "P2"] {
        let table: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.point == point && r.device.contains("FR5994"))
            .map(|r| vec![mhz(r.freq_hz), pct(r.rate)])
            .collect();
        print_table(
            &format!("Fig. 4 (DPI {point}, MSP430FR5994): forward progress vs frequency"),
            &["freq", "R"],
            &table,
        );
    }
    // Per-device minima.
    let mut mins: Vec<Vec<String>> = Vec::new();
    let devices: std::collections::BTreeSet<_> = rows.iter().map(|r| r.device.clone()).collect();
    for d in devices {
        for point in ["P1", "P2"] {
            let min = rows
                .iter()
                .filter(|r| r.device == d && r.point == point)
                .min_by(|a, b| a.rate.total_cmp(&b.rate))
                .unwrap();
            mins.push(vec![
                d.clone(),
                point.to_string(),
                pct(min.rate),
                mhz(min.freq_hz),
            ]);
        }
    }
    print_table(
        "Fig. 4 summary: per-device DPI minima",
        &["device", "point", "R_min", "at"],
        &mins,
    );
}
