//! Regenerates Figure 12: checkpoint reduction from pruning.

use gecko_bench::{fidelity_from_env, print_table, save_rows};
use gecko_sim::experiments::fig12;

fn main() {
    let rows = fig12::rows(fidelity_from_env());
    save_rows("fig12", &rows);
    let table = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.unpruned.to_string(),
                r.pruned.to_string(),
                format!("{:.0}%", r.reduction * 100.0),
                r.recovery_blocks.to_string(),
                format!("{:.1}", r.mean_recovery_len),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Fig. 12: checkpoint stores removable by pruning",
        &[
            "app",
            "w/o pruning",
            "with pruning",
            "reduction",
            "recovery blocks",
            "insts/block",
        ],
        &table,
    );
    let (un, pr): (usize, usize) = rows
        .iter()
        .fold((0, 0), |(a, b), r| (a + r.unpruned, b + r.pruned));
    println!(
        "overall reduction: {:.1}%",
        100.0 * (1.0 - pr as f64 / un as f64)
    );
}
