//! Regenerates Figure 8: attack distance vs transmit power.

use gecko_bench::{fidelity_from_env, pct, print_table, save_json};
use gecko_sim::experiments::fig8;

fn main() {
    let rows = fig8::rows(fidelity_from_env());
    save_json("fig8", &rows);
    let table = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1} m", r.distance_m),
                format!("{:.0} dBm", r.power_dbm),
                pct(r.rate),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Fig. 8: forward progress within the 5 m attack range (27 MHz)",
        &["distance", "power", "R"],
        &table,
    );
}
