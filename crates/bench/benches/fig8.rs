//! Regenerates Figure 8: attack distance vs transmit power.

use gecko_bench::{fidelity_from_env, pct, print_table, save_rows, workers_from_env};

fn main() {
    let rows =
        gecko_fleet::figures::fig8(fidelity_from_env(), workers_from_env()).expect("fig8 campaign");
    save_rows("fig8", &rows);
    let table = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1} m", r.distance_m),
                format!("{:.0} dBm", r.power_dbm),
                pct(r.rate),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Fig. 8: forward progress within the 5 m attack range (27 MHz)",
        &["distance", "power", "R"],
        &table,
    );
}
