//! Regenerates Figure 14: performance in the energy-harvesting environment.

use gecko_bench::{fidelity_from_env, print_table, save_rows};
use gecko_sim::experiments::fig14;

fn main() {
    let rows = fig14::rows(fidelity_from_env());
    save_rows("fig14", &rows);
    let apps: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.app.clone()).collect();
        v.dedup();
        v
    };
    let mut table = Vec::new();
    for app in &apps {
        let get = |s: &str| {
            rows.iter()
                .find(|r| &r.app == app && r.scheme == s)
                .map(|r| format!("{:.2}x", r.normalized_time))
                .unwrap_or_default()
        };
        table.push(vec![app.clone(), get("NVP"), get("Ratchet"), get("GECKO")]);
    }
    print_table(
        "Fig. 14: normalized execution time under RF energy harvesting",
        &["app", "NVP", "Ratchet", "GECKO"],
        &table,
    );
}
