//! `BENCH_sim` — baseline numbers for the simulator fast path.
//!
//! Seven sections, one JSONL row each per grid point, persisted as
//! `target/gecko-results/BENCH_sim.jsonl` plus a compact machine-readable
//! summary (`row name, ns/op, ratio, commit`) as
//! `target/gecko-results/BENCH_sim.json`:
//!
//! 1. **Hibernation fast-forward** — a hibernation-heavy workload (µW-class
//!    harvest into a 100 µF buffer, EMI bursts forcing the exact fallback
//!    around the attack windows) per scheme. The headline coalescing ratio
//!    `steps / dispatches` is *deterministic* — simulated ticks, not
//!    wall-clock — so the `>= 3x` assertion cannot flake on a loaded CI
//!    box. Trajectory equality against the tick-exact reference is
//!    asserted on every run; wall-clock steps/s are printed for scale.
//! 2. **Event horizon** — batched active-execution stepping on the
//!    Figure 4 workload (bench supply, victim app), clean and under a
//!    continuous resonant DPI attack. The clean coalescing ratio
//!    `steps / dispatches` is deterministic and asserted `>= 3x`;
//!    trajectory equality against the per-instruction reference is
//!    asserted on every run.
//!    * **Batch step** — the harvesting duty-cycle workload through a
//!      [`gecko_sim::DeviceBatch`]: a fleet of devices sharing one
//!      predecoded program, planned and drained lock-step. Bit-exact
//!      against per-instruction scalar references; the deterministic
//!      per-device steps-per-dispatch ratio is asserted `>= 5x`.
//!    * **Fault path** — the EM instruction-fault seam's fault-free cost:
//!      an armed-but-unreached fault window forces every span plan
//!      through the fault-edge guard; bit-identical trajectory asserted,
//!      wall-clock overhead gated `< 2%` (`< 10%` in the quick run).
//! 3. **Dispatch** — predecoded vs interpreted instruction dispatch on the
//!    bench-supply throughput workload (the same shape as the
//!    `sim_throughput` micro-bench), reported as steps/s per scheme.
//! 4. **Campaign** — wall-clock for a small `gecko-fleet` Monte-Carlo
//!    campaign (the fast path is on by default for every worker).
//! 5. **Checker** — `gecko-check` windows/s with the hibernation
//!    fast-forward on vs off; the two reports must match exactly.
//!    * **Incremental check** — the same campaign cold (fresh memo
//!      store) vs warm (store reopened from disk). Warm must answer
//!      ≥ 90% of windows from the persisted memo; the deterministic
//!      warm-over-cold work ratio is asserted `>= 5x`; digests must
//!      match the store-free reference either way.
//! 6. **Campaign resume** — the same fleet campaign with a resume journal
//!    attached, vs plain, vs replayed from a complete journal. The clean
//!    path must absorb supervision + journaling for < 2% overhead, and a
//!    full-journal resume must re-execute nothing.
//! 7. **Serve submit** — the same quick grid submitted to an ephemeral
//!    `gecko-serve` daemon over HTTP (submit, long-poll, fetch) vs the
//!    direct library call; the service layer must add < 10% and produce
//!    the identical deterministic digest.

use gecko_bench::{
    print_table, save_json_summary, save_rows, time_best_of, workers_from_env, SummaryRow,
};
use gecko_check::{check_app, ExploreConfig};
use gecko_compiler::CompileOptions;
use gecko_emi::attack::DpiPoint;
use gecko_emi::{AttackSchedule, EmiSignal, Injection};
use gecko_energy::ConstantPower;
use gecko_fleet::{Campaign, CampaignSpec, Journal, Workload};
use gecko_sim::device::CompiledApp;
use gecko_sim::{impl_record, ExecMode, SchemeKind, SimConfig, Simulator};

/// One `BENCH_sim` row.
struct BenchRow {
    section: String,
    scheme: String,
    app: String,
    steps: u64,
    ff_ticks: u64,
    eh_insts: u64,
    ratio: f64,
    wall_ms: f64,
    rate_per_s: f64,
}
impl_record!(BenchRow {
    section,
    scheme,
    app,
    steps,
    ff_ticks,
    eh_insts,
    ratio,
    wall_ms,
    rate_per_s
});

/// The hibernation-heavy configuration: 0.3 µW of harvest into an empty
/// 100 µF buffer never reaches V_on inside the window, so the whole run is
/// recharge hibernation; two EMI bursts force the tick-exact fallback (and
/// give the coalescing ratio a non-trivial denominator on monitor-woken
/// schemes).
fn hibernation_config(scheme: SchemeKind) -> SimConfig {
    let mut cfg = SimConfig::harvesting(scheme)
        .with_capacitor(100e-6, 0.0)
        .with_attack(AttackSchedule::bursts(
            EmiSignal::new(27e6, 35.0),
            Injection::Remote { distance_m: 2.0 },
            &[0.3, 1.1],
            0.05,
        ));
    cfg.harvester = Box::new(ConstantPower::new(0.3e-6));
    cfg
}

fn bench_fast_forward(rows: &mut Vec<BenchRow>, quick: bool) {
    let app = gecko_apps::app_by_name("blink").unwrap();
    let window_s = if quick { 5.0 } else { 20.0 };
    let iters = if quick { 2 } else { 5 };
    let mut table = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for scheme in SchemeKind::all() {
        // Compile once outside the timed region: the bench measures the
        // hot loop, not the compiler.
        let compiled = CompiledApp::build(&app, scheme, &CompileOptions::default()).unwrap();
        let run_fast = || {
            let mut sim = Simulator::from_compiled(&compiled, hibernation_config(scheme));
            sim.run_for(window_s);
            sim
        };
        let run_exact = || {
            let mut sim = Simulator::from_compiled(&compiled, hibernation_config(scheme));
            sim.set_exec_mode(ExecMode::Interpreted);
            sim.set_fast_forward(false);
            sim.set_event_horizon(false);
            sim.run_for(window_s);
            sim
        };
        // Correctness first: the fast path must be observationally
        // invisible on the exact workload being timed.
        let fast = run_fast();
        let exact = run_exact();
        assert_eq!(fast.metrics, exact.metrics, "{scheme}: metrics diverged");
        assert_eq!(
            fast.state_hash(),
            exact.state_hash(),
            "{scheme}: state hash diverged"
        );
        let stats = fast.fast_path_stats();
        assert_eq!(
            stats.steps,
            stats.dispatches + stats.ff_ticks + stats.eh_insts
        );
        let ratio = stats.steps as f64 / (stats.dispatches.max(1)) as f64;
        worst_ratio = worst_ratio.min(ratio);

        let fast_wall = time_best_of(iters, run_fast);
        let exact_wall = time_best_of(iters, run_exact);
        let rate = stats.steps as f64 / fast_wall.as_secs_f64();
        table.push(vec![
            scheme.name().to_string(),
            stats.steps.to_string(),
            stats.ff_ticks.to_string(),
            format!("{ratio:.1}x"),
            format!("{:.0}k/s", rate / 1e3),
            format!("{:.1}x", exact_wall.as_secs_f64() / fast_wall.as_secs_f64()),
        ]);
        rows.push(BenchRow {
            section: "fast_forward".to_string(),
            scheme: scheme.name().to_string(),
            app: "blink".to_string(),
            steps: stats.steps,
            ff_ticks: stats.ff_ticks,
            eh_insts: stats.eh_insts,
            ratio,
            wall_ms: fast_wall.as_secs_f64() * 1e3,
            rate_per_s: rate,
        });
    }
    print_table(
        &format!("hibernation fast-forward, 0.3 µW / 100 µF, {window_s}s window (best of {iters})"),
        &[
            "scheme",
            "steps",
            "coalesced",
            "ratio",
            "steps/s",
            "wall speedup",
        ],
        &table,
    );
    assert!(
        worst_ratio >= 3.0,
        "hibernation-heavy workload must coalesce >= 3x (got {worst_ratio:.1}x)"
    );
    println!("ok: fast-forward coalesces >= {worst_ratio:.1}x of hibernation ticks");
}

/// The Figure 4 cell shape: bench-supply active execution of the victim
/// app, optionally under a continuous resonant DPI attack that pins the
/// simulator on the per-instruction fallback for the whole window.
fn fig4_cell(scheme: SchemeKind, attacked: bool) -> SimConfig {
    let cfg = SimConfig::bench_supply(scheme);
    if attacked {
        cfg.with_attack(AttackSchedule::continuous(
            EmiSignal::new(27e6, 20.0),
            Injection::Dpi(DpiPoint::P2),
        ))
    } else {
        cfg
    }
}

fn bench_event_horizon(rows: &mut Vec<BenchRow>, quick: bool) {
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let window_s = if quick { 0.02 } else { 0.05 };
    let iters = if quick { 2 } else { 5 };
    let mut table = Vec::new();
    let mut worst_clean_ratio = f64::INFINITY;
    for scheme in SchemeKind::all() {
        let compiled = CompiledApp::build(&app, scheme, &CompileOptions::default()).unwrap();
        for attacked in [false, true] {
            let cell = if attacked { "attacked" } else { "clean" };
            let run_fast = || {
                let mut sim = Simulator::from_compiled(&compiled, fig4_cell(scheme, attacked));
                sim.run_for(window_s);
                sim
            };
            let run_exact = || {
                let mut sim = Simulator::from_compiled(&compiled, fig4_cell(scheme, attacked));
                sim.set_exec_mode(ExecMode::Interpreted);
                sim.set_fast_forward(false);
                sim.set_event_horizon(false);
                sim.run_for(window_s);
                sim
            };
            // Correctness first: the event-horizon walk must be
            // observationally invisible on the exact workload being timed.
            let fast = run_fast();
            let exact = run_exact();
            assert_eq!(
                fast.metrics, exact.metrics,
                "{scheme}/{cell}: metrics diverged"
            );
            assert_eq!(
                fast.state_hash(),
                exact.state_hash(),
                "{scheme}/{cell}: state hash diverged"
            );
            let stats = fast.fast_path_stats();
            assert_eq!(
                stats.steps,
                stats.dispatches + stats.ff_ticks + stats.eh_insts
            );
            // The coalescing ratio is deterministic (simulated instructions,
            // not wall-clock), so the floor cannot flake on a loaded box.
            let ratio = stats.steps as f64 / (stats.dispatches.max(1)) as f64;
            if !attacked {
                worst_clean_ratio = worst_clean_ratio.min(ratio);
            }
            let fast_wall = time_best_of(iters, run_fast);
            let exact_wall = time_best_of(iters, run_exact);
            let rate = stats.steps as f64 / fast_wall.as_secs_f64();
            table.push(vec![
                scheme.name().to_string(),
                cell.to_string(),
                stats.steps.to_string(),
                stats.eh_insts.to_string(),
                format!("{ratio:.1}x"),
                format!("{:.1}M/s", rate / 1e6),
                format!("{:.1}x", exact_wall.as_secs_f64() / fast_wall.as_secs_f64()),
            ]);
            rows.push(BenchRow {
                section: "event_horizon".to_string(),
                scheme: scheme.name().to_string(),
                app: format!("bitcnt/{cell}"),
                steps: stats.steps,
                ff_ticks: stats.ff_ticks,
                eh_insts: stats.eh_insts,
                ratio,
                wall_ms: fast_wall.as_secs_f64() * 1e3,
                rate_per_s: rate,
            });
        }
    }
    print_table(
        &format!("event-horizon active stepping, bitcnt, {window_s}s window (best of {iters})"),
        &[
            "scheme",
            "cell",
            "steps",
            "coalesced",
            "ratio",
            "steps/s",
            "wall speedup",
        ],
        &table,
    );
    assert!(
        worst_clean_ratio >= 3.0,
        "clean active execution must coalesce >= 3x (got {worst_clean_ratio:.1}x)"
    );
    println!("ok: event horizon coalesces >= {worst_clean_ratio:.1}x of active instructions");
}

/// Section 2b: `DeviceBatch` lock-step stepping — a fleet of devices
/// sharing one predecoded program on the harvesting duty-cycle workload
/// (active bursts draining the capacitor, recharge hibernation between
/// them), vs the same fleet stepped per instruction (interpreted,
/// coalescers off). Correctness is asserted bit-exactly on every run. The
/// headline floor is *deterministic*, like the other coalescing sections:
/// per-device steps retired per scalar dispatch — the amortized ns/op
/// lever — must stay `>= 5x`; wall-clock ns/op is printed for scale but
/// never asserted (tiny windows make wall ratios pure scheduler noise).
fn bench_batch_step(rows: &mut Vec<BenchRow>, quick: bool) {
    use gecko_sim::DeviceBatch;

    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let window_s = if quick { 1.0 } else { 3.0 };
    let iters = if quick { 2 } else { 5 };
    let devices = 8usize;
    let mut table = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for scheme in SchemeKind::all() {
        let compiled = CompiledApp::build(&app, scheme, &CompileOptions::default()).unwrap();
        let sims = |exact: bool| {
            (0..devices as u64)
                .map(|seed| {
                    let mut cfg = SimConfig::harvesting(scheme);
                    cfg.seed = seed;
                    let mut sim = Simulator::from_compiled(&compiled, cfg);
                    if exact {
                        sim.set_exec_mode(ExecMode::Interpreted);
                        sim.set_fast_forward(false);
                        sim.set_event_horizon(false);
                    }
                    sim
                })
                .collect::<Vec<_>>()
        };
        let run_batch = || {
            let mut batch = DeviceBatch::new(sims(false));
            batch.run_for(window_s);
            batch
        };
        let run_exact = || {
            let mut fleet = sims(true);
            for sim in &mut fleet {
                sim.run_for(window_s);
            }
            fleet
        };
        // Correctness first: every batched device must land bit-exactly on
        // its per-instruction reference trajectory.
        let batch = run_batch();
        let exact = run_exact();
        for (i, reference) in exact.iter().enumerate() {
            let dev = batch.device(i);
            assert_eq!(
                dev.metrics, reference.metrics,
                "{scheme}/dev{i}: metrics diverged"
            );
            assert_eq!(
                dev.state_hash(),
                reference.state_hash(),
                "{scheme}/dev{i}: state hash diverged"
            );
        }
        let stats = batch.stats();
        let (steps, dispatches) = batch.devices().iter().fold((0u64, 0u64), |(s, d), sim| {
            let f = sim.fast_path_stats();
            (s + f.steps, d + f.dispatches)
        });
        // Deterministic: simulated steps per scalar dispatch, i.e. how
        // many ops each coalesced plan retires for the price of one.
        let ratio = steps as f64 / dispatches.max(1) as f64;
        worst_ratio = worst_ratio.min(ratio);

        let batch_wall = time_best_of(iters, run_batch);
        let ns_per_op = batch_wall.as_nanos() as f64 / steps.max(1) as f64;
        table.push(vec![
            scheme.name().to_string(),
            steps.to_string(),
            format!("{}", stats.spans),
            format!("{}\u{2030}", stats.occupancy_permille()),
            format!("{ratio:.1}x"),
            format!("{ns_per_op:.1}ns"),
        ]);
        rows.push(BenchRow {
            section: "batch_step".to_string(),
            scheme: scheme.name().to_string(),
            app: format!("bitcnt x{devices}"),
            steps,
            ff_ticks: stats.spans,
            eh_insts: stats.coalesced_steps,
            ratio,
            wall_ms: batch_wall.as_secs_f64() * 1e3,
            rate_per_s: steps as f64 / batch_wall.as_secs_f64(),
        });
    }
    print_table(
        &format!("DeviceBatch lock-step, bitcnt x{devices}, {window_s}s window (best of {iters})"),
        &["scheme", "steps", "spans", "occupancy", "ratio", "ns/op"],
        &table,
    );
    assert!(
        worst_ratio >= 5.0,
        "batched stepping must retire >= 5x steps per scalar dispatch \
         per device (got {worst_ratio:.1}x)"
    );
    println!("ok: DeviceBatch retires >= {worst_ratio:.1}x steps per scalar dispatch");
}

/// Section 2c: the fault seam's fault-free cost. A schedule whose only
/// armed window opens far beyond the simulated horizon forces every span
/// plan through the fault-edge guard (`FaultSchedule::next_edge`) without
/// a single fault ever firing. The trajectory must be bit-identical to a
/// simulator that was never given a schedule, and the wall-clock overhead
/// must stay under 2% (10% in the quick smoke run, where the window is
/// small enough for scheduler noise to dominate).
fn bench_fault_path(rows: &mut Vec<BenchRow>, quick: bool) {
    use gecko_emi::fault::{FaultModel, FaultSchedule, TimedFault};

    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let window_s = if quick { 0.05 } else { 0.2 };
    let iters = if quick { 3 } else { 5 };
    // Armed (DPI P2 at 35 dBm clears the fault power threshold) but
    // opening three orders of magnitude past the simulated window.
    let far_future = FaultSchedule::from_windows(vec![TimedFault {
        start_s: 1_000.0,
        end_s: 1_001.0,
        signal: EmiSignal::new(27e6, 35.0),
        injection: Injection::Dpi(DpiPoint::P2),
        model: FaultModel::Skip,
    }]);
    let scheme = SchemeKind::Gecko;
    let compiled = CompiledApp::build(&app, scheme, &CompileOptions::default()).unwrap();
    let run_plain = || {
        let mut sim = Simulator::from_compiled(&compiled, SimConfig::bench_supply(scheme));
        sim.run_for(window_s);
        sim
    };
    let run_guarded = || {
        let mut sim = Simulator::from_compiled(
            &compiled,
            SimConfig::bench_supply(scheme).with_fault(far_future.clone()),
        );
        sim.run_for(window_s);
        sim
    };
    let plain = run_plain();
    let guarded = run_guarded();
    assert_eq!(
        plain.metrics, guarded.metrics,
        "an unreached fault window must not change the trajectory"
    );
    assert_eq!(plain.state_hash(), guarded.state_hash());
    assert_eq!(guarded.metrics.fault_skips, 0);

    let plain_wall = time_best_of(iters, run_plain);
    let guarded_wall = time_best_of(iters, run_guarded);
    let overhead = guarded_wall.as_secs_f64() / plain_wall.as_secs_f64();
    let steps = plain.fast_path_stats().steps;
    print_table(
        &format!("fault-free fault-path overhead, bitcnt, {window_s}s window (best of {iters})"),
        &["path", "wall", "vs plain"],
        &[
            vec![
                "plain".to_string(),
                format!("{:.1}ms", plain_wall.as_secs_f64() * 1e3),
                "1.00x".to_string(),
            ],
            vec![
                "guarded".to_string(),
                format!("{:.1}ms", guarded_wall.as_secs_f64() * 1e3),
                format!("{overhead:.3}x"),
            ],
        ],
    );
    rows.push(BenchRow {
        section: "fault_path".to_string(),
        scheme: scheme.name().to_string(),
        app: "bitcnt".to_string(),
        steps,
        ff_ticks: 0,
        eh_insts: guarded.fast_path_stats().eh_insts,
        ratio: overhead,
        wall_ms: guarded_wall.as_secs_f64() * 1e3,
        rate_per_s: steps as f64 / guarded_wall.as_secs_f64(),
    });
    let max_overhead = if quick { 1.10 } else { 1.02 };
    assert!(
        overhead < max_overhead,
        "the fault-edge guard must cost < {max_overhead:.2}x on fault-free \
         runs (got {overhead:.3}x)"
    );
}

fn bench_dispatch(rows: &mut Vec<BenchRow>, quick: bool) {
    let app = gecko_apps::app_by_name("crc32").unwrap();
    let iters = if quick { 3 } else { 10 };
    let window_s = 0.01;
    let mut table = Vec::new();
    for scheme in SchemeKind::all() {
        let compiled = CompiledApp::build(&app, scheme, &CompileOptions::default()).unwrap();
        let run = |mode: ExecMode| {
            let compiled = &compiled;
            move || {
                let mut sim = Simulator::from_compiled(compiled, SimConfig::bench_supply(scheme));
                sim.set_exec_mode(mode);
                sim.run_for(window_s);
                sim
            }
        };
        let steps = run(ExecMode::Predecoded)().fast_path_stats().steps;
        let pre_wall = time_best_of(iters, run(ExecMode::Predecoded));
        let int_wall = time_best_of(iters, run(ExecMode::Interpreted));
        let rate = steps as f64 / pre_wall.as_secs_f64();
        let speedup = int_wall.as_secs_f64() / pre_wall.as_secs_f64();
        table.push(vec![
            scheme.name().to_string(),
            format!("{:.1}M/s", rate / 1e6),
            format!("{:.1}M/s", steps as f64 / int_wall.as_secs_f64() / 1e6),
            format!("{speedup:.2}x"),
        ]);
        rows.push(BenchRow {
            section: "dispatch".to_string(),
            scheme: scheme.name().to_string(),
            app: "crc32".to_string(),
            steps,
            ff_ticks: 0,
            eh_insts: 0,
            ratio: speedup,
            wall_ms: pre_wall.as_secs_f64() * 1e3,
            rate_per_s: rate,
        });
    }
    print_table(
        &format!("instruction dispatch, crc32, {window_s}s window (best of {iters})"),
        &["scheme", "predecoded", "interpreted", "speedup"],
        &table,
    );
}

fn bench_campaign(rows: &mut Vec<BenchRow>, quick: bool) {
    let seconds = if quick { 0.05 } else { 0.2 };
    let iters = if quick { 1 } else { 3 };
    let spec = CampaignSpec::new("bench_fast_path")
        .apps(["blink", "crc16"])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .seeds([1, 2, 3])
        .workload(Workload::RunFor { seconds });
    let items = spec.expand().len() as u64;
    let campaign = Campaign::new(spec).workers(workers_from_env());
    let wall = time_best_of(iters, || campaign.run().expect("campaign runs"));
    let rate = items as f64 / wall.as_secs_f64();
    print_table(
        &format!("fleet campaign wall-clock, {items} items x {seconds}s (best of {iters})"),
        &["items", "wall", "items/s"],
        &[vec![
            items.to_string(),
            format!("{:.1}ms", wall.as_secs_f64() * 1e3),
            format!("{rate:.0}/s"),
        ]],
    );
    rows.push(BenchRow {
        section: "campaign".to_string(),
        scheme: "nvp+gecko".to_string(),
        app: "blink+crc16".to_string(),
        steps: items,
        ff_ticks: 0,
        eh_insts: 0,
        ratio: 1.0,
        wall_ms: wall.as_secs_f64() * 1e3,
        rate_per_s: rate,
    });
}

fn bench_campaign_resume(rows: &mut Vec<BenchRow>, quick: bool) {
    use std::sync::Arc;
    let seconds = if quick { 0.05 } else { 0.2 };
    let iters = if quick { 2 } else { 5 };
    let spec = || {
        CampaignSpec::new("bench_resume")
            .apps(["blink", "crc16"])
            .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
            .seeds([1, 2, 3])
            .workload(Workload::RunFor { seconds })
    };
    let items = spec().expand().len() as u64;
    let workers = workers_from_env();

    // Clean path: supervision is always on; the journal is the only delta.
    let plain = Campaign::new(spec()).workers(workers);
    let plain_wall = time_best_of(iters, || plain.run().expect("campaign runs"));
    let journaled_wall = time_best_of(iters, || {
        Campaign::new(spec())
            .workers(workers)
            .journal(Arc::new(Journal::memory()))
            .run()
            .expect("journaled campaign runs")
    });

    // Replay path: resuming from a complete journal re-executes nothing,
    // so it must merge bit-exactly and come back far faster.
    let journal = Arc::new(Journal::memory());
    let reference = Campaign::new(spec())
        .workers(workers)
        .journal(Arc::clone(&journal))
        .run()
        .expect("reference campaign runs");
    let resume_wall = time_best_of(iters, || {
        let resumed = Campaign::new(spec())
            .workers(workers)
            .resume(Arc::clone(&journal))
            .run()
            .expect("resume runs");
        assert_eq!(resumed.counters.resumed, items, "resume must skip all runs");
        assert_eq!(
            resumed.deterministic_digest(),
            reference.deterministic_digest(),
            "resume must merge bit-exactly"
        );
        resumed
    });

    let overhead = journaled_wall.as_secs_f64() / plain_wall.as_secs_f64();
    print_table(
        &format!("campaign resume, {items} items x {seconds}s (best of {iters})"),
        &["path", "wall", "vs plain"],
        &[
            vec![
                "plain".to_string(),
                format!("{:.1}ms", plain_wall.as_secs_f64() * 1e3),
                "1.00x".to_string(),
            ],
            vec![
                "journaled".to_string(),
                format!("{:.1}ms", journaled_wall.as_secs_f64() * 1e3),
                format!("{overhead:.3}x"),
            ],
            vec![
                "resumed".to_string(),
                format!("{:.1}ms", resume_wall.as_secs_f64() * 1e3),
                format!(
                    "{:.3}x",
                    resume_wall.as_secs_f64() / plain_wall.as_secs_f64()
                ),
            ],
        ],
    );
    rows.push(BenchRow {
        section: "campaign_resume".to_string(),
        scheme: "nvp+gecko".to_string(),
        app: "blink+crc16".to_string(),
        steps: items,
        ff_ticks: 0,
        eh_insts: 0,
        ratio: overhead,
        wall_ms: journaled_wall.as_secs_f64() * 1e3,
        rate_per_s: items as f64 / journaled_wall.as_secs_f64(),
    });
    // Quick-mode windows total ~70 ms, where a single millisecond of
    // scheduler noise already exceeds 2%; the smoke run only guards
    // against gross regressions, the full run holds the real bound.
    let max_overhead = if quick { 1.10 } else { 1.02 };
    assert!(
        overhead < max_overhead,
        "clean-path supervision + journaling overhead must stay < \
         {max_overhead:.2}x (got {overhead:.3}x)"
    );
    assert!(
        resume_wall < plain_wall,
        "a full-journal resume must be faster than re-running the campaign"
    );
}

/// Section 7: `gecko-serve` submit→complete overhead. The same quick grid
/// through the daemon (HTTP submit, long-poll, result fetch, journal +
/// telemetry files) vs the direct library call; serving must add < 10%.
fn bench_serve_submit(rows: &mut Vec<BenchRow>, quick: bool) {
    use gecko_fleet::spec_to_json;
    use gecko_fleet::Json;
    use gecko_serve::{http_call, ServeConfig, Server};

    let seconds = if quick { 0.05 } else { 0.2 };
    let iters = if quick { 3 } else { 5 };
    let spec = CampaignSpec::new("bench_serve")
        .apps(["blink", "crc16"])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .seeds([1, 2, 3])
        .workload(Workload::RunFor { seconds });
    let items = spec.expand().len() as u64;
    let workers = workers_from_env();

    let direct = Campaign::new(spec.clone()).workers(workers);
    let reference = direct.run().expect("direct campaign runs");
    let direct_wall = time_best_of(iters, || direct.run().expect("direct campaign runs"));

    let data = std::env::temp_dir().join(format!("gecko-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    let server = Server::start(ServeConfig {
        bind: "127.0.0.1:0".to_string(),
        journal_root: data.clone(),
        ..ServeConfig::default()
    })
    .expect("daemon boots");
    let addr = server.addr().to_string();
    let body = format!("{{\"spec\":{},\"workers\":{workers}}}", spec_to_json(&spec));

    let served_wall = time_best_of(iters, || {
        let resp = http_call(&addr, "POST", "/v1/campaigns", &body).expect("submit");
        assert_eq!(resp.status, 201, "submit failed: {}", resp.body);
        let id = Json::parse(&resp.body)
            .expect("status doc parses")
            .get("id")
            .and_then(Json::as_u64)
            .expect("job id");
        loop {
            let resp =
                http_call(&addr, "GET", &format!("/v1/jobs/{id}?wait_ms=10000"), "").expect("poll");
            let doc = Json::parse(&resp.body).expect("status doc parses");
            match doc.get("state").and_then(Json::as_str) {
                Some("done") => {
                    assert_eq!(
                        doc.get("digest").and_then(Json::as_u64),
                        Some(reference.deterministic_digest()),
                        "served digest diverged from the direct run"
                    );
                    break;
                }
                Some("queued") | Some("running") => {}
                other => panic!("job {id} landed in {other:?}: {}", resp.body),
            }
        }
    });
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data);

    let overhead = served_wall.as_secs_f64() / direct_wall.as_secs_f64();
    print_table(
        &format!("serve submit→complete, {items} items x {seconds}s (best of {iters})"),
        &["path", "wall", "vs direct"],
        &[
            vec![
                "direct".to_string(),
                format!("{:.1}ms", direct_wall.as_secs_f64() * 1e3),
                "1.00x".to_string(),
            ],
            vec![
                "served".to_string(),
                format!("{:.1}ms", served_wall.as_secs_f64() * 1e3),
                format!("{overhead:.3}x"),
            ],
        ],
    );
    rows.push(BenchRow {
        section: "serve_submit".to_string(),
        scheme: "nvp+gecko".to_string(),
        app: "blink+crc16".to_string(),
        steps: items,
        ff_ticks: 0,
        eh_insts: 0,
        ratio: overhead,
        wall_ms: served_wall.as_secs_f64() * 1e3,
        rate_per_s: items as f64 / served_wall.as_secs_f64(),
    });
    assert!(
        overhead < 1.10,
        "serving a campaign must add < 10% over the direct library call \
         (got {overhead:.3}x)"
    );
}

fn bench_checker(rows: &mut Vec<BenchRow>, quick: bool) {
    let app = gecko_apps::app_by_name("crc16").unwrap();
    let cap = if quick { 120 } else { 400 };
    let iters = if quick { 1 } else { 3 };
    let cfg = ExploreConfig::default().with_max_windows(cap);
    let no_ff = ExploreConfig {
        fast_forward: false,
        ..cfg
    };
    let opts = CompileOptions::default();
    let fast = check_app(&app, SchemeKind::Gecko, &opts, &cfg).unwrap();
    let exact = check_app(&app, SchemeKind::Gecko, &opts, &no_ff).unwrap();
    assert_eq!(fast.violations, exact.violations, "checker verdict changed");
    assert_eq!(fast.stats, exact.stats, "checker stats changed");

    let mut table = Vec::new();
    for (label, explore) in [("ff on", &cfg), ("ff off", &no_ff)] {
        let wall = time_best_of(iters, || {
            check_app(&app, SchemeKind::Gecko, &opts, explore).unwrap()
        });
        let rate = fast.stats.windows as f64 / wall.as_secs_f64();
        table.push(vec![
            label.to_string(),
            fast.stats.windows.to_string(),
            format!("{:.1}ms", wall.as_secs_f64() * 1e3),
            format!("{rate:.0}/s"),
        ]);
        rows.push(BenchRow {
            section: "checker".to_string(),
            scheme: "gecko".to_string(),
            app: format!("crc16/{label}"),
            steps: fast.stats.steps,
            ff_ticks: 0,
            eh_insts: 0,
            ratio: 1.0,
            wall_ms: wall.as_secs_f64() * 1e3,
            rate_per_s: rate,
        });
    }
    print_table(
        &format!("checker windows/s, crc16 under GECKO, {cap} windows (best of {iters})"),
        &["fast-forward", "windows", "wall", "windows/s"],
        &table,
    );
}

/// Section 5b: incremental persistent checking — the same campaign run
/// cold (fresh [`gecko_check::MemoStore`]) and warm (store reopened from
/// disk). The headline is *deterministic*: windows the cold run explored
/// over windows the warm run had to re-explore, derived from the
/// memo-window counters rather than wall time, so the `>= 5x` floor
/// cannot flake on a loaded box. Wall ns/window is printed for scale.
/// Digest equality against the store-free reference is asserted on every
/// run — incremental checking must be invisible to the verdicts.
fn bench_incremental_check(rows: &mut Vec<BenchRow>, quick: bool) {
    use gecko_check::{war_counter_app, CheckCampaign, CheckSpec, MemoStore};
    use std::sync::Arc;
    use std::time::Instant;

    let cap = if quick { 60 } else { 200 };
    let spec = || {
        CheckSpec::new("bench_incremental")
            .apps([war_counter_app(6)])
            .app_names(&["crc16"])
            .expect("crc16 is bundled")
            .schemes([SchemeKind::Gecko])
            .explore(ExploreConfig::default().with_max_windows(cap))
            .chunk_windows(32)
    };
    let reference = CheckCampaign::new(spec()).run().expect("reference runs");

    let dir = std::env::temp_dir().join(format!("gecko-bench-incr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cold_started = Instant::now();
    let cold = CheckCampaign::new(spec())
        .memo(Arc::new(MemoStore::open(&dir).expect("store opens")))
        .run()
        .expect("cold run");
    let cold_wall = cold_started.elapsed();
    let warm_started = Instant::now();
    let warm = CheckCampaign::new(spec())
        .memo(Arc::new(MemoStore::open(&dir).expect("store reopens")))
        .run()
        .expect("warm run");
    let warm_wall = warm_started.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        cold.deterministic_digest(),
        reference.deterministic_digest(),
        "attaching a memo store must not change the report"
    );
    assert_eq!(
        warm.deterministic_digest(),
        reference.deterministic_digest(),
        "a warm re-check must certify the identical report"
    );
    assert_eq!(cold.counters.memo_windows, 0, "cold means cold");

    let windows = warm.totals.windows;
    let memo = warm.counters.memo_windows;
    assert!(
        memo * 10 >= windows * 9,
        "warm re-checks must answer >= 90% of windows from the persisted \
         memo (got {memo}/{windows})"
    );
    // Deterministic warm-over-cold work ratio: every window costs an
    // exploration cold; warm only re-explores the non-memoized remainder.
    let ratio = windows as f64 / (windows - memo).max(1) as f64;

    print_table(
        &format!("incremental check, warcount+crc16 under GECKO, {windows} windows"),
        &["path", "explored", "memo", "wall", "ns/window"],
        &[
            vec![
                "cold".to_string(),
                windows.to_string(),
                "0".to_string(),
                format!("{:.1}ms", cold_wall.as_secs_f64() * 1e3),
                format!("{:.0}", cold_wall.as_nanos() as f64 / windows.max(1) as f64),
            ],
            vec![
                "warm".to_string(),
                (windows - memo).to_string(),
                memo.to_string(),
                format!("{:.1}ms", warm_wall.as_secs_f64() * 1e3),
                format!("{:.0}", warm_wall.as_nanos() as f64 / windows.max(1) as f64),
            ],
        ],
    );
    rows.push(BenchRow {
        section: "incremental_check".to_string(),
        scheme: "gecko".to_string(),
        app: "warcount+crc16".to_string(),
        steps: windows,
        ff_ticks: memo,
        eh_insts: 0,
        ratio,
        wall_ms: warm_wall.as_secs_f64() * 1e3,
        rate_per_s: windows as f64 / warm_wall.as_secs_f64().max(1e-9),
    });
    assert!(
        ratio >= 5.0,
        "warm re-checks must do >= 5x less exploration work than cold \
         (got {ratio:.1}x: {memo}/{windows} memo-answered)"
    );
    println!("ok: warm re-check does {ratio:.0}x less exploration work than cold");
}

/// Section 8: `gecko-store` prune tick — full compaction of a campaign
/// journal appended twice over (so half the records are superseded),
/// fsync-and-rename rewrites included. The bound is per *line scanned*,
/// deliberately loose: it guards against gross regressions (accidental
/// per-line fsync, quadratic classify), not cache noise.
fn bench_prune_tick(rows: &mut Vec<BenchRow>, quick: bool) {
    use gecko_store::{LogCompactor, LogConfig, Pruner, SegmentedLog};
    use std::sync::Arc;

    let iters = if quick { 2 } else { 5 };
    let seconds = if quick { 0.01 } else { 0.02 };
    let spec = CampaignSpec::new("bench_prune")
        .apps(["blink"])
        .schemes([SchemeKind::Gecko])
        .seeds([1, 2, 3, 4])
        .workload(Workload::RunFor { seconds });
    let cfg = LogConfig {
        max_segment_bytes: 2048,
    };
    let root = std::env::temp_dir().join(format!("gecko-bench-prune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Journal one campaign; every measured tick then compacts a fresh
    // segmented log holding those lines twice.
    let journal =
        Journal::open_segmented(&root.join("seed").join("journal"), cfg).expect("journal opens");
    Campaign::new(spec)
        .workers(workers_from_env())
        .journal(Arc::new(journal))
        .run()
        .expect("campaign runs");
    let lines =
        Journal::open_segmented(&root.join("seed").join("journal"), cfg).expect("journal reopens");
    let lines = lines.lines();
    let total_lines = (lines.len() * 2) as u64;

    let mut round = 0u32;
    let wall = time_best_of(iters, || {
        round += 1;
        let dir = root.join(format!("tick-{round}"));
        let log = Arc::new(SegmentedLog::open(&dir.join("journal"), cfg).expect("log opens"));
        for line in lines.iter().chain(lines.iter()) {
            log.append(line);
        }
        log.seal().expect("seal");
        let mut pruner = Pruner::open(&dir.join("prune.json"), 0).expect("pruner opens");
        pruner.add(LogCompactor::new(
            "campaign",
            Arc::clone(&log),
            gecko_fleet::classify_campaign_lines,
        ));
        let report = pruner.tick().expect("tick");
        assert!(report.done, "unlimited budget must finish in one tick");
        assert!(report.pruned > 0, "duplicated journal must compact");
    });
    let _ = std::fs::remove_dir_all(&root);

    let ns_per_line = wall.as_nanos() as f64 / total_lines.max(1) as f64;
    let rate = total_lines as f64 / wall.as_secs_f64();
    print_table(
        &format!("store prune tick, {total_lines} journal lines (best of {iters})"),
        &["lines", "wall", "ns/line", "lines/s"],
        &[vec![
            total_lines.to_string(),
            format!("{:.1}ms", wall.as_secs_f64() * 1e3),
            format!("{ns_per_line:.0}"),
            format!("{rate:.0}/s"),
        ]],
    );
    rows.push(BenchRow {
        section: "prune_tick".to_string(),
        scheme: "campaign".to_string(),
        app: "journal".to_string(),
        steps: total_lines,
        ff_ticks: 0,
        eh_insts: 0,
        ratio: 1.0,
        wall_ms: wall.as_secs_f64() * 1e3,
        rate_per_s: rate,
    });
    const MAX_NS_PER_LINE: f64 = 2_000_000.0; // 2 ms/line, fsyncs included
    assert!(
        ns_per_line < MAX_NS_PER_LINE,
        "prune tick cost {ns_per_line:.0} ns/line, bound is {MAX_NS_PER_LINE:.0}"
    );
}

fn main() {
    let quick = std::env::var_os("GECKO_QUICK").is_some();
    let mut rows = Vec::new();
    bench_fast_forward(&mut rows, quick);
    bench_event_horizon(&mut rows, quick);
    bench_batch_step(&mut rows, quick);
    bench_fault_path(&mut rows, quick);
    bench_dispatch(&mut rows, quick);
    bench_campaign(&mut rows, quick);
    bench_campaign_resume(&mut rows, quick);
    bench_serve_submit(&mut rows, quick);
    bench_prune_tick(&mut rows, quick);
    bench_checker(&mut rows, quick);
    bench_incremental_check(&mut rows, quick);
    save_rows("BENCH_sim", &rows);
    let summary: Vec<SummaryRow> = rows
        .iter()
        .map(|r| SummaryRow {
            name: format!("{}/{}/{}", r.section, r.scheme, r.app),
            ns_per_op: r.wall_ms * 1e6 / r.steps.max(1) as f64,
            ratio: r.ratio,
        })
        .collect();
    save_json_summary("BENCH_sim", &summary);
}
