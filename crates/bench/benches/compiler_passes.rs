//! Criterion micro-benchmarks of the GECKO compiler passes themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecko_compiler::{compile, compile_ratchet, CompileOptions};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for app in gecko_apps::all_apps() {
        group.bench_with_input(BenchmarkId::new("gecko", app.name), &app, |b, app| {
            let opts = CompileOptions::default();
            b.iter(|| compile(&app.program, &opts).unwrap());
        });
    }
    let fft = gecko_apps::app_by_name("fft").unwrap();
    group.bench_function("ratchet/fft", |b| {
        b.iter(|| compile_ratchet(&fft.program).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
