//! Micro-benchmarks of the GECKO compiler passes themselves (best-of-N
//! wall-clock timing; no external harness).

use gecko_bench::{print_table, time_best_of};
use gecko_compiler::{compile, compile_ratchet, CompileOptions};

fn main() {
    let iters = 20;
    let mut table = Vec::new();
    let opts = CompileOptions::default();
    for app in gecko_apps::all_apps() {
        let best = time_best_of(iters, || compile(&app.program, &opts).unwrap());
        table.push(vec![
            format!("gecko/{}", app.name),
            format!("{:.1}us", best.as_nanos() as f64 / 1e3),
        ]);
    }
    let fft = gecko_apps::app_by_name("fft").unwrap();
    let best = time_best_of(iters, || compile_ratchet(&fft.program).unwrap());
    table.push(vec![
        "ratchet/fft".to_string(),
        format!("{:.1}us", best.as_nanos() as f64 / 1e3),
    ]);
    print_table(
        &format!("compiler passes (best of {iters})"),
        &["pass/app", "time"],
        &table,
    );
}
