//! Extension studies beyond the paper's figures: the filter countermeasure
//! (Section V-A1's claim), NVM wear, and the WCET-budget / recovery-fuel
//! ablations of DESIGN.md.

use gecko_bench::{fidelity_from_env, pct, print_table, save_rows};
use gecko_sim::experiments::extras;

fn main() {
    let fidelity = fidelity_from_env();

    let filt = extras::filter_defense(fidelity);
    save_rows("extras_filter", &filt);
    let table = filt
        .iter()
        .map(|r| {
            vec![
                if r.taps == 0 {
                    "none".into()
                } else {
                    format!("{} taps", r.taps)
                },
                if r.freq_hz == 0.0 {
                    "quiet".into()
                } else {
                    format!("{:.1} MHz", r.freq_hz / 1e6)
                },
                pct(r.rate),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Extra: median-filter countermeasure (Section V-A1's claim)",
        &["filter", "attack", "R"],
        &table,
    );

    let wear = extras::wear(fidelity);
    save_rows("extras_wear", &wear);
    let table = wear
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.0}", r.nvm_writes_per_run),
                format!("{:.0}", r.checkpoint_stores_per_run),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Extra: NVM wear — writes per completed crc32 run",
        &["scheme", "NVM writes/run", "ckpt stores/run"],
        &table,
    );

    let budget = extras::wcet_budget_ablation(fidelity);
    save_rows("extras_budget", &budget);
    let table = budget
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.budget_cycles),
                r.regions.to_string(),
                r.checkpoints.to_string(),
                format!("{:.2}x", r.overhead),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Extra: WCET budget ablation (all apps; overhead on crc32)",
        &["budget (cycles)", "regions", "checkpoints", "overhead"],
        &table,
    );

    let fuel = extras::slice_fuel_ablation(fidelity);
    save_rows("extras_fuel", &fuel);
    let table = fuel
        .iter()
        .map(|r| {
            vec![
                r.max_slice_insts.to_string(),
                r.pruned.to_string(),
                r.recovery_insts.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Extra: recovery-block fuel ablation (all apps)",
        &["max slice insts", "pruned stores", "recovery insts"],
        &table,
    );
}
