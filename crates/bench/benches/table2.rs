//! Prints Table II: comparison of prior EMI countermeasures with GECKO.

use gecko_bench::{print_table, save_rows};
use gecko_sim::experiments::table2;

fn main() {
    let rows = table2::rows();
    save_rows("table2", &rows);
    let yn = |b: bool| if b { "Yes" } else { "No" }.to_string();
    let table = rows
        .iter()
        .map(|r| {
            vec![
                r.work.to_string(),
                r.target.to_string(),
                format!("{:?}", r.approach),
                if r.energy_efficient { "High" } else { "Low" }.to_string(),
                yn(r.power_failure_recovery),
                if r.intermittent_applicable {
                    "Applicable"
                } else {
                    "N/A"
                }
                .to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Table II: prior EMI mitigations vs GECKO",
        &[
            "Work",
            "Target",
            "HW/SW",
            "Energy Eff.",
            "PF Recovery",
            "Intermittent",
        ],
        &table,
    );
}
