//! Regenerates Figure 13: attack detection and recovery timelines.

use gecko_bench::{fidelity_from_env, print_table, save_rows, workers_from_env};
use gecko_sim::experiments::fig13;

fn main() {
    let rows = gecko_fleet::figures::fig13(fidelity_from_env(), workers_from_env())
        .expect("fig13 campaign");
    save_rows("fig13", &rows);
    for (label, _) in fig13::scenarios() {
        let mut table = Vec::new();
        let times: Vec<f64> = {
            let mut v: Vec<f64> = rows
                .iter()
                .filter(|r| r.scenario == label && r.scheme == "GECKO")
                .map(|r| r.t_min)
                .collect();
            v.dedup();
            v
        };
        for t in times {
            let get = |s: &str| {
                rows.iter()
                    .find(|r| r.scenario == label && r.scheme == s && (r.t_min - t).abs() < 1e-9)
                    .map(|r| format!("{:.0}%", r.throughput_pct))
                    .unwrap_or_default()
            };
            let attacked = rows
                .iter()
                .find(|r| r.scenario == label && (r.t_min - t).abs() < 1e-9)
                .map(|r| r.under_attack)
                .unwrap_or(false);
            table.push(vec![
                format!("{t:.0} min"),
                if attacked { "ATTACK" } else { "" }.to_string(),
                get("NVP"),
                get("Ratchet"),
                get("GECKO"),
            ]);
        }
        print_table(
            &format!("Fig. 13({label}): throughput timeline"),
            &["t", "", "NVP", "Ratchet", "GECKO"],
            &table,
        );
    }
}
