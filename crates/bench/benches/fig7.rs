//! Regenerates Figure 7: remote attacks on comparator-based monitors.

use gecko_bench::{fidelity_from_env, mhz, pct, print_table, save_rows};
use gecko_sim::experiments::fig7;

fn main() {
    let rows = fig7::rows(fidelity_from_env());
    save_rows("fig7", &rows);
    let devices: std::collections::BTreeSet<_> = rows.iter().map(|r| r.device.clone()).collect();
    for d in &devices {
        let table = rows
            .iter()
            .filter(|r| &r.device == d)
            .map(|r| vec![mhz(r.freq_hz), pct(r.rate)])
            .collect::<Vec<_>>();
        print_table(
            &format!("Fig. 7 ({d}, comparator monitor): forward progress vs frequency"),
            &["freq", "R"],
            &table,
        );
    }
}
