//! Criterion micro-benchmark of the co-simulator's instruction throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gecko_sim::{SchemeKind, SimConfig, Simulator};

fn bench_sim(c: &mut Criterion) {
    let app = gecko_apps::app_by_name("crc32").unwrap();
    let mut group = c.benchmark_group("simulate");
    // 10 ms of device time at 16 MHz ≈ 160k cycles per iteration.
    group.throughput(Throughput::Elements(160_000));
    for scheme in SchemeKind::all() {
        group.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || Simulator::new(&app, SimConfig::bench_supply(scheme)).unwrap(),
                |mut sim| sim.run_for(0.01),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
