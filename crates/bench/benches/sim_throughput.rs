//! Micro-benchmark of the co-simulator's instruction throughput (best-of-N
//! wall-clock timing; no external harness), comparing the default
//! predecoded dispatch against the interpreted reference path.

use gecko_bench::{print_table, time_best_of};
use gecko_sim::{ExecMode, SchemeKind, SimConfig, Simulator};

fn main() {
    let app = gecko_apps::app_by_name("crc32").unwrap();
    let iters = 10;
    // 10 ms of device time at 16 MHz ≈ 160k cycles per iteration.
    let cycles = 160_000.0;
    let mut table = Vec::new();
    for scheme in SchemeKind::all() {
        let run = |mode: ExecMode| {
            let app = &app;
            move || {
                let mut sim = Simulator::new(app, SimConfig::bench_supply(scheme)).unwrap();
                sim.set_exec_mode(mode);
                sim.run_for(0.01)
            }
        };
        let pre = time_best_of(iters, run(ExecMode::Predecoded));
        let int = time_best_of(iters, run(ExecMode::Interpreted));
        let mcps = cycles / pre.as_secs_f64() / 1e6;
        table.push(vec![
            scheme.name().to_string(),
            format!("{:.2}ms", pre.as_secs_f64() * 1e3),
            format!("{:.2}ms", int.as_secs_f64() * 1e3),
            format!("{mcps:.0} Mcycles/s"),
            format!("{:.2}x", int.as_secs_f64() / pre.as_secs_f64()),
        ]);
    }
    print_table(
        &format!("simulator throughput (best of {iters}, includes compile)"),
        &[
            "scheme",
            "predecoded",
            "interpreted",
            "throughput",
            "speedup",
        ],
        &table,
    );
}
