//! Micro-benchmark of the co-simulator's instruction throughput (best-of-N
//! wall-clock timing; no external harness).

use gecko_bench::{print_table, time_best_of};
use gecko_sim::{SchemeKind, SimConfig, Simulator};

fn main() {
    let app = gecko_apps::app_by_name("crc32").unwrap();
    let iters = 10;
    // 10 ms of device time at 16 MHz ≈ 160k cycles per iteration.
    let cycles = 160_000.0;
    let mut table = Vec::new();
    for scheme in SchemeKind::all() {
        let best = time_best_of(iters, || {
            let mut sim = Simulator::new(&app, SimConfig::bench_supply(scheme)).unwrap();
            sim.run_for(0.01)
        });
        let mcps = cycles / best.as_secs_f64() / 1e6;
        table.push(vec![
            scheme.name().to_string(),
            format!("{:.2}ms", best.as_secs_f64() * 1e3),
            format!("{mcps:.0} Mcycles/s"),
        ]);
    }
    print_table(
        &format!("simulator throughput (best of {iters}, includes compile)"),
        &["scheme", "time/10ms-window", "throughput"],
        &table,
    );
}
