//! Regenerates Table I: per-board EMI attack summary.

use gecko_bench::{fidelity_from_env, mhz, pct, print_table, save_rows};
use gecko_sim::experiments::table1;

fn main() {
    let rows = table1::rows(fidelity_from_env());
    save_rows("table1", &rows);
    let table = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.monitors.clone(),
                format!("{} / {}", pct(r.adc_r_min), mhz(r.adc_r_min_freq_hz)),
                match (r.comp_r_min, r.comp_r_min_freq_hz) {
                    (Some(c), Some(f)) => format!("{} / {}", pct(c), mhz(f)),
                    _ => "N/A".to_string(),
                },
                format!("{} / {}", pct(r.adc_f_max), mhz(r.adc_f_max_freq_hz)),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Table I: EMI attack results on real-world energy-harvesting MCUs",
        &[
            "Model",
            "Monitor",
            "ADC-Rmin/Freq",
            "Comp-Rmin/Freq",
            "ADC-Fmax/Freq",
        ],
        &table,
    );
}
