//! Regenerates Figure 9: real-time attack traces on the MSP430FR5994.

use gecko_bench::{fidelity_from_env, pct, print_table, save_rows};
use gecko_sim::experiments::fig9;

fn main() {
    let rows = fig9::rows(fidelity_from_env());
    save_rows("fig9", &rows);
    for monitor in ["ADC", "Comparator"] {
        let table = rows
            .iter()
            .filter(|r| r.monitor == monitor)
            .map(|r| {
                vec![
                    format!("{:.2} s", r.t_s),
                    if r.attack_freq_hz == 0.0 {
                        "-".to_string()
                    } else {
                        format!("{:.1} MHz", r.attack_freq_hz / 1e6)
                    },
                    pct(r.rate),
                ]
            })
            .collect::<Vec<_>>();
        print_table(
            &format!("Fig. 9 ({monitor} monitor): real-time attacker control"),
            &["t", "attack", "R"],
            &table,
        );
    }
}
