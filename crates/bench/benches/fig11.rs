//! Regenerates Figure 11: normalized execution time (no power outages).

use gecko_bench::{fidelity_from_env, print_table, save_rows, workers_from_env};
use gecko_sim::experiments::fig11;

fn main() {
    let rows = gecko_fleet::figures::fig11(fidelity_from_env(), workers_from_env())
        .expect("fig11 campaign");
    save_rows("fig11", &rows);
    let apps: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.app.clone()).collect();
        v.dedup();
        v
    };
    let mut table = Vec::new();
    for app in &apps {
        let get = |s: &str| {
            rows.iter()
                .find(|r| &r.app == app && r.scheme == s)
                .map(|r| format!("{:.2}x", r.normalized))
                .unwrap_or_default()
        };
        table.push(vec![
            app.clone(),
            get("NVP"),
            get("Ratchet"),
            get("GECKO w/o pruning"),
            get("GECKO"),
        ]);
    }
    for (scheme, g) in fig11::summary(&rows) {
        table.push(vec![
            format!("geomean {scheme}"),
            String::new(),
            String::new(),
            String::new(),
            format!("{g:.3}x"),
        ]);
    }
    print_table(
        "Fig. 11: normalized execution time (baseline NVP = 1.0)",
        &["app", "NVP", "Ratchet", "GECKO w/o prune", "GECKO"],
        &table,
    );
}
