//! Micro-benchmark of the model checker's snapshot-fork exploration
//! against the naive cold-restart sweep it replaces.
//!
//! Both sides enumerate the same failure windows of the same compiled app
//! and inject the same faults (a power failure and a spoofed checkpoint
//! per window). The cold baseline pays the textbook O(n²): a fresh
//! simulator per fork, re-executing the whole prefix before every
//! injection, and re-running every recovery with no memoization. The
//! checker walks the golden trace once, forks each window via
//! `Simulator::snapshot`/`restore`, and memoizes re-converged recoveries.
//!
//! The headline ratio is *deterministic* — simulated device steps, not
//! wall-clock — so the `>= 5x` assertion cannot flake on a loaded CI box;
//! best-of-N wall-clock times are printed alongside for scale. The
//! assertion is pinned to Ratchet, where failures inside a region
//! re-converge to the boundary state and memoization collapses almost the
//! whole sweep; GECKO's pruned checkpoints leave more distinct
//! post-recovery states, so its ratio is honest but smaller.

use gecko_bench::{print_table, time_best_of};
use gecko_check::{check_compiled, ExploreConfig};
use gecko_compiler::CompileOptions;
use gecko_sim::device::CompiledApp;
use gecko_sim::{SchemeKind, SimConfig, Simulator};

/// The cold-restart baseline: per window, a fresh simulator re-executes
/// the prefix from reset, the fault is injected, and the run is driven to
/// its first completion. Returns (simulated steps, violations).
fn cold_restart_sweep(compiled: &CompiledApp, windows: u64, budget: u64) -> (u64, u64) {
    let mut steps = 0u64;
    let mut violations = 0u64;
    for window in 0..windows {
        // Two forks per window, mirroring the checker's primary kinds.
        for spoof in [false, true] {
            let mut sim =
                Simulator::from_compiled(compiled, SimConfig::bench_supply(compiled.scheme));
            for _ in 0..window {
                sim.step_one();
            }
            steps += window;
            if spoof {
                sim.inject_spoofed_checkpoint();
            } else {
                sim.inject_power_failure();
            }
            let mut spent = 0u64;
            while sim.metrics.completions < 1 && spent < budget {
                sim.step_one();
                spent += 1;
            }
            steps += spent;
            let corrupt =
                sim.nvm().read(compiled.app.checksum_addr) != compiled.app.expected_checksum;
            if sim.metrics.completions < 1 || corrupt {
                violations += 1;
            }
        }
    }
    (steps, violations)
}

fn main() {
    let quick = std::env::var_os("GECKO_QUICK").is_some();
    let cap = if quick { 150 } else { 600 };
    let iters = if quick { 2 } else { 3 };
    let app = gecko_apps::app_by_name("crc16").unwrap();

    let mut table = Vec::new();
    let mut ratchet_ratio = 0.0;
    for scheme in [SchemeKind::Ratchet, SchemeKind::Gecko] {
        let compiled = CompiledApp::build(&app, scheme, &CompileOptions::default()).unwrap();
        let explore = ExploreConfig {
            max_windows: Some(cap),
            ..ExploreConfig::default()
        };

        let report = check_compiled(&compiled, &explore).expect("checker runs");
        assert!(
            report.is_clean(),
            "{}: {:?}",
            scheme,
            report.violations.first()
        );
        // Fork cost: exploration steps plus the single golden-trace walk.
        let fork_steps = report.stats.steps + report.stats.windows;
        let budget = 4 * report.golden_steps + 100_000;

        let (cold_steps, cold_violations) =
            cold_restart_sweep(&compiled, report.stats.windows, budget);
        assert_eq!(cold_violations, 0, "{scheme}: baseline agrees: clean");

        let fork_wall = time_best_of(iters, || check_compiled(&compiled, &explore).unwrap());
        let cold_wall = time_best_of(iters, || {
            cold_restart_sweep(&compiled, report.stats.windows, budget)
        });

        let ratio = cold_steps as f64 / fork_steps as f64;
        if scheme == SchemeKind::Ratchet {
            ratchet_ratio = ratio;
        }
        table.push(vec![
            scheme.name().to_string(),
            report.stats.windows.to_string(),
            fork_steps.to_string(),
            cold_steps.to_string(),
            format!("{ratio:.1}x"),
            format!("{:.1}ms", fork_wall.as_secs_f64() * 1e3),
            format!("{:.1}ms", cold_wall.as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        &format!("snapshot-fork vs cold-restart, crc16, {cap} windows (best of {iters})"),
        &[
            "scheme",
            "windows",
            "fork steps",
            "cold steps",
            "speedup",
            "fork wall",
            "cold wall",
        ],
        &table,
    );
    assert!(
        ratchet_ratio >= 5.0,
        "snapshot-fork must beat cold restart by >= 5x (got {ratchet_ratio:.1}x)"
    );
    println!("ok: snapshot-fork is {ratchet_ratio:.1}x cheaper than cold restart");
}
