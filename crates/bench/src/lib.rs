//! # gecko-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! paper's evaluation. Each `benches/` target (plain `harness = false`
//! binaries, so `cargo bench` runs them) calls the corresponding
//! `gecko_sim::experiments` entry point, prints a paper-style table, and
//! persists the raw rows as JSON under `target/gecko-results/`.
//!
//! Two genuine Criterion micro-benchmarks (`compiler_passes`,
//! `sim_throughput`) measure the harness itself.
//!
//! Set `GECKO_QUICK=1` to run the reduced sweeps used by the test suite.

use std::fs;
use std::path::PathBuf;

use gecko_sim::experiments::Fidelity;

/// The fidelity selected by the environment (`GECKO_QUICK=1` → `Quick`).
pub fn fidelity_from_env() -> Fidelity {
    if std::env::var_os("GECKO_QUICK").is_some() {
        Fidelity::Quick
    } else {
        Fidelity::Full
    }
}

/// Directory where bench targets persist their JSON rows.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/gecko-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serializes `rows` as pretty JSON into `target/gecko-results/<name>.json`.
pub fn save_json<T: serde::Serialize>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(rows) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Renders a fixed-width table: a header row and data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a rate as a percentage with adaptive precision (tiny comparator
/// rates keep their significant digits, like Table I's `10⁻²%`).
pub fn pct(rate: f64) -> String {
    let p = rate * 100.0;
    if p != 0.0 && p.abs() < 0.1 {
        format!("{p:.0e}%")
    } else {
        format!("{p:.1}%")
    }
}

/// Formats a frequency in MHz.
pub fn mhz(freq_hz: f64) -> String {
    format!("{:.0}MHz", freq_hz / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_adapts_precision() {
        assert_eq!(pct(0.41), "41.0%");
        assert_eq!(pct(0.0001), "1e-2%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn mhz_formats() {
        assert_eq!(mhz(27e6), "27MHz");
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("gecko-results"));
    }
}
