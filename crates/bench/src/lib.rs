//! # gecko-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! paper's evaluation. Each `benches/` target (plain `harness = false`
//! binaries, so `cargo bench` runs them) computes the corresponding rows —
//! the heavyweight sweeps (fig4, fig5, fig8, fig11, fig13) through the
//! `gecko-fleet` campaign engine, the rest through the sequential
//! `gecko_sim::experiments` entry points — prints a paper-style table, and
//! persists the raw rows as JSON-lines under `target/gecko-results/`
//! through the fleet telemetry pipeline.
//!
//! Two micro-benchmark binaries (`compiler_passes`, `sim_throughput`)
//! measure the harness itself with a dependency-free best-of-N timer.
//!
//! Environment knobs: `GECKO_QUICK=1` runs the reduced sweeps used by the
//! test suite; `GECKO_WORKERS=N` overrides the campaign worker-pool size
//! (default: all available cores).

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use gecko_sim::experiments::Fidelity;
use gecko_sim::Record;

/// The fidelity selected by the environment (`GECKO_QUICK=1` → `Quick`).
pub fn fidelity_from_env() -> Fidelity {
    if std::env::var_os("GECKO_QUICK").is_some() {
        Fidelity::Quick
    } else {
        Fidelity::Full
    }
}

/// Campaign worker-pool size: `GECKO_WORKERS` if set, else all cores.
pub fn workers_from_env() -> usize {
    std::env::var("GECKO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Directory where bench targets persist their JSON rows — anchored at the
/// workspace root's `target/gecko-results` regardless of the working
/// directory cargo launches the bench binary in (package root, not
/// workspace root, so a relative path would scatter results).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
        .join("target/gecko-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Persists rows as `target/gecko-results/<name>.jsonl` through the fleet
/// telemetry pipeline (one JSON object per line).
pub fn save_rows<R: Record>(name: &str, rows: &[R]) {
    match gecko_fleet::persist_records(&results_dir(), name, rows) {
        Ok(path) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {name}.jsonl: {e}"),
    }
}

/// One machine-readable row of a bench summary (`BENCH_sim.json`): the
/// compact artifact the CI bench-smoke step publishes. The JSONL telemetry
/// written by [`save_rows`] remains the full per-section log.
pub struct SummaryRow {
    /// Row name, `section/scheme/workload`.
    pub name: String,
    /// Best-of-N wall time per simulated step (nanoseconds).
    pub ns_per_op: f64,
    /// The ratio the section reports: coalescing factor for the fast-path
    /// sections, speedup or overhead factor elsewhere.
    pub ratio: f64,
}

/// The current `git` commit (short hash), or `"unknown"` outside a
/// repository — stamped into bench summaries so a JSON artifact is
/// attributable without its CI context.
pub fn git_commit_short() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Writes `target/gecko-results/<name>.json`: one JSON object holding the
/// current commit hash and an array of [`SummaryRow`]s. Hand-rolled — the
/// workspace is serde-free by design.
pub fn save_json_summary(name: &str, rows: &[SummaryRow]) {
    let mut body = String::new();
    body.push_str("{\n  \"commit\": \"");
    body.push_str(&json_escape(&git_commit_short()));
    body.push_str("\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"ratio\": {}}}{}\n",
            json_escape(&row.name),
            json_num(row.ns_per_op),
            json_num(row.ratio),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    let path = results_dir().join(format!("{name}.json"));
    match fs::write(&path, body) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {name}.json: {e}"),
    }
}

/// Times `f` with `iters` measured iterations after one warm-up call and
/// reports the best per-iteration time — the dependency-free stand-in for
/// a statistical micro-benchmark harness (min-of-N is robust to scheduler
/// noise for CPU-bound closures).
pub fn time_best_of<T>(iters: u32, mut f: impl FnMut() -> T) -> std::time::Duration {
    assert!(iters > 0);
    std::hint::black_box(f());
    let mut best = std::time::Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

/// Renders a fixed-width table: a header row and data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a rate as a percentage with adaptive precision (tiny comparator
/// rates keep their significant digits, like Table I's `10⁻²%`).
pub fn pct(rate: f64) -> String {
    let p = rate * 100.0;
    if p != 0.0 && p.abs() < 0.1 {
        format!("{p:.0e}%")
    } else {
        format!("{p:.1}%")
    }
}

/// Formats a frequency in MHz.
pub fn mhz(freq_hz: f64) -> String {
    format!("{:.0}MHz", freq_hz / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_adapts_precision() {
        assert_eq!(pct(0.41), "41.0%");
        assert_eq!(pct(0.0001), "1e-2%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn mhz_formats() {
        assert_eq!(mhz(27e6), "27MHz");
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("gecko-results"));
    }

    #[test]
    fn workers_default_is_positive() {
        assert!(workers_from_env() >= 1);
    }

    #[test]
    fn json_summary_is_well_formed() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert!(!git_commit_short().is_empty());
        save_json_summary(
            "BENCH_selftest",
            &[SummaryRow {
                name: "section/scheme".to_string(),
                ns_per_op: 12.5,
                ratio: 3.0,
            }],
        );
        let text = fs::read_to_string(results_dir().join("BENCH_selftest.json")).unwrap();
        assert!(text.contains("\"commit\": \""), "{text}");
        assert!(
            text.contains("{\"name\": \"section/scheme\", \"ns_per_op\": 12.5, \"ratio\": 3}"),
            "{text}"
        );
    }

    #[test]
    fn timer_returns_nonzero() {
        let d = time_best_of(3, || (0..1000u64).sum::<u64>());
        assert!(d.as_nanos() > 0);
    }
}
