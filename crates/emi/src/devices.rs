//! Susceptibility models of the nine commodity boards evaluated in Table I.
//!
//! Peak placements come straight from the paper: the MSP430 family resonates
//! near 27 MHz at the ADC input, the STM32L552 near 17–18 MHz, and the two
//! comparator-equipped boards (FR5994, FR6989) have dramatically more
//! sensitive comparator paths (5/6 MHz and 27 MHz respectively). Relative
//! peak gains are tuned so the *ordering* of minimum forward-progress rates
//! in Table I emerges from simulation; absolute percentages are not chased.

use crate::attack::{EmiSignal, Injection};
use crate::monitor::MonitorKind;
use crate::susceptibility::{ResonancePeak, SusceptibilityProfile};

/// A board model: which monitors it has and how susceptible each is.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    name: &'static str,
    adc_profile: SusceptibilityProfile,
    comp_profile: Option<SusceptibilityProfile>,
}

impl DeviceModel {
    /// Creates a device model.
    pub fn new(
        name: &'static str,
        adc_profile: SusceptibilityProfile,
        comp_profile: Option<SusceptibilityProfile>,
    ) -> DeviceModel {
        DeviceModel {
            name,
            adc_profile,
            comp_profile,
        }
    }

    /// The board's marketing name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether the board has a comparator-based monitor option.
    pub fn has_comparator(&self) -> bool {
        self.comp_profile.is_some()
    }

    /// The susceptibility profile of the requested monitor kind. Returns
    /// `None` for [`MonitorKind::Comparator`] on boards without one.
    pub fn profile(&self, kind: MonitorKind) -> Option<&SusceptibilityProfile> {
        match kind {
            MonitorKind::Adc => Some(&self.adc_profile),
            MonitorKind::Comparator => self.comp_profile.as_ref(),
        }
    }

    /// Peak disturbance amplitude (V) induced at the monitor input by
    /// `signal` injected via `injection`. Zero when the board lacks the
    /// requested monitor.
    pub fn induced_amplitude_v(
        &self,
        kind: MonitorKind,
        signal: &EmiSignal,
        injection: Injection,
    ) -> f64 {
        let Some(profile) = self.profile(kind) else {
            return 0.0;
        };
        // The broadband (P2) path still passes the monitor input's
        // parasitic low-pass, so it shares the high-frequency roll-off.
        let coupling = profile.coupling_gain(signal.freq_hz)
            + injection.broadband_bonus() * profile.hf_attenuation(signal.freq_hz);
        signal.amplitude_v() * injection.path_gain(signal.freq_hz) * coupling
    }

    /// The most effective attack frequency against the given monitor within
    /// `lo_hz..=hi_hz` (scanned at `step_hz`), or `None` when the board
    /// lacks that monitor.
    pub fn worst_frequency(
        &self,
        kind: MonitorKind,
        lo_hz: f64,
        hi_hz: f64,
        step_hz: f64,
    ) -> Option<(f64, f64)> {
        self.profile(kind)
            .map(|p| p.worst_frequency(lo_hz, hi_hz, step_hz))
    }
}

const HF_CUTOFF: f64 = 50e6;

fn adc_profile(peaks: Vec<ResonancePeak>) -> SusceptibilityProfile {
    SusceptibilityProfile::new(peaks, 0.0015, HF_CUTOFF)
}

/// TI MSP430FR2311 (ADC monitor; resonant at 27 MHz).
pub fn msp430fr2311() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP430FR2311",
        adc_profile(vec![ResonancePeak::new(27e6, 2.2e6, 1.9)]),
        None,
    )
}

/// TI MSP430FR2433 (ADC monitor; resonant at 27 MHz).
pub fn msp430fr2433() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP430FR2433",
        adc_profile(vec![ResonancePeak::new(27e6, 2.0e6, 1.5)]),
        None,
    )
}

/// TI MSP430FR4133 (ADC monitor; resonant at 27–28 MHz).
pub fn msp430fr4133() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP430FR4133",
        adc_profile(vec![
            ResonancePeak::new(27e6, 2.0e6, 1.7),
            ResonancePeak::new(28e6, 1.2e6, 1.1),
        ]),
        None,
    )
}

/// TI MSP430F5529 (ADC monitor; DoS peak at 27 MHz, checkpoint-failure peak
/// at 16 MHz per Table I).
pub fn msp430f5529() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP430F5529",
        adc_profile(vec![
            ResonancePeak::new(27e6, 2.0e6, 1.6),
            ResonancePeak::new(16e6, 1.5e6, 0.9),
        ]),
        None,
    )
}

/// TI MSP430FR5739 (ADC monitor; the most DoS-susceptible board in Table I).
pub fn msp430fr5739() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP430FR5739",
        adc_profile(vec![ResonancePeak::new(27e6, 2.6e6, 2.6)]),
        None,
    )
}

/// TI MSP430FR5994 — the paper's main evaluation board. ADC resonant at
/// 27 MHz; its comparator path is catastrophically sensitive at 5–6 MHz
/// (Comp-R_min ≈ 10⁻²%).
pub fn msp430fr5994() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP430FR5994",
        adc_profile(vec![ResonancePeak::new(27e6, 2.0e6, 1.6)]),
        Some(SusceptibilityProfile::new(
            vec![
                ResonancePeak::new(5e6, 0.8e6, 4.5),
                ResonancePeak::new(6e6, 0.8e6, 4.5),
            ],
            0.002,
            HF_CUTOFF,
        )),
    )
}

/// TI MSP430FR6989 (ADC + comparator, both resonant near 27 MHz).
pub fn msp430fr6989() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP430FR6989",
        adc_profile(vec![ResonancePeak::new(27e6, 2.0e6, 1.7)]),
        Some(SusceptibilityProfile::new(
            vec![ResonancePeak::new(27e6, 1.5e6, 4.0)],
            0.002,
            HF_CUTOFF,
        )),
    )
}

/// TI MSP432P401R (Cortex-M4; ADC monitor vulnerable, comparator not
/// exploitable in Table I).
pub fn msp432p() -> DeviceModel {
    DeviceModel::new(
        "TI-MSP432P (cortex-m4)",
        adc_profile(vec![ResonancePeak::new(27e6, 2.1e6, 1.8)]),
        None,
    )
}

/// STM32L552ZE (Cortex-M33; resonant at 17–18 MHz instead of 27 MHz).
pub fn stm32l552ze() -> DeviceModel {
    DeviceModel::new(
        "STM32L552ZE (cortex-m33)",
        adc_profile(vec![
            ResonancePeak::new(17e6, 1.8e6, 1.4),
            ResonancePeak::new(18e6, 1.2e6, 1.0),
        ]),
        None,
    )
}

/// All nine boards of Table I, in table order.
pub fn all_devices() -> Vec<DeviceModel> {
    vec![
        msp430fr2311(),
        msp430fr2433(),
        msp430fr4133(),
        msp430f5529(),
        msp430fr5739(),
        msp430fr5994(),
        msp430fr6989(),
        msp432p(),
        stm32l552ze(),
    ]
}

/// Resolves a Table-I board by its marketing name (exact match, as
/// reported by [`DeviceModel::name`]). The seam wire-format decoders use:
/// network clients name boards; only in-tree code constructs custom
/// [`DeviceModel`]s.
pub fn device_by_name(name: &str) -> Option<DeviceModel> {
    all_devices().into_iter().find(|d| d.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::DpiPoint;

    #[test]
    fn devices_resolve_by_name() {
        for dev in all_devices() {
            assert_eq!(device_by_name(dev.name()), Some(dev.clone()));
        }
        assert_eq!(device_by_name("bogus-board"), None);
    }

    #[test]
    fn nine_boards() {
        let all = all_devices();
        assert_eq!(all.len(), 9);
        let names: Vec<_> = all.iter().map(|d| d.name()).collect();
        assert!(names.contains(&"TI-MSP430FR5994"));
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    #[test]
    fn comparator_presence_matches_table1() {
        assert!(msp430fr5994().has_comparator());
        assert!(msp430fr6989().has_comparator());
        assert!(!msp430fr2311().has_comparator());
        assert!(!stm32l552ze().has_comparator());
    }

    #[test]
    fn msp430s_resonate_at_27mhz_stm32_lower() {
        for dev in all_devices() {
            let (f, g) = dev
                .worst_frequency(MonitorKind::Adc, 5e6, 60e6, 0.25e6)
                .unwrap();
            assert!(g > 1.0, "{}: peak gain {g}", dev.name());
            if dev.name().contains("STM32") {
                assert!((f - 17e6).abs() < 1.5e6, "{}: {f}", dev.name());
            } else {
                assert!((f - 27e6).abs() < 1.5e6, "{}: {f}", dev.name());
            }
        }
    }

    #[test]
    fn fr5994_comparator_far_more_sensitive_than_adc() {
        let dev = msp430fr5994();
        let sig = EmiSignal::new(5e6, 35.0);
        let inj = Injection::Remote { distance_m: 5.0 };
        let comp = dev.induced_amplitude_v(MonitorKind::Comparator, &sig, inj);
        let adc = dev.induced_amplitude_v(MonitorKind::Adc, &sig, inj);
        assert!(comp > 20.0 * adc, "comp {comp} vs adc {adc}");
    }

    #[test]
    fn resonant_remote_attack_is_effective_at_5m() {
        let dev = msp430fr5994();
        let sig = EmiSignal::new(27e6, 35.0);
        let amp = dev.induced_amplitude_v(
            MonitorKind::Adc,
            &sig,
            Injection::Remote { distance_m: 5.0 },
        );
        // Must exceed the ~1.1 V margin between V_max and V_backup to
        // trigger false checkpoints.
        assert!(amp > 1.1, "induced {amp} V");
    }

    #[test]
    fn off_resonance_remote_attack_is_harmless() {
        let dev = msp430fr5994();
        for f in [5e6, 100e6, 400e6] {
            let sig = EmiSignal::new(f, 35.0);
            let amp = dev.induced_amplitude_v(
                MonitorKind::Adc,
                &sig,
                Injection::Remote { distance_m: 5.0 },
            );
            assert!(amp < 0.3, "{f} Hz induced {amp} V");
        }
    }

    #[test]
    fn p2_broader_than_p1() {
        // At an off-resonance frequency, P2's broadband coupling still
        // disturbs the monitor while P1 does not (Figure 4's observation).
        let dev = msp430fr2311();
        let sig = EmiSignal::new(10e6, 20.0);
        let p1 = dev.induced_amplitude_v(MonitorKind::Adc, &sig, Injection::Dpi(DpiPoint::P1));
        let p2 = dev.induced_amplitude_v(MonitorKind::Adc, &sig, Injection::Dpi(DpiPoint::P2));
        assert!(p2 > 3.0 * p1, "p2 {p2} vs p1 {p1}");
    }

    #[test]
    fn missing_comparator_yields_zero_amplitude() {
        let dev = msp430fr2311();
        let sig = EmiSignal::new(27e6, 35.0);
        let amp = dev.induced_amplitude_v(
            MonitorKind::Comparator,
            &sig,
            Injection::Remote { distance_m: 1.0 },
        );
        assert_eq!(amp, 0.0);
    }
}
