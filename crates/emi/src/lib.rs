//! # gecko-emi
//!
//! The attack half of the GECKO paper: voltage monitors (the vulnerable
//! component), per-device EMI susceptibility profiles, and the attacker
//! model (single-tone signals injected directly — DPI — or radiated from a
//! distance).
//!
//! The chain mirrors Figure 2 of the paper: an attack signal of some
//! frequency and power couples into the voltage-monitor input with a gain
//! set by the device's resonance profile; the disturbance superimposes on
//! the true supply voltage; the ADC or comparator digitizes the corrupted
//! waveform; and the checkpoint / wake-up logic downstream acts on the lie.
//!
//! ```
//! use gecko_emi::{AdcMonitor, EmiSignal, Injection, devices};
//!
//! let dev = devices::msp430fr5994();
//! let sig = EmiSignal::new(27e6, 35.0); // the vulnerable frequency
//! let inj = Injection::Remote { distance_m: 5.0 };
//! let amp = dev.induced_amplitude_v(gecko_emi::MonitorKind::Adc, &sig, inj);
//! assert!(amp > 0.5, "at resonance the disturbance is large: {amp} V");
//!
//! let mut adc = AdcMonitor::default();
//! let reading = adc.read(3.3, amp, 0.001);
//! assert!(reading != 3.3, "the monitor no longer sees the true voltage");
//! ```

pub mod attack;
pub mod devices;
pub mod fault;
pub mod monitor;
pub mod susceptibility;

pub use attack::{AttackSchedule, EmiSignal, Injection, TimedAttack};
pub use devices::DeviceModel;
pub use fault::{FaultModel, FaultSchedule, TimedFault, FAULT_POWER_THRESHOLD_W};
pub use monitor::{AdcMonitor, ComparatorMonitor, FilteredAdcMonitor, MonitorKind};
pub use susceptibility::{ResonancePeak, SusceptibilityProfile};
