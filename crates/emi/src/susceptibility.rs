//! EMI susceptibility profiles: how strongly a given attack frequency
//! couples into a device's voltage-monitor input.
//!
//! Low-power boards lack input filtering, so coupling is dominated by a few
//! resonances of the monitor's input network (PCB traces, the external
//! capacitor wiring, the ADC sample capacitor). We model the coupling gain
//! as a sum of Lorentzian peaks with a high-frequency roll-off — the paper
//! observed that frequencies above ~50 MHz caused no problems on any board
//! (Section IV-A2), which the roll-off reproduces.

/// One resonance of the monitor input network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResonancePeak {
    /// Center frequency (Hz).
    pub center_hz: f64,
    /// Half-width at half-maximum (Hz). Smaller = sharper resonance.
    pub half_width_hz: f64,
    /// Voltage coupling gain at the center (dimensionless: volts induced at
    /// the monitor input per volt of incident signal amplitude).
    pub gain: f64,
}

impl ResonancePeak {
    /// Creates a peak.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(center_hz: f64, half_width_hz: f64, gain: f64) -> ResonancePeak {
        assert!(
            center_hz > 0.0 && half_width_hz > 0.0 && gain > 0.0,
            "resonance parameters must be positive"
        );
        ResonancePeak {
            center_hz,
            half_width_hz,
            gain,
        }
    }

    /// Lorentzian response of this peak at `freq_hz`.
    pub fn response(&self, freq_hz: f64) -> f64 {
        let x = (freq_hz - self.center_hz) / self.half_width_hz;
        self.gain / (1.0 + x * x)
    }
}

/// A device's full susceptibility curve: resonance peaks on a small broadband
/// floor, attenuated above a cutoff (package shielding + parasitic low-pass).
#[derive(Debug, Clone, PartialEq)]
pub struct SusceptibilityProfile {
    peaks: Vec<ResonancePeak>,
    /// Broadband (off-resonance) coupling gain.
    floor: f64,
    /// Above this frequency the response rolls off steeply.
    hf_cutoff_hz: f64,
}

impl SusceptibilityProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `floor < 0` or `hf_cutoff_hz <= 0`.
    pub fn new(peaks: Vec<ResonancePeak>, floor: f64, hf_cutoff_hz: f64) -> SusceptibilityProfile {
        assert!(floor >= 0.0, "floor must be non-negative");
        assert!(hf_cutoff_hz > 0.0, "cutoff must be positive");
        SusceptibilityProfile {
            peaks,
            floor,
            hf_cutoff_hz,
        }
    }

    /// A profile that couples nothing at any frequency (a shielded or
    /// monitor-less input — what GECKO effectively creates by disabling the
    /// JIT protocol's use of the monitor).
    pub fn immune() -> SusceptibilityProfile {
        SusceptibilityProfile {
            peaks: Vec::new(),
            floor: 0.0,
            hf_cutoff_hz: 1.0,
        }
    }

    /// The resonance peaks.
    pub fn peaks(&self) -> &[ResonancePeak] {
        &self.peaks
    }

    /// Coupling gain (volts at the monitor input per volt of incident
    /// amplitude) at `freq_hz`.
    pub fn coupling_gain(&self, freq_hz: f64) -> f64 {
        if freq_hz <= 0.0 {
            return 0.0;
        }
        let raw: f64 = self.floor + self.peaks.iter().map(|p| p.response(freq_hz)).sum::<f64>();
        // Second-order roll-off above the cutoff.
        let r = freq_hz / self.hf_cutoff_hz;
        raw / (1.0 + r * r * r * r)
    }

    /// High-frequency attenuation factor at `freq_hz` (1 at DC, rolling
    /// off fourth-order above the cutoff) — applied to *any* path into the
    /// monitor, including direct injection.
    pub fn hf_attenuation(&self, freq_hz: f64) -> f64 {
        if freq_hz <= 0.0 {
            return 0.0;
        }
        let r = freq_hz / self.hf_cutoff_hz;
        1.0 / (1.0 + r * r * r * r)
    }

    /// The frequency with the highest coupling gain over `lo_hz..=hi_hz`,
    /// scanned at `step_hz` granularity. Returns `(freq_hz, gain)`.
    pub fn worst_frequency(&self, lo_hz: f64, hi_hz: f64, step_hz: f64) -> (f64, f64) {
        assert!(lo_hz > 0.0 && hi_hz >= lo_hz && step_hz > 0.0);
        let mut best = (lo_hz, self.coupling_gain(lo_hz));
        let mut f = lo_hz;
        while f <= hi_hz {
            let g = self.coupling_gain(f);
            if g > best.1 {
                best = (f, g);
            }
            f += step_hz;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> SusceptibilityProfile {
        SusceptibilityProfile::new(vec![ResonancePeak::new(27e6, 2e6, 1.5)], 0.002, 50e6)
    }

    #[test]
    fn peak_response_is_lorentzian() {
        let p = ResonancePeak::new(27e6, 2e6, 1.0);
        assert!((p.response(27e6) - 1.0).abs() < 1e-12);
        assert!((p.response(29e6) - 0.5).abs() < 1e-12, "half at half-width");
        assert!(p.response(100e6) < 0.01);
    }

    #[test]
    fn resonance_dominates() {
        let s = profile();
        let at_res = s.coupling_gain(27e6);
        let off_res = s.coupling_gain(5e6);
        assert!(at_res > 50.0 * off_res, "{at_res} vs {off_res}");
    }

    #[test]
    fn high_frequencies_are_harmless() {
        let s = profile();
        // Paper: above ~50 MHz no board misbehaved.
        assert!(s.coupling_gain(200e6) < 0.01);
        assert!(s.coupling_gain(1e9) < 1e-3);
    }

    #[test]
    fn immune_profile_couples_nothing() {
        let s = SusceptibilityProfile::immune();
        for f in [1e6, 27e6, 500e6] {
            assert_eq!(s.coupling_gain(f), 0.0);
        }
    }

    #[test]
    fn worst_frequency_finds_peak() {
        let s = profile();
        let (f, g) = s.worst_frequency(1e6, 100e6, 0.5e6);
        assert!((f - 27e6).abs() < 1e6, "found {f}");
        assert!(g > 1.0);
    }

    #[test]
    fn zero_and_negative_frequency_couple_nothing() {
        let s = profile();
        assert_eq!(s.coupling_gain(0.0), 0.0);
        assert_eq!(s.coupling_gain(-5.0), 0.0);
    }
}
