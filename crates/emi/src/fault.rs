//! EM instruction-fault injection: the Moro-style fault dimension.
//!
//! A sufficiently powerful EM pulse coupled into the MCU core (rather than
//! the voltage monitor) corrupts instruction fetch/decode: the
//! characterized effects on a 32-bit microcontroller are *instruction
//! skip* (the fetched instruction is replaced by an effective no-op),
//! *opcode corruption* (the instruction decodes as a different operation)
//! and *operand corruption* (a bit of the datapath flips). This module
//! models the attacker side: which fault a pulse induces, and when — gated
//! on the same power/coupling physics ([`Injection::path_gain`]) as the
//! monitor attacks, so a remote emitter that is too weak or too far away
//! arms nothing.

use crate::attack::{EmiSignal, Injection};

/// Minimum *effective* power (W, after path gain) a pulse needs to flip
/// core state. Monitor spoofing works at milliwatt effective levels; fault
/// injection needs near-field or high-power coupling — the Moro et al.
/// platform drove a dedicated injection probe. 0.5 W puts DPI and
/// close-range high-power emitters above the bar and distant ones below.
pub const FAULT_POWER_THRESHOLD_W: f64 = 0.5;

/// Which instruction-level effect an armed fault window induces on every
/// instruction retired inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// The fetched instruction executes as a no-op: no architectural
    /// effect, conditional branches fall through. (Moro et al.'s dominant
    /// observed fault.)
    Skip,
    /// The instruction decodes as a different operation: its written
    /// result is complemented and conditional branches invert.
    OpcodeCorrupt,
    /// One bit of the instruction's data operand flips.
    OperandBitflip {
        /// Which bit of the 32-bit written value flips (0..32).
        bit: u8,
    },
}

impl FaultModel {
    /// Stable lowercase name for wire formats and labels.
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::Skip => "skip",
            FaultModel::OpcodeCorrupt => "opcode-corrupt",
            FaultModel::OperandBitflip { .. } => "operand-bitflip",
        }
    }
}

/// A fault-injection pulse active over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFault {
    /// Window start (s, inclusive).
    pub start_s: f64,
    /// Window end (s, exclusive).
    pub end_s: f64,
    /// The emitted pulse carrier.
    pub signal: EmiSignal,
    /// The coupling path.
    pub injection: Injection,
    /// The induced instruction-level effect.
    pub model: FaultModel,
}

impl TimedFault {
    /// Whether the window covers `t_s`.
    pub fn active_at(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }

    /// Effective power at the victim core (W): transmit power times the
    /// squared amplitude path gain of the coupling path.
    pub fn effective_power_w(&self) -> f64 {
        let gain = self.injection.path_gain(self.signal.freq_hz);
        self.signal.power_w() * gain * gain
    }

    /// Whether the pulse is strong enough to induce faults at all
    /// ([`FAULT_POWER_THRESHOLD_W`]). A disarmed window is physically
    /// present but has no architectural effect.
    pub fn is_armed(&self) -> bool {
        self.effective_power_w() >= FAULT_POWER_THRESHOLD_W
    }
}

/// A sequence of timed fault pulses, the instruction-fault analogue of
/// [`crate::AttackSchedule`]. Disarmed windows (below the power threshold)
/// are kept in the schedule for reporting but never fire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    faults: Vec<TimedFault>,
}

impl FaultSchedule {
    /// No faults, ever.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// A single armed-or-not pulse active for the whole simulation.
    pub fn continuous(signal: EmiSignal, injection: Injection, model: FaultModel) -> FaultSchedule {
        FaultSchedule {
            faults: vec![TimedFault {
                start_s: 0.0,
                end_s: f64::INFINITY,
                signal,
                injection,
                model,
            }],
        }
    }

    /// Builds a schedule from explicit windows.
    pub fn from_windows(faults: Vec<TimedFault>) -> FaultSchedule {
        FaultSchedule { faults }
    }

    /// Convenience: the same pulse fired in several `[start, start+dur)`
    /// windows.
    pub fn bursts(
        signal: EmiSignal,
        injection: Injection,
        model: FaultModel,
        starts_s: &[f64],
        duration_s: f64,
    ) -> FaultSchedule {
        FaultSchedule {
            faults: starts_s
                .iter()
                .map(|&start_s| TimedFault {
                    start_s,
                    end_s: start_s + duration_s,
                    signal,
                    injection,
                    model,
                })
                .collect(),
        }
    }

    /// The fault model induced at `t_s`, if an *armed* window covers it
    /// (first armed match wins).
    pub fn active_at(&self, t_s: f64) -> Option<FaultModel> {
        self.faults
            .iter()
            .find(|f| f.is_armed() && f.active_at(t_s))
            .map(|f| f.model)
    }

    /// Whether the schedule can ever induce a fault — i.e. holds no
    /// *armed* window. Disarmed windows don't count: a schedule of
    /// below-threshold pulses is behaviorally identical to
    /// [`FaultSchedule::none`], and the simulator's fast paths rely on
    /// that equivalence.
    pub fn is_empty(&self) -> bool {
        !self.faults.iter().any(TimedFault::is_armed)
    }

    /// The next armed-window edge — an armed window opening *or* closing —
    /// strictly after `t_s`, or `f64::INFINITY` when no armed edge
    /// remains. Between consecutive armed edges
    /// [`active_at`](FaultSchedule::active_at) is constant, which is what
    /// lets the event-horizon coalescer run fault-free spans at full
    /// speed right up to a window boundary.
    pub fn next_edge(&self, t_s: f64) -> f64 {
        let mut edge = f64::INFINITY;
        for f in self.faults.iter().filter(|f| f.is_armed()) {
            if f.start_s > t_s {
                edge = edge.min(f.start_s);
            }
            if f.end_s > t_s {
                edge = edge.min(f.end_s);
            }
        }
        edge
    }

    /// The scheduled windows, armed or not.
    pub fn windows(&self) -> &[TimedFault] {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::DpiPoint;

    fn strong() -> (EmiSignal, Injection) {
        // 35 dBm ≈ 3.16 W at unity gain: armed.
        (EmiSignal::new(27e6, 35.0), Injection::Dpi(DpiPoint::P2))
    }

    #[test]
    fn arming_follows_path_gain_physics() {
        let sig = EmiSignal::new(27e6, 35.0);
        let window = |injection| TimedFault {
            start_s: 0.0,
            end_s: 1.0,
            signal: sig,
            injection,
            model: FaultModel::Skip,
        };
        assert!(window(Injection::Dpi(DpiPoint::P2)).is_armed());
        // P1's 0.35 amplitude gain squares to ~0.12: 3.16 W → ~0.39 W.
        assert!(!window(Injection::Dpi(DpiPoint::P1)).is_armed());
        // λ(27 MHz) ≈ 11.1 m: at 1 m the path gain caps near 0.88, armed;
        // at 10 m it drops to ~0.088 and the pulse is far too weak.
        assert!(window(Injection::Remote { distance_m: 1.0 }).is_armed());
        assert!(!window(Injection::Remote { distance_m: 10.0 }).is_armed());
        // Low transmit power disarms even perfect coupling.
        let weak = TimedFault {
            signal: EmiSignal::new(27e6, 20.0),
            ..window(Injection::Dpi(DpiPoint::P2))
        };
        assert!(!weak.is_armed());
    }

    #[test]
    fn disarmed_windows_never_fire() {
        let sig = EmiSignal::new(27e6, 35.0);
        let far = Injection::Remote { distance_m: 10.0 };
        let sched = FaultSchedule::bursts(sig, far, FaultModel::Skip, &[1.0], 1.0);
        assert!(sched.is_empty(), "disarmed schedule counts as empty");
        assert_eq!(sched.active_at(1.5), None);
        assert_eq!(sched.next_edge(0.0), f64::INFINITY);
        assert_eq!(sched.windows().len(), 1, "window still reported");
    }

    #[test]
    fn armed_schedule_fires_inside_windows() {
        let (sig, inj) = strong();
        let model = FaultModel::OperandBitflip { bit: 3 };
        let sched = FaultSchedule::bursts(sig, inj, model, &[60.0, 300.0], 30.0);
        assert!(!sched.is_empty());
        assert_eq!(sched.active_at(0.0), None);
        assert_eq!(sched.active_at(65.0), Some(model));
        assert_eq!(sched.active_at(90.0), None, "window is half-open");
        assert_eq!(sched.active_at(315.0), Some(model));
    }

    #[test]
    fn next_edge_sees_armed_openings_and_closings() {
        let (sig, inj) = strong();
        let sched = FaultSchedule::bursts(sig, inj, FaultModel::Skip, &[60.0, 300.0], 30.0);
        assert_eq!(sched.next_edge(0.0), 60.0);
        assert_eq!(sched.next_edge(60.0), 90.0, "strictly after: the close");
        assert_eq!(sched.next_edge(65.0), 90.0);
        assert_eq!(sched.next_edge(90.0), 300.0);
        assert_eq!(sched.next_edge(330.0), f64::INFINITY);
        assert_eq!(FaultSchedule::none().next_edge(0.0), f64::INFINITY);
    }

    #[test]
    fn continuous_and_names() {
        let (sig, inj) = strong();
        let sched = FaultSchedule::continuous(sig, inj, FaultModel::OpcodeCorrupt);
        assert_eq!(sched.active_at(1e9), Some(FaultModel::OpcodeCorrupt));
        assert_eq!(FaultModel::Skip.name(), "skip");
        assert_eq!(FaultModel::OpcodeCorrupt.name(), "opcode-corrupt");
        assert_eq!(
            FaultModel::OperandBitflip { bit: 0 }.name(),
            "operand-bitflip"
        );
        assert!(FaultSchedule::none().is_empty());
    }
}
