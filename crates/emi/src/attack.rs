//! The attacker: single-tone EMI signals, injection methods and schedules.

use std::fmt;

/// A single-tone sine-wave EMI attack signal, as swept in Section IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmiSignal {
    /// Carrier frequency (Hz).
    pub freq_hz: f64,
    /// Transmit power (dBm). The paper's emitters stay below 35 dBm.
    pub power_dbm: f64,
}

impl EmiSignal {
    /// Creates a signal.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz <= 0`.
    pub fn new(freq_hz: f64, power_dbm: f64) -> EmiSignal {
        assert!(freq_hz > 0.0, "frequency must be positive");
        EmiSignal { freq_hz, power_dbm }
    }

    /// Transmit power in watts.
    pub fn power_w(&self) -> f64 {
        10f64.powf((self.power_dbm - 30.0) / 10.0)
    }

    /// Peak voltage amplitude of the signal into a 50 Ω system:
    /// `V = sqrt(2·P·Z)`.
    pub fn amplitude_v(&self) -> f64 {
        (2.0 * self.power_w() * 50.0).sqrt()
    }

    /// Free-space wavelength (m).
    pub fn wavelength_m(&self) -> f64 {
        299_792_458.0 / self.freq_hz
    }
}

impl fmt::Display for EmiSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} MHz @ {:.0} dBm",
            self.freq_hz / 1e6,
            self.power_dbm
        )
    }
}

/// The two direct-power-injection points of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DpiPoint {
    /// Injection into the power line upstream of the capacitor.
    P1,
    /// Injection at the monitor side — "P2 signals can affect the
    /// ADC/Comparator more directly" and over a broader frequency range
    /// (Section IV-A2).
    P2,
}

/// How the attack signal reaches the victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// Direct power injection through a coupling circuit (Figure 3). No
    /// path loss; `P2` additionally couples broadband.
    Dpi(DpiPoint),
    /// Radiated attack from an antenna `distance_m` away; amplitude is
    /// attenuated by free-space path loss.
    Remote {
        /// Antenna-to-victim distance in meters. Clamped to ≥ 0.1 m.
        distance_m: f64,
    },
}

impl Injection {
    /// Amplitude path gain from the emitter to the victim board for a tone
    /// at `freq_hz`.
    pub fn path_gain(&self, freq_hz: f64) -> f64 {
        match *self {
            Injection::Dpi(DpiPoint::P1) => 0.35,
            Injection::Dpi(DpiPoint::P2) => 1.0,
            Injection::Remote { distance_m } => {
                let d = distance_m.max(0.1);
                let lambda = 299_792_458.0 / freq_hz;
                // Free-space amplitude attenuation λ/(4πd), capped at 1.
                (lambda / (4.0 * std::f64::consts::PI * d)).min(1.0)
            }
        }
    }

    /// Broadband coupling added on top of the device's resonance profile.
    /// Only the P2 injection point exhibits it (it drives the monitor input
    /// directly, bypassing the input network selectivity).
    pub fn broadband_bonus(&self) -> f64 {
        match self {
            Injection::Dpi(DpiPoint::P2) => 0.4,
            _ => 0.0,
        }
    }
}

/// An attack active over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedAttack {
    /// Window start (s, inclusive).
    pub start_s: f64,
    /// Window end (s, exclusive).
    pub end_s: f64,
    /// The emitted signal.
    pub signal: EmiSignal,
    /// The injection method.
    pub injection: Injection,
}

impl TimedAttack {
    /// Whether the attack is active at `t_s`.
    pub fn active_at(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }
}

/// A sequence of timed attacks — the "attack scenarios" of Figure 13.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackSchedule {
    attacks: Vec<TimedAttack>,
}

impl AttackSchedule {
    /// No attack, ever.
    pub fn none() -> AttackSchedule {
        AttackSchedule::default()
    }

    /// A single attack active for the whole simulation.
    pub fn continuous(signal: EmiSignal, injection: Injection) -> AttackSchedule {
        AttackSchedule {
            attacks: vec![TimedAttack {
                start_s: 0.0,
                end_s: f64::INFINITY,
                signal,
                injection,
            }],
        }
    }

    /// Builds a schedule from explicit windows.
    pub fn from_windows(attacks: Vec<TimedAttack>) -> AttackSchedule {
        AttackSchedule { attacks }
    }

    /// Convenience: the same signal fired in several `[start, start+dur)`
    /// windows — how Figure 13's multi-burst scenarios are expressed.
    pub fn bursts(
        signal: EmiSignal,
        injection: Injection,
        starts_s: &[f64],
        duration_s: f64,
    ) -> AttackSchedule {
        AttackSchedule {
            attacks: starts_s
                .iter()
                .map(|&start_s| TimedAttack {
                    start_s,
                    end_s: start_s + duration_s,
                    signal,
                    injection,
                })
                .collect(),
        }
    }

    /// The attack active at `t_s`, if any (first match wins).
    pub fn active_at(&self, t_s: f64) -> Option<&TimedAttack> {
        self.attacks.iter().find(|a| a.active_at(t_s))
    }

    /// Whether the schedule contains no attacks at all.
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// If no attack is active at `t_s`, returns the time the next attack
    /// window opens (`f64::INFINITY` when none ever will); returns `None`
    /// when an attack is active right now.
    ///
    /// The simulator's hibernation fast-forward uses this to bound a span
    /// of sleep ticks it may coalesce: within `[t_s, horizon)` the
    /// disturbance amplitude is identically zero, so skipping the per-tick
    /// monitor evaluation cannot change any reading.
    pub fn quiet_horizon(&self, t_s: f64) -> Option<f64> {
        if self.active_at(t_s).is_some() {
            return None;
        }
        let mut horizon = f64::INFINITY;
        for a in &self.attacks {
            if a.start_s > t_s {
                horizon = horizon.min(a.start_s);
            }
        }
        Some(horizon)
    }

    /// The next attack-window edge — a window opening *or* closing —
    /// strictly after `t_s`, or `f64::INFINITY` when the schedule holds
    /// no further edges.
    ///
    /// Between consecutive edges the set of active windows cannot change,
    /// so [`active_at`](AttackSchedule::active_at) (and with it the
    /// disturbance amplitude seen by every monitor) is constant over
    /// `[t_s, next_edge)`. The simulator's event-horizon stepping uses
    /// this as the attack component of a coalesced segment's horizon.
    pub fn next_edge(&self, t_s: f64) -> f64 {
        let mut edge = f64::INFINITY;
        for a in &self.attacks {
            if a.start_s > t_s {
                edge = edge.min(a.start_s);
            }
            if a.end_s > t_s {
                edge = edge.min(a.end_s);
            }
        }
        edge
    }

    /// The scheduled attack windows.
    pub fn windows(&self) -> &[TimedAttack] {
        &self.attacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_conversions() {
        let s = EmiSignal::new(27e6, 30.0);
        assert!((s.power_w() - 1.0).abs() < 1e-12, "30 dBm = 1 W");
        assert!(
            (s.amplitude_v() - 10.0).abs() < 1e-9,
            "1 W into 50 Ω = 10 V pk"
        );
        let weak = EmiSignal::new(27e6, 0.0);
        assert!((weak.power_w() - 1e-3).abs() < 1e-15, "0 dBm = 1 mW");
    }

    #[test]
    fn remote_path_loss_decreases_with_distance_and_frequency() {
        let near = Injection::Remote { distance_m: 1.0 };
        let far = Injection::Remote { distance_m: 5.0 };
        assert!(near.path_gain(27e6) > far.path_gain(27e6));
        assert!(
            far.path_gain(27e6) > far.path_gain(270e6),
            "higher f, more loss"
        );
        // Distance clamp prevents gain blow-up at 0 m.
        let zero = Injection::Remote { distance_m: 0.0 };
        assert!(zero.path_gain(27e6) <= 1.0);
    }

    #[test]
    fn dpi_stronger_than_remote() {
        let p2 = Injection::Dpi(DpiPoint::P2);
        let remote = Injection::Remote { distance_m: 5.0 };
        assert!(p2.path_gain(27e6) > remote.path_gain(27e6));
        assert!(p2.broadband_bonus() > 0.0);
        assert_eq!(Injection::Dpi(DpiPoint::P1).broadband_bonus(), 0.0);
    }

    #[test]
    fn quiet_horizon_bounds_coalescing() {
        let sig = EmiSignal::new(27e6, 35.0);
        let inj = Injection::Remote { distance_m: 5.0 };
        let sched = AttackSchedule::bursts(sig, inj, &[60.0, 300.0], 30.0);
        assert_eq!(sched.quiet_horizon(0.0), Some(60.0));
        assert_eq!(sched.quiet_horizon(65.0), None, "inside a window");
        assert_eq!(sched.quiet_horizon(100.0), Some(300.0));
        assert_eq!(sched.quiet_horizon(400.0), Some(f64::INFINITY));
        assert_eq!(
            AttackSchedule::none().quiet_horizon(1.0),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn next_edge_sees_openings_and_closings() {
        let sig = EmiSignal::new(27e6, 35.0);
        let inj = Injection::Remote { distance_m: 5.0 };
        let sched = AttackSchedule::bursts(sig, inj, &[60.0, 300.0], 30.0);
        assert_eq!(sched.next_edge(0.0), 60.0, "first opening");
        assert_eq!(sched.next_edge(60.0), 90.0, "strictly after: the close");
        assert_eq!(sched.next_edge(65.0), 90.0, "closing edge mid-window");
        assert_eq!(sched.next_edge(90.0), 300.0);
        assert_eq!(sched.next_edge(330.0), f64::INFINITY);
        assert_eq!(AttackSchedule::none().next_edge(0.0), f64::INFINITY);
    }

    #[test]
    fn schedule_windows() {
        let sig = EmiSignal::new(27e6, 35.0);
        let inj = Injection::Remote { distance_m: 5.0 };
        let sched = AttackSchedule::bursts(sig, inj, &[60.0, 300.0], 30.0);
        assert!(sched.active_at(0.0).is_none());
        assert!(sched.active_at(65.0).is_some());
        assert!(sched.active_at(90.0).is_none(), "window is half-open");
        assert!(sched.active_at(315.0).is_some());
        assert_eq!(sched.windows().len(), 2);
        assert!(AttackSchedule::none().is_empty());
        assert!(AttackSchedule::continuous(sig, inj)
            .active_at(1e9)
            .is_some());
    }
}
