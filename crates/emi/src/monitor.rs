//! Voltage monitors: the ADC-based and comparator-based power-loss
//! detectors of Section II-C.
//!
//! Both monitors observe `v_true + disturbance(t)` — the supply voltage with
//! any EMI-induced disturbance superimposed — and report what the *digital*
//! side of the system believes the supply voltage to be.

use std::f64::consts::TAU;

/// Which kind of voltage monitor a device uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonitorKind {
    /// A 10/12-bit ADC periodically sampling `V_CC` against `V_ref`.
    Adc,
    /// An analog comparator with hysteresis raising an interrupt when
    /// `V_CC` crosses a configured threshold — "a 1-bit ADC".
    Comparator,
}

impl MonitorKind {
    /// All monitor kinds.
    pub fn all() -> [MonitorKind; 2] {
        [MonitorKind::Adc, MonitorKind::Comparator]
    }
}

/// An ADC-based voltage monitor (Figure 2(a)).
///
/// The ADC samples at a fixed period; between samples it holds the last
/// conversion. A single-tone EMI disturbance of amplitude `A` is aliased by
/// the sampling process: each conversion sees `v_true + A·sin(2πf·t)`
/// evaluated at the sample instant, so consecutive readings swing through
/// the disturbance envelope — exactly the behaviour that lets an attacker
/// drive both false `V < V_backup` (checkpoint) and false `V ≥ V_on`
/// (wake-up) decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct AdcMonitor {
    /// Converter resolution in bits (10 or 12 on the paper's boards).
    pub bits: u32,
    /// Full-scale reference voltage.
    pub v_ref: f64,
    /// Sampling period in seconds.
    pub sample_period_s: f64,
    last_sample_t: f64,
    last_reading: f64,
    primed: bool,
}

impl AdcMonitor {
    /// Creates an ADC monitor.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, `v_ref <= 0`, or `sample_period_s <= 0`.
    pub fn new(bits: u32, v_ref: f64, sample_period_s: f64) -> AdcMonitor {
        assert!(bits > 0 && bits <= 24, "bits must be in 1..=24");
        assert!(v_ref > 0.0, "v_ref must be positive");
        assert!(sample_period_s > 0.0, "sample period must be positive");
        AdcMonitor {
            bits,
            v_ref,
            sample_period_s,
            last_sample_t: 0.0,
            last_reading: 0.0,
            primed: false,
        }
    }

    /// Quantizes a voltage to the converter's resolution (clamped to
    /// `0..=v_ref`).
    #[inline]
    pub fn quantize(&self, v: f64) -> f64 {
        let levels = (1u64 << self.bits) as f64;
        let clamped = v.clamp(0.0, self.v_ref);
        let code = (clamped / self.v_ref * (levels - 1.0)).round();
        code / (levels - 1.0) * self.v_ref
    }

    /// Reads the monitor at time `t_s` given the true voltage and the EMI
    /// disturbance amplitude at the monitor input. Returns the voltage the
    /// digital side believes. Conversions happen at the sampling period;
    /// between conversions the previous reading is held.
    #[inline]
    pub fn read(&mut self, v_true: f64, disturbance_amp_v: f64, t_s: f64) -> f64 {
        self.read_with(|| v_true, disturbance_amp_v, t_s)
    }

    /// Like [`AdcMonitor::read`], but derives the true voltage lazily: on
    /// polls where the sample-and-hold pipeline returns the held reading,
    /// the (possibly expensive) voltage computation is skipped entirely.
    /// Bit-identical to `read` — the hot caller is the simulator's
    /// hibernation fast-forward, which polls every coalesced tick but only
    /// converts at the sampling period.
    #[inline]
    pub fn read_with(
        &mut self,
        v_true: impl FnOnce() -> f64,
        disturbance_amp_v: f64,
        t_s: f64,
    ) -> f64 {
        if self.primed && t_s - self.last_sample_t < self.sample_period_s {
            return self.last_reading;
        }
        self.primed = true;
        self.last_sample_t = t_s;
        let v_seen = v_true() + sampled_tone(disturbance_amp_v, t_s);
        self.last_reading = self.quantize(v_seen);
        self.last_reading
    }

    /// A fresh conversion at time `t_s` that bypasses the sample-and-hold
    /// pipeline: quantizes `v_true + disturbance` without touching the
    /// converter's hold state. Useful for probes and analyses that want to
    /// know what a conversion *would* return without perturbing the
    /// pipeline the device logic observes.
    pub fn sample(&self, v_true: f64, disturbance_amp_v: f64, t_s: f64) -> f64 {
        self.quantize(v_true + sampled_tone(disturbance_amp_v, t_s))
    }

    /// The converter's step size in volts (one least-significant bit of
    /// full scale). Quantization can round a reading *up* by at most half
    /// of this, which is the margin the simulator's fast-forward keeps
    /// below a threshold before handing back to exact stepping.
    #[inline]
    pub fn lsb_v(&self) -> f64 {
        let levels = (1u64 << self.bits) as f64;
        self.v_ref / (levels - 1.0)
    }

    /// The reading a poll at `t_s` would return from the sample-and-hold
    /// pipeline *without* triggering a fresh conversion: `Some(held)` when
    /// a [`read_with`](AdcMonitor::read_with) at `t_s` would return the
    /// held conversion unchanged, `None` when it would convert anew.
    /// Read-only — the pipeline state is untouched.
    ///
    /// Because the hold window is anchored at the last conversion time,
    /// "would convert at `t_s`" is monotone in `t_s`: if this returns
    /// `None` now, every later poll also converts (until one does).
    /// The simulator's event-horizon entry check relies on that to vet a
    /// whole span with a single call.
    pub fn held_at(&self, t_s: f64) -> Option<f64> {
        if self.primed && t_s - self.last_sample_t < self.sample_period_s {
            Some(self.last_reading)
        } else {
            None
        }
    }

    /// Clears sampling state (used at reboot).
    pub fn reset(&mut self) {
        self.primed = false;
        self.last_reading = 0.0;
        self.last_sample_t = 0.0;
    }
}

impl Default for AdcMonitor {
    /// 12-bit, 3.3 V full scale, 4 kHz sampling — a typical CTPL
    /// supply-supervision configuration.
    fn default() -> AdcMonitor {
        AdcMonitor::new(12, 3.3, 2.5e-4)
    }
}

/// A comparator-based voltage monitor (Figure 2(b)).
///
/// The comparator is continuous-time: it reacts to instantaneous threshold
/// crossings rather than sampled values, which makes it *more* sensitive to
/// a large superimposed tone (the tone's negative half-cycles cross the
/// threshold even when the mean voltage is healthy). This mirrors Table I,
/// where the comparator-based monitors show far lower minimum forward
/// progress than the ADC-based ones.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparatorMonitor {
    /// Hysteresis half-width (V): crossing must exceed threshold ± this.
    pub hysteresis_v: f64,
    below: bool,
}

impl ComparatorMonitor {
    /// Creates a comparator with the given hysteresis.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis_v < 0`.
    pub fn new(hysteresis_v: f64) -> ComparatorMonitor {
        assert!(hysteresis_v >= 0.0, "hysteresis must be non-negative");
        ComparatorMonitor {
            hysteresis_v,
            below: false,
        }
    }

    /// Evaluates the comparator against `threshold_v` at time `t_s`.
    /// Returns `true` while the comparator believes the supply is below the
    /// threshold. A disturbance tone of amplitude `A` trips the comparator
    /// whenever the *trough* `v_true − A` dips under the threshold.
    pub fn is_below(
        &mut self,
        v_true: f64,
        disturbance_amp_v: f64,
        threshold_v: f64,
        _t_s: f64,
    ) -> bool {
        let trough = v_true - disturbance_amp_v.abs();
        let crest = v_true + disturbance_amp_v.abs();
        if self.below {
            // Clean release: the whole waveform rises above the threshold.
            // Chattering release: a dominant tone's crest spuriously releases
            // the comparator (false wake-up) — on the *next* evaluation the
            // trough will trip it again, producing the checkpoint/wake-up
            // chatter the attack exploits.
            let clean = trough > threshold_v + self.hysteresis_v;
            let chatter = disturbance_amp_v.abs() > 2.0 * self.hysteresis_v
                && crest > threshold_v + self.hysteresis_v;
            if clean || chatter {
                self.below = false;
            }
        } else if trough < threshold_v - self.hysteresis_v {
            self.below = true;
        }
        self.below
    }

    /// Whether the comparator is currently latched below its threshold
    /// (the state [`ComparatorMonitor::is_below`] last returned), without
    /// evaluating a new sample.
    ///
    /// While latched and undisturbed, an evaluation at any voltage that
    /// stays under `threshold + hysteresis` keeps the latch set and
    /// mutates nothing — the precondition under which the simulator's
    /// fast-forward may skip per-tick comparator evaluations.
    pub fn is_latched_below(&self) -> bool {
        self.below
    }

    /// Clears comparator state (used at reboot).
    pub fn reset(&mut self) {
        self.below = false;
    }
}

impl Default for ComparatorMonitor {
    /// 50 mV hysteresis, a typical external comparator configuration.
    fn default() -> ComparatorMonitor {
        ComparatorMonitor::new(0.05)
    }
}

/// The value of a unit-amplitude attack tone as seen by a sampler at time
/// `t_s`. Single tones in the MHz range alias pseudo-randomly at kHz-scale
/// sampling; evaluating the true sine at the sample instant captures that.
#[inline]
fn sampled_tone(amplitude_v: f64, t_s: f64) -> f64 {
    if amplitude_v == 0.0 {
        return 0.0;
    }
    // A fixed incommensurate tone phase: the simulator's attack model folds
    // the real frequency into the amplitude; what matters to the sampled
    // system is the envelope sweep, which an irrational-ratio tone provides.
    amplitude_v * (TAU * 61_803.398_875 * t_s).sin()
}

/// A median-filtered ADC monitor — the "hardware filter" countermeasure of
/// Section V-A1. Each read passes through a median-of-`taps` window before
/// reaching the checkpoint logic, suppressing isolated disturbed samples.
///
/// The paper's claim (which [`crate::devices`]-driven experiments
/// reproduce): filtering raises the attack's required power but **cannot
/// thwart it** — at the resonant frequency more than half of all samples
/// are disturbed, so the median itself is disturbed.
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredAdcMonitor {
    inner: AdcMonitor,
    window: Vec<f64>,
    taps: usize,
    next: usize,
    filled: usize,
    last_sample_t: f64,
}

impl FilteredAdcMonitor {
    /// Wraps `inner` with a median-of-`taps` filter.
    ///
    /// # Panics
    ///
    /// Panics unless `taps` is odd and at least 3.
    pub fn new(inner: AdcMonitor, taps: usize) -> FilteredAdcMonitor {
        assert!(taps >= 3 && taps % 2 == 1, "taps must be odd and >= 3");
        FilteredAdcMonitor {
            window: vec![0.0; taps],
            taps,
            inner,
            next: 0,
            filled: 0,
            last_sample_t: f64::NEG_INFINITY,
        }
    }

    /// Number of filter taps.
    pub fn taps(&self) -> usize {
        self.taps
    }

    /// Reads the filtered monitor value at `t_s`.
    pub fn read(&mut self, v_true: f64, disturbance_amp_v: f64, t_s: f64) -> f64 {
        let raw = self.inner.read(v_true, disturbance_amp_v, t_s);
        // Push one window entry per ADC conversion, not per query.
        if t_s - self.last_sample_t >= self.inner.sample_period_s
            || self.last_sample_t == f64::NEG_INFINITY
        {
            self.last_sample_t = t_s;
            self.window[self.next] = raw;
            self.next = (self.next + 1) % self.taps;
            self.filled = (self.filled + 1).min(self.taps);
        }
        let mut sorted: Vec<f64> = self.window[..self.filled].to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted[self.filled / 2]
    }

    /// Clears filter and converter state (reboot).
    pub fn reset(&mut self) {
        self.inner.reset();
        self.window.fill(0.0);
        self.next = 0;
        self.filled = 0;
        self.last_sample_t = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_snaps_to_codes() {
        let adc = AdcMonitor::new(12, 3.3, 1e-3);
        let lsb = 3.3 / 4095.0;
        let q = adc.quantize(1.0);
        assert!((q - 1.0).abs() <= lsb / 2.0 + 1e-12);
        assert_eq!(adc.quantize(-1.0), 0.0, "clamps below");
        assert_eq!(adc.quantize(9.9), 3.3, "clamps above");
    }

    #[test]
    fn adc_holds_between_samples() {
        let mut adc = AdcMonitor::new(12, 3.3, 1e-3);
        let r0 = adc.read(2.0, 0.0, 0.0);
        let r1 = adc.read(3.0, 0.0, 0.0005); // within the same sample period
        assert_eq!(r0, r1, "held");
        let r2 = adc.read(3.0, 0.0, 0.0011);
        assert!((r2 - 3.0).abs() < 0.01, "new conversion");
    }

    #[test]
    fn held_at_mirrors_the_pipeline_without_touching_it() {
        let mut adc = AdcMonitor::new(12, 3.3, 1e-3);
        assert_eq!(adc.held_at(0.0), None, "unprimed converter converts");
        let r0 = adc.read(2.0, 0.0, 0.0);
        assert_eq!(adc.held_at(0.0005), Some(r0), "inside the hold window");
        assert_eq!(adc.held_at(0.0011), None, "hold window expired");
        // Read-only: a later read still returns the held conversion.
        assert_eq!(adc.read(3.0, 0.0, 0.0005), r0);
    }

    #[test]
    fn undisturbed_adc_tracks_truth() {
        let mut adc = AdcMonitor::default();
        for k in 0..100 {
            let t = k as f64 * 2e-3;
            let v = 2.0 + 0.01 * k as f64;
            let r = adc.read(v, 0.0, t);
            assert!((r - v.min(3.3)).abs() < 0.002, "t={t}: {r} vs {v}");
        }
    }

    #[test]
    fn disturbed_adc_swings() {
        let mut adc = AdcMonitor::default();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in 0..200 {
            let t = k as f64 * 2e-3;
            let r = adc.read(2.5, 1.0, t);
            lo = lo.min(r);
            hi = hi.max(r);
        }
        assert!(lo < 1.8, "swings low: {lo}");
        assert!(hi > 3.2, "swings high: {hi}");
    }

    #[test]
    fn stateless_sample_matches_a_fresh_conversion() {
        let mut adc = AdcMonitor::default();
        let pure = adc.sample(2.345, 0.7, 0.125);
        let stateful = adc.read(2.345, 0.7, 0.125);
        assert_eq!(pure, stateful, "same quantized value, bit for bit");
        // And sampling again later leaves no trace.
        let before = adc.clone();
        let _ = adc.sample(1.0, 0.0, 9.0);
        assert_eq!(adc, before, "sample() is pure");
        let lsb = adc.lsb_v();
        assert!((lsb - 3.3 / 4095.0).abs() < 1e-15);
    }

    #[test]
    fn comparator_latch_is_observable() {
        let mut c = ComparatorMonitor::default();
        assert!(!c.is_latched_below());
        assert!(c.is_below(1.0, 0.0, 2.2, 0.0));
        assert!(c.is_latched_below());
        // Undisturbed evaluations below threshold + hysteresis keep the
        // latch set and change nothing.
        let before = c.clone();
        assert!(c.is_below(2.24, 0.0, 2.2, 1.0));
        assert_eq!(c, before);
    }

    #[test]
    fn comparator_trips_and_releases_with_hysteresis() {
        let mut c = ComparatorMonitor::new(0.05);
        assert!(!c.is_below(3.0, 0.0, 2.2, 0.0));
        assert!(c.is_below(2.1, 0.0, 2.2, 1.0), "trips below");
        assert!(c.is_below(2.22, 0.0, 2.2, 2.0), "hysteresis holds");
        assert!(!c.is_below(2.4, 0.0, 2.2, 3.0), "releases well above");
    }

    #[test]
    fn comparator_tripped_by_tone_trough() {
        let mut c = ComparatorMonitor::default();
        // Healthy 3.0 V supply, but a 1.2 V tone dips the trough to 1.8 V.
        assert!(c.is_below(3.0, 1.2, 2.2, 0.0));
    }

    #[test]
    fn immune_when_no_disturbance() {
        let mut c = ComparatorMonitor::default();
        assert!(!c.is_below(3.0, 0.0, 2.2, 0.0));
        let mut adc = AdcMonitor::default();
        assert!((adc.read(3.0, 0.0, 0.0) - 3.0).abs() < 0.01);
    }

    #[test]
    fn median_filter_suppresses_isolated_glitches() {
        let mut f = FilteredAdcMonitor::new(AdcMonitor::default(), 5);
        // Fill with healthy samples.
        for k in 0..5 {
            let _ = f.read(3.0, 0.0, k as f64 * 3e-4);
        }
        // One glitched conversion: the median holds.
        let r = f.read(0.5, 0.0, 5.0 * 3e-4);
        assert!(r > 2.9, "median rejects the glitch: {r}");
    }

    #[test]
    fn median_filter_fails_under_sustained_disturbance() {
        let mut f = FilteredAdcMonitor::new(AdcMonitor::default(), 5);
        let mut below = 0;
        for k in 0..400 {
            let r = f.read(3.3, 4.5, k as f64 * 3e-4);
            if r < 2.2 {
                below += 1;
            }
        }
        assert!(
            below > 40,
            "a resonant tone disturbs most samples, so the median is              disturbed too: {below}/400"
        );
    }

    #[test]
    fn filtered_monitor_tracks_truth_when_quiet() {
        let mut f = FilteredAdcMonitor::new(AdcMonitor::default(), 3);
        for k in 0..10 {
            let _ = f.read(2.5, 0.0, k as f64 * 3e-4);
        }
        let r = f.read(2.5, 0.0, 11.0 * 3e-4);
        assert!((r - 2.5).abs() < 0.01, "{r}");
        f.reset();
        assert_eq!(f.taps(), 3);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_taps_rejected() {
        let _ = FilteredAdcMonitor::new(AdcMonitor::default(), 4);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = ComparatorMonitor::default();
        assert!(c.is_below(1.0, 0.0, 2.2, 0.0));
        c.reset();
        assert!(!c.is_below(3.0, 0.0, 2.2, 0.1));
        let mut adc = AdcMonitor::default();
        let _ = adc.read(2.0, 0.0, 0.0);
        adc.reset();
        let r = adc.read(3.0, 0.0, 0.0);
        assert!((r - 3.0).abs() < 0.01, "re-primed after reset");
    }
}
