//! The non-volatile main memory (FRAM model).

use gecko_isa::Word;

/// Word-addressed non-volatile memory.
///
/// Intermittent systems use FRAM as their main memory (no cache), so memory
/// contents survive power failure by construction. The model keeps
/// read/write counters (FRAM endurance is finite; the wear-out attack of
/// Cronin et al. discussed in Section VIII motivates tracking them).
///
/// Address decoding wraps: the effective address is taken modulo the memory
/// size (a power of two), mirroring MCUs that ignore high address bits.
#[derive(Debug, Clone, PartialEq)]
pub struct Nvm {
    words: Vec<Word>,
    mask: u32,
    reads: u64,
    writes: u64,
}

impl Nvm {
    /// Creates a zeroed memory of `size_words` words.
    ///
    /// # Panics
    ///
    /// Panics unless `size_words` is a power of two.
    pub fn new(size_words: u32) -> Nvm {
        assert!(
            size_words.is_power_of_two(),
            "NVM size must be a power of two, got {size_words}"
        );
        Nvm {
            words: vec![0; size_words as usize],
            mask: size_words - 1,
            reads: 0,
            writes: 0,
        }
    }

    /// Memory size in words.
    pub fn len(&self) -> u32 {
        self.words.len() as u32
    }

    /// Whether the memory has zero words (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `addr` (wrapping), counting the access.
    pub fn load(&mut self, addr: u32) -> Word {
        self.reads += 1;
        self.words[(addr & self.mask) as usize]
    }

    /// Writes the word at `addr` (wrapping), counting the access.
    pub fn store(&mut self, addr: u32, value: Word) {
        self.writes += 1;
        self.words[(addr & self.mask) as usize] = value;
    }

    /// Reads without counting (for inspection by tests and experiments).
    pub fn read(&self, addr: u32) -> Word {
        self.words[(addr & self.mask) as usize]
    }

    /// Writes without counting (for loading memory images).
    pub fn write(&mut self, addr: u32, value: Word) {
        self.words[(addr & self.mask) as usize] = value;
    }

    /// Copies `values` into memory starting at `base` (used to load app
    /// data images).
    pub fn write_image(&mut self, base: u32, values: &[Word]) {
        for (i, &v) in values.iter().enumerate() {
            self.write(base.wrapping_add(i as u32), v);
        }
    }

    /// Reads `len` words starting at `base`.
    pub fn read_range(&self, base: u32, len: u32) -> Vec<Word> {
        (0..len).map(|i| self.read(base.wrapping_add(i))).collect()
    }

    /// A read-only view of the entire memory, uncounted (tooling access:
    /// state hashing and checkpoint inspection, not program loads).
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Total counted loads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total counted stores (an FRAM wear proxy).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Zeroes the contents and counters (fresh chip).
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut m = Nvm::new(64);
        m.store(10, -7);
        assert_eq!(m.load(10), -7);
        assert_eq!(m.read(10), -7);
    }

    #[test]
    fn wrapping_addressing() {
        let mut m = Nvm::new(64);
        m.store(64 + 3, 9);
        assert_eq!(m.read(3), 9);
        m.store(u32::MAX, 5); // wraps to 63
        assert_eq!(m.read(63), 5);
    }

    #[test]
    fn counters_track_counted_accesses_only() {
        let mut m = Nvm::new(64);
        m.store(0, 1);
        let _ = m.load(0);
        let _ = m.load(1);
        m.write(2, 3); // uncounted
        let _ = m.read(2); // uncounted
        assert_eq!(m.write_count(), 1);
        assert_eq!(m.read_count(), 2);
    }

    #[test]
    fn image_and_range() {
        let mut m = Nvm::new(64);
        m.write_image(8, &[1, 2, 3]);
        assert_eq!(m.read_range(8, 3), vec![1, 2, 3]);
    }

    #[test]
    fn reset_clears() {
        let mut m = Nvm::new(64);
        m.store(1, 2);
        m.reset();
        assert_eq!(m.read(1), 0);
        assert_eq!(m.write_count(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Nvm::new(100);
    }
}
