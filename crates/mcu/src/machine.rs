//! The CPU: volatile registers, program counter, and the step interpreter.

use gecko_isa::{
    BlockId, CostModel, EnergyModel, Inst, IoOp, Operand, Program, Reg, RegionId, Terminator, Word,
};

use crate::nvm::Nvm;
use crate::periph::Peripherals;
use crate::predecode::{POp, PredecodedProgram};

/// The sixteen volatile general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegFile {
    regs: [Word; Reg::COUNT],
}

impl RegFile {
    /// All-zero registers (the power-on state).
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Reads a register.
    pub fn get(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set(&mut self, r: Reg, v: Word) {
        self.regs[r.index()] = v;
    }

    /// The raw register array (for checkpointing).
    pub fn snapshot(&self) -> [Word; Reg::COUNT] {
        self.regs
    }

    /// Restores from a snapshot.
    pub fn restore(&mut self, snapshot: [Word; Reg::COUNT]) {
        self.regs = snapshot;
    }

    /// Zeroes every register (power failure).
    pub fn clear(&mut self) {
        self.regs = [0; Reg::COUNT];
    }

    fn operand(&self, op: Operand) -> Word {
        match op {
            Operand::Reg(r) => self.get(r),
            Operand::Imm(v) => v,
        }
    }
}

/// The program counter: a block plus an instruction index within it. An
/// index equal to the block's instruction count means "at the terminator".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pc {
    /// Current basic block.
    pub block: BlockId,
    /// Index of the next instruction within the block.
    pub index: usize,
}

impl Pc {
    /// A PC at the start of `block`.
    pub fn at(block: BlockId) -> Pc {
        Pc { block, index: 0 }
    }

    /// Packs the PC into two words (for checkpoint storage).
    pub fn encode(self) -> (Word, Word) {
        (self.block.index() as Word, self.index as Word)
    }

    /// Unpacks a PC from two words.
    ///
    /// # Panics
    ///
    /// Panics if either word is negative (corrupted checkpoint).
    pub fn decode(block: Word, index: Word) -> Pc {
        assert!(block >= 0 && index >= 0, "corrupted PC checkpoint");
        Pc {
            block: BlockId::new(block as usize),
            index: index as usize,
        }
    }
}

/// An event surfaced by a single step, for the surrounding runtime to act
/// on. The interpreter itself attaches no policy to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Crossed a compiler-inserted region boundary.
    Boundary(RegionId),
    /// Executed a compiler-inserted checkpoint store: the runtime must
    /// persist the given register's *current value* to the checkpoint array
    /// at the given double-buffer slot.
    Checkpoint {
        /// Register checkpointed.
        reg: Reg,
        /// Its value at the checkpoint.
        value: Word,
        /// Double-buffer slot color (0 or 1).
        slot: u8,
    },
    /// Performed an I/O transaction.
    Io(IoOp),
    /// The program reached `halt`.
    Halted,
}

/// The instruction-level effect an EM fault pulse has on the one
/// instruction it lands on — the MCU-side mirror of the attacker-facing
/// `gecko_emi::FaultModel` (this crate cannot depend on the attack crate;
/// the simulator maps between the two). Faulted instructions consume their
/// normal cycles and energy: the pulse corrupts fetch/decode, not timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// The instruction executes as a no-op: no register/memory/peripheral
    /// effect, its runtime event is suppressed, and a conditional branch
    /// falls through. Unconditional jumps and `halt` still execute —
    /// skipping a terminator would leave the PC past the end of a block,
    /// a state the fetch path cannot produce.
    Skip,
    /// The instruction decodes as a different operation: any value it
    /// writes (register, memory, peripheral, checkpoint) is complemented,
    /// a conditional branch inverts, and a region-boundary marker is not
    /// recognized by the runtime.
    OpcodeCorrupt,
    /// One bit of the instruction's data operand flips: the written value
    /// has the bit flipped, and a conditional branch compares the
    /// corrupted left-hand side.
    OperandBitflip {
        /// Which bit of the 32-bit word flips (taken modulo 32).
        bit: u8,
    },
}

/// The cycles/energy/event outcome of one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Cycles consumed.
    pub cycles: u64,
    /// Energy consumed (nJ).
    pub energy_nj: f64,
    /// Event for the runtime, if any.
    pub event: Option<StepEvent>,
}

/// Accumulated totals from a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunSummary {
    /// Total cycles.
    pub cycles: u64,
    /// Total energy (nJ).
    pub energy_nj: f64,
    /// Instructions (including terminators) executed.
    pub instructions: u64,
}

/// The volatile CPU state plus the step interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    regs: RegFile,
    pc: Pc,
    halted: bool,
}

impl Machine {
    /// A machine about to execute the first instruction of `entry` with
    /// zeroed registers (the cold-boot state).
    pub fn new(entry: BlockId) -> Machine {
        Machine {
            regs: RegFile::new(),
            pc: Pc::at(entry),
            halted: false,
        }
    }

    /// The register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable register file (used by restore paths).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// The program counter.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Forces the PC (used by restore and rollback paths).
    pub fn set_pc(&mut self, pc: Pc) {
        self.pc = pc;
        self.halted = false;
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Power failure: volatile state (registers, PC, halt flag) is lost.
    /// The machine is left at the entry of `entry` with zeroed registers,
    /// exactly like a cold boot; any *restore* must be performed by the
    /// recovery runtime from NVM state.
    pub fn power_fail(&mut self, entry: BlockId) {
        self.regs.clear();
        self.pc = Pc::at(entry);
        self.halted = false;
    }

    /// Executes one instruction (or the block terminator) and returns its
    /// cost and event.
    ///
    /// # Panics
    ///
    /// Panics if called after `halt` (callers must check
    /// [`Machine::is_halted`]), or if the PC points outside the program
    /// (which verified programs cannot produce).
    pub fn step(
        &mut self,
        program: &Program,
        cost: &CostModel,
        energy: &EnergyModel,
        nvm: &mut Nvm,
        periph: &mut Peripherals,
    ) -> StepOutcome {
        assert!(!self.halted, "stepping a halted machine");
        let block = program.block(self.pc.block);
        if self.pc.index < block.insts.len() {
            let inst = block.insts[self.pc.index];
            self.pc.index += 1;
            let cycles = cost.inst_cycles(&inst);
            let energy_nj = energy.inst_energy_nj(&inst, cycles);
            let event = self.exec(inst, nvm, periph);
            StepOutcome {
                cycles,
                energy_nj,
                event,
            }
        } else {
            let term = block.term;
            let cycles = cost.term_cycles(&term);
            let energy_nj = energy.cycles_energy_nj(cycles);
            let event = match term {
                Terminator::Jump(t) => {
                    self.pc = Pc::at(t);
                    None
                }
                Terminator::Branch {
                    cond,
                    lhs,
                    rhs,
                    taken,
                    fall,
                } => {
                    let l = self.regs.get(lhs);
                    let r = self.regs.operand(rhs);
                    self.pc = Pc::at(if cond.eval(l, r) { taken } else { fall });
                    None
                }
                Terminator::Halt => {
                    self.halted = true;
                    Some(StepEvent::Halted)
                }
            };
            StepOutcome {
                cycles,
                energy_nj,
                event,
            }
        }
    }

    /// Executes one predecoded step: exactly [`Machine::step`], but
    /// dispatching on the flat [`POp`] array of a [`PredecodedProgram`]
    /// built from the same program and cost/energy models, so the per-step
    /// block chase, operand resolution and cost lookups are all one indexed
    /// load. Outcomes are bit-identical to `step` — the simulator's
    /// differential suite holds both paths to that.
    ///
    /// # Panics
    ///
    /// Panics if called after `halt` (callers must check
    /// [`Machine::is_halted`]), or if the PC points outside the program.
    pub fn step_predecoded(
        &mut self,
        pre: &PredecodedProgram,
        nvm: &mut Nvm,
        periph: &mut Peripherals,
    ) -> StepOutcome {
        assert!(!self.halted, "stepping a halted machine");
        let entry = pre.entry(self.pc.block, self.pc.index);
        let event = self.exec_pop(entry.op, nvm, periph);
        StepOutcome {
            cycles: entry.cycles,
            energy_nj: entry.energy_nj,
            event,
        }
    }

    /// Executes one step *under an EM fault*: exactly
    /// [`Machine::step_predecoded`], but the fetched operation suffers
    /// `fault` ([`FaultEffect`]). This is the single fault seam both
    /// dispatch modes inject through — predecoding is a pure re-encoding
    /// with identical per-entry costs, so routing an interpreted-mode
    /// faulted step through the predecoded entry is bit-identical to
    /// faulting the interpreter, and the two modes cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if called after `halt` (callers must check
    /// [`Machine::is_halted`]), or if the PC points outside the program.
    pub fn step_faulted(
        &mut self,
        pre: &PredecodedProgram,
        nvm: &mut Nvm,
        periph: &mut Peripherals,
        fault: FaultEffect,
    ) -> StepOutcome {
        assert!(!self.halted, "stepping a halted machine");
        let entry = pre.entry(self.pc.block, self.pc.index);
        let event = self.exec_pop_faulted(entry.op, nvm, periph, fault);
        StepOutcome {
            cycles: entry.cycles,
            energy_nj: entry.energy_nj,
            event,
        }
    }

    /// Retires a span of predecoded instructions in one batched call —
    /// the machine/NVM/peripheral half of the simulator's event-horizon
    /// stepping. Returns the number of instructions retired (possibly 0).
    ///
    /// The span ends, *without executing the stopping entry*, at:
    ///
    /// * the first entry that surfaces a runtime event the caller must
    ///   handle exactly — `Boundary`, `Checkpoint` or `Halt` ([`StepEvent::Io`]
    ///   is runtime-inert in the simulator and stays in-span);
    /// * the first `Store` whose resolved address is at or above
    ///   `store_fence` — writes into the checkpoint-runtime NVM area can
    ///   flip scheme state (e.g. the GECKO mode word) that the caller's
    ///   admission reasoning assumed constant;
    /// * `max_insts` instructions retired; or
    /// * `admit(cycles, energy_nj)` returning `false` for the next entry.
    ///
    /// `admit` is consulted *before* each instruction executes, with that
    /// entry's precomputed costs; when it declines, machine, NVM and
    /// peripherals are exactly as if the instruction never started. That
    /// lets the caller replay its energy/time bookkeeping per instruction
    /// (bit-identically to the per-step reference) and stop the moment a
    /// guard would fail, without ever having to undo an instruction.
    ///
    /// # Panics
    ///
    /// Panics if called after `halt`, or if the PC points outside the
    /// program.
    pub fn retire_span(
        &mut self,
        pre: &PredecodedProgram,
        nvm: &mut Nvm,
        periph: &mut Peripherals,
        max_insts: u64,
        store_fence: u32,
        mut admit: impl FnMut(u64, f64) -> bool,
    ) -> u64 {
        assert!(!self.halted, "stepping a halted machine");
        let mut done = 0u64;
        while done < max_insts {
            let entry = pre.entry(self.pc.block, self.pc.index);
            match entry.op {
                POp::Boundary { .. } | POp::Checkpoint { .. } | POp::Halt => break,
                POp::Store { base, off, .. } => {
                    let addr = (self.regs.get(base).wrapping_add(off)) as u32;
                    if addr >= store_fence {
                        break;
                    }
                }
                _ => {}
            }
            if !admit(entry.cycles, entry.energy_nj) {
                break;
            }
            let event = self.exec_pop(entry.op, nvm, periph);
            debug_assert!(
                matches!(event, None | Some(StepEvent::Io(_))),
                "span-ending ops are filtered before execution"
            );
            done += 1;
        }
        done
    }

    /// Executes one predecoded operation — the shared core of
    /// [`Machine::step_predecoded`] and [`Machine::retire_span`], so the
    /// batched path is the *same code* as the per-step path by
    /// construction.
    #[inline]
    fn exec_pop(&mut self, op: POp, nvm: &mut Nvm, periph: &mut Peripherals) -> Option<StepEvent> {
        match op {
            POp::MovImm { dst, imm } => {
                self.pc.index += 1;
                self.regs.set(dst, imm);
                None
            }
            POp::MovReg { dst, src } => {
                self.pc.index += 1;
                let v = self.regs.get(src);
                self.regs.set(dst, v);
                None
            }
            POp::BinImm { op, dst, lhs, imm } => {
                self.pc.index += 1;
                let l = self.regs.get(lhs);
                self.regs.set(dst, op.eval(l, imm));
                None
            }
            POp::BinReg { op, dst, lhs, rhs } => {
                self.pc.index += 1;
                let l = self.regs.get(lhs);
                let r = self.regs.get(rhs);
                self.regs.set(dst, op.eval(l, r));
                None
            }
            POp::Load { dst, base, off } => {
                self.pc.index += 1;
                let addr = (self.regs.get(base).wrapping_add(off)) as u32;
                let v = nvm.load(addr);
                self.regs.set(dst, v);
                None
            }
            POp::Store { src, base, off } => {
                self.pc.index += 1;
                let addr = (self.regs.get(base).wrapping_add(off)) as u32;
                nvm.store(addr, self.regs.get(src));
                None
            }
            POp::Io { op, reg } => {
                self.pc.index += 1;
                match op {
                    IoOp::Sense => {
                        let v = periph.sense();
                        self.regs.set(reg, v);
                    }
                    IoOp::Send => periph.send(self.regs.get(reg)),
                    IoOp::Blink => periph.blink(),
                }
                Some(StepEvent::Io(op))
            }
            POp::Boundary { region } => {
                self.pc.index += 1;
                Some(StepEvent::Boundary(region))
            }
            POp::Checkpoint { reg, slot } => {
                self.pc.index += 1;
                Some(StepEvent::Checkpoint {
                    reg,
                    value: self.regs.get(reg),
                    slot,
                })
            }
            POp::Nop => {
                self.pc.index += 1;
                None
            }
            POp::Jump { target } => {
                self.pc = Pc::at(target);
                None
            }
            POp::BranchImm {
                cond,
                lhs,
                imm,
                taken,
                fall,
            } => {
                let l = self.regs.get(lhs);
                self.pc = Pc::at(if cond.eval(l, imm) { taken } else { fall });
                None
            }
            POp::BranchReg {
                cond,
                lhs,
                rhs,
                taken,
                fall,
            } => {
                let l = self.regs.get(lhs);
                let r = self.regs.get(rhs);
                self.pc = Pc::at(if cond.eval(l, r) { taken } else { fall });
                None
            }
            POp::Halt => {
                self.halted = true;
                Some(StepEvent::Halted)
            }
        }
    }

    /// Executes one predecoded operation under `fault` — the faulted twin
    /// of [`Machine::exec_pop`], kept variant-for-variant parallel so the
    /// fault semantics are auditable against the clean path.
    fn exec_pop_faulted(
        &mut self,
        op: POp,
        nvm: &mut Nvm,
        periph: &mut Peripherals,
        fault: FaultEffect,
    ) -> Option<StepEvent> {
        // How the fault mangles a value the instruction writes. `Skip`
        // never writes, so its arm is unreachable by construction.
        let mangle = |v: Word| match fault {
            FaultEffect::Skip => v,
            FaultEffect::OpcodeCorrupt => !v,
            FaultEffect::OperandBitflip { bit } => v ^ (1 << (u32::from(bit) % 32)),
        };
        let skip = fault == FaultEffect::Skip;
        match op {
            POp::MovImm { dst, imm } => {
                self.pc.index += 1;
                if !skip {
                    self.regs.set(dst, mangle(imm));
                }
                None
            }
            POp::MovReg { dst, src } => {
                self.pc.index += 1;
                if !skip {
                    let v = self.regs.get(src);
                    self.regs.set(dst, mangle(v));
                }
                None
            }
            POp::BinImm { op, dst, lhs, imm } => {
                self.pc.index += 1;
                if !skip {
                    let l = self.regs.get(lhs);
                    self.regs.set(dst, mangle(op.eval(l, imm)));
                }
                None
            }
            POp::BinReg { op, dst, lhs, rhs } => {
                self.pc.index += 1;
                if !skip {
                    let l = self.regs.get(lhs);
                    let r = self.regs.get(rhs);
                    self.regs.set(dst, mangle(op.eval(l, r)));
                }
                None
            }
            POp::Load { dst, base, off } => {
                self.pc.index += 1;
                if !skip {
                    let addr = (self.regs.get(base).wrapping_add(off)) as u32;
                    let v = nvm.load(addr);
                    self.regs.set(dst, mangle(v));
                }
                None
            }
            POp::Store { src, base, off } => {
                self.pc.index += 1;
                if !skip {
                    let addr = (self.regs.get(base).wrapping_add(off)) as u32;
                    nvm.store(addr, mangle(self.regs.get(src)));
                }
                None
            }
            POp::Io { op, reg } => {
                self.pc.index += 1;
                if skip {
                    // The transaction never starts: no peripheral side
                    // effect and no event for the runtime.
                    return None;
                }
                match op {
                    IoOp::Sense => {
                        let v = periph.sense();
                        self.regs.set(reg, mangle(v));
                    }
                    IoOp::Send => periph.send(mangle(self.regs.get(reg))),
                    IoOp::Blink => periph.blink(),
                }
                Some(StepEvent::Io(op))
            }
            POp::Boundary { region } => {
                self.pc.index += 1;
                match fault {
                    // Skipped or misdecoded: the runtime never sees the
                    // boundary, so no commit happens here.
                    FaultEffect::Skip | FaultEffect::OpcodeCorrupt => None,
                    // A boundary marker carries no data operand to flip.
                    FaultEffect::OperandBitflip { .. } => Some(StepEvent::Boundary(region)),
                }
            }
            POp::Checkpoint { reg, slot } => {
                self.pc.index += 1;
                if skip {
                    return None;
                }
                Some(StepEvent::Checkpoint {
                    reg,
                    value: mangle(self.regs.get(reg)),
                    slot,
                })
            }
            POp::Nop => {
                self.pc.index += 1;
                None
            }
            POp::Jump { target } => {
                // No data operand, and a skipped terminator would strand
                // the PC past the block end: the jump always goes through.
                self.pc = Pc::at(target);
                None
            }
            POp::BranchImm {
                cond,
                lhs,
                imm,
                taken,
                fall,
            } => {
                self.pc = Pc::at(match fault {
                    FaultEffect::Skip => fall,
                    FaultEffect::OpcodeCorrupt => {
                        let l = self.regs.get(lhs);
                        if cond.eval(l, imm) {
                            fall
                        } else {
                            taken
                        }
                    }
                    FaultEffect::OperandBitflip { .. } => {
                        let l = mangle(self.regs.get(lhs));
                        if cond.eval(l, imm) {
                            taken
                        } else {
                            fall
                        }
                    }
                });
                None
            }
            POp::BranchReg {
                cond,
                lhs,
                rhs,
                taken,
                fall,
            } => {
                self.pc = Pc::at(match fault {
                    FaultEffect::Skip => fall,
                    FaultEffect::OpcodeCorrupt => {
                        let l = self.regs.get(lhs);
                        let r = self.regs.get(rhs);
                        if cond.eval(l, r) {
                            fall
                        } else {
                            taken
                        }
                    }
                    FaultEffect::OperandBitflip { .. } => {
                        let l = mangle(self.regs.get(lhs));
                        let r = self.regs.get(rhs);
                        if cond.eval(l, r) {
                            taken
                        } else {
                            fall
                        }
                    }
                });
                None
            }
            POp::Halt => {
                self.halted = true;
                Some(StepEvent::Halted)
            }
        }
    }

    fn exec(&mut self, inst: Inst, nvm: &mut Nvm, periph: &mut Peripherals) -> Option<StepEvent> {
        match inst {
            Inst::Mov { dst, src } => {
                let v = self.regs.operand(src);
                self.regs.set(dst, v);
                None
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let l = self.regs.get(lhs);
                let r = self.regs.operand(rhs);
                self.regs.set(dst, op.eval(l, r));
                None
            }
            Inst::Load { dst, base, off } => {
                let addr = (self.regs.get(base).wrapping_add(off)) as u32;
                let v = nvm.load(addr);
                self.regs.set(dst, v);
                None
            }
            Inst::Store { src, base, off } => {
                let addr = (self.regs.get(base).wrapping_add(off)) as u32;
                nvm.store(addr, self.regs.get(src));
                None
            }
            Inst::Io { op, reg } => {
                match op {
                    IoOp::Sense => {
                        let v = periph.sense();
                        self.regs.set(reg, v);
                    }
                    IoOp::Send => periph.send(self.regs.get(reg)),
                    IoOp::Blink => periph.blink(),
                }
                Some(StepEvent::Io(op))
            }
            Inst::Boundary { region } => Some(StepEvent::Boundary(region)),
            Inst::Checkpoint { reg, slot } => Some(StepEvent::Checkpoint {
                reg,
                value: self.regs.get(reg),
                slot,
            }),
            Inst::Nop => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{BinOp, Cond, ProgramBuilder};

    fn exec(program: &Program) -> (Machine, Nvm, Peripherals, RunSummary) {
        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let mut nvm = Nvm::new(1 << 10);
        let mut periph = Peripherals::new(9);
        let mut m = Machine::new(program.entry());
        let mut s = RunSummary::default();
        while !m.is_halted() {
            let o = m.step(program, &cost, &energy, &mut nvm, &mut periph);
            s.cycles += o.cycles;
            s.energy_nj += o.energy_nj;
            s.instructions += 1;
            assert!(s.instructions < 100_000, "runaway test program");
        }
        (m, nvm, periph, s)
    }

    #[test]
    fn arithmetic_and_store() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 4, true);
        b.mov(Reg::R1, 6);
        b.bin(BinOp::Mul, Reg::R1, Reg::R1, 7);
        b.mov(Reg::R2, d as i32);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let p = b.finish().unwrap();
        let (m, nvm, _, s) = exec(&p);
        assert_eq!(nvm.read(d), 42);
        assert!(m.is_halted());
        assert!(s.cycles > 0 && s.energy_nj > 0.0);
    }

    #[test]
    fn branching_loop_sums() {
        let mut b = ProgramBuilder::new("t");
        let (sum, i) = (Reg::R1, Reg::R2);
        b.mov(sum, 0);
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(5);
        b.branch(Cond::Lt, i, 5, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, sum, sum, i);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        let p = b.finish().unwrap();
        let (m, ..) = exec(&p);
        assert_eq!(m.regs().get(sum), 10);
    }

    #[test]
    fn load_reads_back_store() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.mov(Reg::R2, 123);
        b.store(Reg::R2, Reg::R1, 3);
        b.load(Reg::R3, Reg::R1, 3);
        b.halt();
        let p = b.finish().unwrap();
        let (m, ..) = exec(&p);
        assert_eq!(m.regs().get(Reg::R3), 123);
    }

    #[test]
    fn io_events_and_logs() {
        let mut b = ProgramBuilder::new("t");
        b.sense(Reg::R1);
        b.send(Reg::R1);
        b.blink();
        b.halt();
        let p = b.finish().unwrap();
        let (_, _, periph, _) = exec(&p);
        assert_eq!(periph.sent().len(), 1);
        assert_eq!(periph.blink_count(), 1);
        assert_eq!(periph.sense_count(), 1);
    }

    #[test]
    fn pseudo_instructions_surface_events() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R5, 17);
        b.push(Inst::Boundary {
            region: RegionId::new(2),
        });
        b.push(Inst::Checkpoint {
            reg: Reg::R5,
            slot: 1,
        });
        b.halt();
        let p = b.finish().unwrap();

        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let mut nvm = Nvm::new(64);
        let mut periph = Peripherals::new(0);
        let mut m = Machine::new(p.entry());
        let mut events = Vec::new();
        while !m.is_halted() {
            if let Some(e) = m.step(&p, &cost, &energy, &mut nvm, &mut periph).event {
                events.push(e);
            }
        }
        assert_eq!(
            events,
            vec![
                StepEvent::Boundary(RegionId::new(2)),
                StepEvent::Checkpoint {
                    reg: Reg::R5,
                    value: 17,
                    slot: 1
                },
                StepEvent::Halted,
            ]
        );
    }

    #[test]
    fn power_fail_wipes_volatile_state_only() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 4, true);
        b.mov(Reg::R1, 55);
        b.mov(Reg::R2, d as i32);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let p = b.finish().unwrap();

        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let mut nvm = Nvm::new(64);
        let mut periph = Peripherals::new(0);
        let mut m = Machine::new(p.entry());
        // Execute the three instructions, then fail before halt.
        for _ in 0..3 {
            let _ = m.step(&p, &cost, &energy, &mut nvm, &mut periph);
        }
        assert_eq!(nvm.read(d), 55);
        m.power_fail(p.entry());
        assert_eq!(m.regs().get(Reg::R1), 0, "registers lost");
        assert_eq!(m.pc(), Pc::at(p.entry()), "pc reset");
        assert_eq!(nvm.read(d), 55, "NVM survives");
    }

    #[test]
    fn predecoded_step_is_bit_identical_to_interpretation() {
        // A program exercising every operand shape: ALU on regs and imms,
        // loads/stores, IO, pseudo-instructions, a loop, and halt.
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        let (sum, i, addr) = (Reg::R1, Reg::R2, Reg::R3);
        b.mov(sum, 0);
        b.mov(i, 0);
        b.mov(addr, d as i32);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(6);
        b.branch(Cond::Lt, i, 6, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, sum, sum, i);
        b.bin(BinOp::Add, i, i, 1);
        b.store(sum, addr, 0);
        b.load(Reg::R4, addr, 0);
        b.jump(head);
        b.bind(exit);
        b.sense(Reg::R5);
        b.send(Reg::R5);
        b.push(Inst::Boundary {
            region: RegionId::new(1),
        });
        b.push(Inst::Checkpoint { reg: sum, slot: 0 });
        b.halt();
        let p = b.finish().unwrap();

        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let pre = PredecodedProgram::build(&p, &cost, &energy);

        let mut nvm_a = Nvm::new(64);
        let mut nvm_b = Nvm::new(64);
        let mut pa = Peripherals::new(3);
        let mut pb = Peripherals::new(3);
        let mut a = Machine::new(p.entry());
        let mut b2 = Machine::new(p.entry());
        while !a.is_halted() {
            let oa = a.step(&p, &cost, &energy, &mut nvm_a, &mut pa);
            let ob = b2.step_predecoded(&pre, &mut nvm_b, &mut pb);
            assert_eq!(oa.cycles, ob.cycles);
            assert_eq!(oa.energy_nj.to_bits(), ob.energy_nj.to_bits());
            assert_eq!(oa.event, ob.event);
            assert_eq!(a, b2, "machines stay in lock-step");
        }
        assert!(b2.is_halted());
        assert_eq!(nvm_a.words(), nvm_b.words());
        assert_eq!(pa.sent(), pb.sent());
    }

    #[test]
    fn retire_span_matches_per_step_and_stops_at_events() {
        // Same shape as the differential test above: a loop with memory
        // traffic and IO, ended by Boundary/Checkpoint/Halt pseudo-ops.
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        let (sum, i, addr) = (Reg::R1, Reg::R2, Reg::R3);
        b.mov(sum, 0);
        b.mov(i, 0);
        b.mov(addr, d as i32);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(6);
        b.branch(Cond::Lt, i, 6, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, sum, sum, i);
        b.bin(BinOp::Add, i, i, 1);
        b.store(sum, addr, 0);
        b.load(Reg::R4, addr, 0);
        b.jump(head);
        b.bind(exit);
        b.sense(Reg::R5);
        b.send(Reg::R5);
        b.push(Inst::Boundary {
            region: RegionId::new(1),
        });
        b.push(Inst::Checkpoint { reg: sum, slot: 0 });
        b.halt();
        let p = b.finish().unwrap();

        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let pre = PredecodedProgram::build(&p, &cost, &energy);
        let fence = 1 << 10; // no app store reaches this address

        // Reference: per-step until the first event-surfacing entry.
        let mut nvm_a = Nvm::new(1 << 10);
        let mut pa = Peripherals::new(3);
        let mut a = Machine::new(p.entry());
        let mut ref_insts = 0u64;
        let mut ref_cycles = 0u64;
        let mut ref_energy = 0.0f64;
        loop {
            let e = pre.entry(a.pc().block, a.pc().index);
            if matches!(
                e.op,
                POp::Boundary { .. } | POp::Checkpoint { .. } | POp::Halt
            ) {
                break;
            }
            let o = a.step_predecoded(&pre, &mut nvm_a, &mut pa);
            ref_insts += 1;
            ref_cycles += o.cycles;
            ref_energy += o.energy_nj;
        }

        // Batched: one retire_span with an admit that mirrors the sums.
        let mut nvm_b = Nvm::new(1 << 10);
        let mut pb = Peripherals::new(3);
        let mut m = Machine::new(p.entry());
        let mut cycles = 0u64;
        let mut energy_nj = 0.0f64;
        let done = m.retire_span(&pre, &mut nvm_b, &mut pb, u64::MAX, fence, |c, e| {
            cycles += c;
            energy_nj += e;
            true
        });
        assert_eq!(done, ref_insts);
        assert_eq!(cycles, ref_cycles);
        assert_eq!(energy_nj.to_bits(), ref_energy.to_bits());
        assert_eq!(m, a, "machines land on the same boundary");
        assert_eq!(nvm_a.words(), nvm_b.words());
        assert_eq!(pa.sent(), pb.sent());
        assert!(
            matches!(
                pre.entry(m.pc().block, m.pc().index).op,
                POp::Boundary { .. }
            ),
            "span stops exactly at the unexecuted boundary"
        );

        // Worst-step really bounds every admitted entry.
        let (wc, we) = pre.worst_step();
        assert!(ref_cycles <= wc * ref_insts);
        assert!(ref_energy <= we * ref_insts as f64);

        // Declining admission leaves the machine untouched.
        let before = m.clone();
        let n = m.retire_span(&pre, &mut nvm_b, &mut pb, u64::MAX, fence, |_, _| false);
        assert_eq!(n, 0);
        assert_eq!(m, before);

        // max_insts caps the span mid-way.
        let mut nvm_c = Nvm::new(1 << 10);
        let mut pc2 = Peripherals::new(3);
        let mut c = Machine::new(p.entry());
        let n = c.retire_span(&pre, &mut nvm_c, &mut pc2, 2, fence, |_, _| true);
        assert_eq!(n, 2);
    }

    #[test]
    fn retire_span_fences_runtime_area_stores() {
        // A store below the fence stays in-span; one at the fence stops
        // the span before executing.
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, 5);
        b.mov(Reg::R2, d as i32);
        b.store(Reg::R1, Reg::R2, 0); // app-area store: in-span
        b.mov(Reg::R3, 64); // fence address
        b.store(Reg::R1, Reg::R3, 0); // fenced store: span-ender
        b.halt();
        let p = b.finish().unwrap();
        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let pre = PredecodedProgram::build(&p, &cost, &energy);
        let mut nvm = Nvm::new(128);
        let mut periph = Peripherals::new(0);
        let mut m = Machine::new(p.entry());
        let n = m.retire_span(&pre, &mut nvm, &mut periph, u64::MAX, 64, |_, _| true);
        assert_eq!(n, 4, "stops before the fenced store");
        assert_eq!(nvm.read(d), 5, "app store executed");
        assert_eq!(nvm.read(64), 0, "fenced store did not");
        assert!(
            matches!(pre.entry(m.pc().block, m.pc().index).op, POp::Store { .. }),
            "PC parked on the fenced store"
        );
    }

    #[test]
    fn pc_encode_decode_roundtrip() {
        let pc = Pc {
            block: BlockId::new(7),
            index: 13,
        };
        let (a, b) = pc.encode();
        assert_eq!(Pc::decode(a, b), pc);
    }

    #[test]
    #[should_panic(expected = "halted")]
    fn stepping_halted_machine_panics() {
        let mut b = ProgramBuilder::new("t");
        b.halt();
        let p = b.finish().unwrap();
        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let mut nvm = Nvm::new(64);
        let mut periph = Peripherals::new(0);
        let mut m = Machine::new(p.entry());
        let _ = m.step(&p, &cost, &energy, &mut nvm, &mut periph);
        let _ = m.step(&p, &cost, &energy, &mut nvm, &mut periph);
    }

    fn faulted_setup(p: &Program) -> (PredecodedProgram, Nvm, Peripherals, Machine) {
        let pre = PredecodedProgram::build(p, &CostModel::default(), &EnergyModel::default());
        (
            pre,
            Nvm::new(1 << 10),
            Peripherals::new(9),
            Machine::new(p.entry()),
        )
    }

    #[test]
    fn skip_fault_is_an_expensive_nop() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 4, true);
        b.mov(Reg::R1, 41);
        b.mov(Reg::R2, d as i32);
        b.store(Reg::R1, Reg::R2, 0);
        b.halt();
        let p = b.finish().unwrap();
        let (pre, mut nvm, mut periph, mut m) = faulted_setup(&p);
        let _ = m.step_predecoded(&pre, &mut nvm, &mut periph);
        assert_eq!(m.regs().get(Reg::R1), 41);
        let _ = m.step_predecoded(&pre, &mut nvm, &mut periph);
        // Skip the store: full cost, no memory effect, PC advances.
        let entry = pre.entry(m.pc().block, m.pc().index);
        let o = m.step_faulted(&pre, &mut nvm, &mut periph, FaultEffect::Skip);
        assert_eq!(o.cycles, entry.cycles, "store costs its normal cycles");
        assert_eq!(o.energy_nj.to_bits(), entry.energy_nj.to_bits());
        assert_eq!(nvm.read(d), 0, "the skipped store never landed");
        let _ = m.step_predecoded(&pre, &mut nvm, &mut periph);
        assert!(m.is_halted());
    }

    #[test]
    fn skip_fault_suppresses_events_and_falls_through_branches() {
        let mut b = ProgramBuilder::new("t");
        b.push(Inst::Boundary {
            region: RegionId::new(1),
        });
        b.mov(Reg::R1, 0);
        let yes = b.new_label("yes");
        let no = b.new_label("no");
        b.branch(Cond::Eq, Reg::R1, 0, yes, no);
        b.bind(yes);
        b.mov(Reg::R2, 1);
        b.halt();
        b.bind(no);
        b.mov(Reg::R2, 2);
        b.halt();
        let p = b.finish().unwrap();
        let (pre, mut nvm, mut periph, mut m) = faulted_setup(&p);
        let o = m.step_faulted(&pre, &mut nvm, &mut periph, FaultEffect::Skip);
        assert_eq!(o.event, None, "boundary event suppressed");
        let _ = m.step_predecoded(&pre, &mut nvm, &mut periph);
        // The branch would be taken (R1 == 0); a skip falls through.
        let o = m.step_faulted(&pre, &mut nvm, &mut periph, FaultEffect::Skip);
        assert_eq!(o.event, None);
        while !m.is_halted() {
            let _ = m.step_predecoded(&pre, &mut nvm, &mut periph);
        }
        assert_eq!(
            m.regs().get(Reg::R2),
            2,
            "fell through to the not-taken arm"
        );
    }

    #[test]
    fn operand_bitflip_flips_exactly_one_bit_of_the_written_value() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 0b1000);
        b.push(Inst::Checkpoint {
            reg: Reg::R1,
            slot: 0,
        });
        b.halt();
        let p = b.finish().unwrap();
        let (pre, mut nvm, mut periph, mut m) = faulted_setup(&p);
        let o = m.step_faulted(
            &pre,
            &mut nvm,
            &mut periph,
            FaultEffect::OperandBitflip { bit: 1 },
        );
        assert_eq!(o.event, None);
        assert_eq!(m.regs().get(Reg::R1), 0b1010);
        // The checkpoint event carries the (independently) flipped value.
        let o = m.step_faulted(
            &pre,
            &mut nvm,
            &mut periph,
            FaultEffect::OperandBitflip { bit: 0 },
        );
        assert_eq!(
            o.event,
            Some(StepEvent::Checkpoint {
                reg: Reg::R1,
                value: 0b1011,
                slot: 0
            })
        );
        assert_eq!(m.regs().get(Reg::R1), 0b1010, "register itself untouched");
    }

    #[test]
    fn opcode_corrupt_complements_writes_and_inverts_branches() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 5);
        let yes = b.new_label("yes");
        let no = b.new_label("no");
        b.branch(Cond::Eq, Reg::R1, 7, yes, no); // not taken, cleanly
        b.bind(yes);
        b.mov(Reg::R2, 1);
        b.halt();
        b.bind(no);
        b.mov(Reg::R2, 2);
        b.halt();
        let p = b.finish().unwrap();
        let (pre, mut nvm, mut periph, mut m) = faulted_setup(&p);
        let _ = m.step_faulted(&pre, &mut nvm, &mut periph, FaultEffect::OpcodeCorrupt);
        assert_eq!(m.regs().get(Reg::R1), !5, "written value complemented");
        // R1 != 7 either way, so the clean branch falls to `no`; the
        // corrupted decode inverts it into the taken arm.
        let _ = m.step_faulted(&pre, &mut nvm, &mut periph, FaultEffect::OpcodeCorrupt);
        while !m.is_halted() {
            let _ = m.step_predecoded(&pre, &mut nvm, &mut periph);
        }
        assert_eq!(
            m.regs().get(Reg::R2),
            1,
            "inverted branch took the taken arm"
        );
    }

    #[test]
    fn faulted_terminators_jump_and_halt_normally() {
        let mut b = ProgramBuilder::new("t");
        let next = b.new_label("next");
        b.jump(next);
        b.bind(next);
        b.halt();
        let p = b.finish().unwrap();
        let (pre, mut nvm, mut periph, mut m) = faulted_setup(&p);
        let o = m.step_faulted(&pre, &mut nvm, &mut periph, FaultEffect::Skip);
        assert_eq!(o.event, None, "jump executes despite the pulse");
        let o = m.step_faulted(&pre, &mut nvm, &mut periph, FaultEffect::Skip);
        assert_eq!(o.event, Some(StepEvent::Halted));
        assert!(m.is_halted());
    }

    #[test]
    fn negative_offset_addressing() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32 + 4);
        b.mov(Reg::R2, 77);
        b.store(Reg::R2, Reg::R1, -2);
        b.halt();
        let p = b.finish().unwrap();
        let (_, nvm, ..) = exec(&p);
        assert_eq!(nvm.read(d + 2), 77);
    }
}
