//! # gecko-mcu
//!
//! A cycle- and energy-accounted interpreter for the `gecko-isa` machine:
//! volatile register file and program counter, non-volatile main memory
//! (FRAM model), and scripted peripherals. This is the execution substrate
//! every recovery scheme (NVP/CTPL, Ratchet, GECKO) runs on.
//!
//! The interpreter is deliberately *policy-free*: compiler pseudo-
//! instructions ([`gecko_isa::Inst::Boundary`], [`gecko_isa::Inst::Checkpoint`])
//! execute as architectural no-ops that cost cycles/energy and surface a
//! [`StepEvent`], and the surrounding runtime (in `gecko-sim`) decides what
//! to persist. Power failure is likewise imposed from outside by calling
//! [`Machine::power_fail`], which wipes exactly the volatile state.
//!
//! ```
//! use gecko_isa::{ProgramBuilder, Reg};
//! use gecko_mcu::{Machine, Nvm, Peripherals, run_to_completion};
//!
//! let mut b = ProgramBuilder::new("answer");
//! let data = b.segment("data", 4, true);
//! b.mov(Reg::R1, 42);
//! b.mov(Reg::R2, data as i32);
//! b.store(Reg::R1, Reg::R2, 0);
//! b.halt();
//! let program = b.finish().unwrap();
//!
//! let mut nvm = Nvm::new(1 << 12);
//! let mut periph = Peripherals::new(7);
//! let run = run_to_completion(&program, &mut nvm, &mut periph, 1_000_000).unwrap();
//! assert_eq!(nvm.read(data), 42);
//! assert!(run.cycles > 0);
//! ```

pub mod machine;
pub mod nvm;
pub mod periph;
pub mod predecode;

pub use machine::{FaultEffect, Machine, Pc, RegFile, RunSummary, StepEvent, StepOutcome};
pub use nvm::Nvm;
pub use periph::Peripherals;
pub use predecode::{POp, PredecodedProgram};

use gecko_isa::Program;

/// Error from [`run_to_completion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The program did not halt within the cycle budget.
    CycleBudgetExhausted,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::CycleBudgetExhausted => write!(f, "cycle budget exhausted before halt"),
        }
    }
}

impl std::error::Error for RunError {}

/// Executes `program` to completion on fresh volatile state with unlimited
/// energy — the "golden run" used as the correctness reference by the
/// crash-consistency tests, and by app unit tests.
///
/// # Errors
///
/// Returns [`RunError::CycleBudgetExhausted`] if the program does not halt
/// within `max_cycles`.
pub fn run_to_completion(
    program: &Program,
    nvm: &mut Nvm,
    periph: &mut Peripherals,
    max_cycles: u64,
) -> Result<RunSummary, RunError> {
    let cost = gecko_isa::CostModel::default();
    let energy = gecko_isa::EnergyModel::default();
    let mut machine = Machine::new(program.entry());
    let mut summary = RunSummary::default();
    while !machine.is_halted() {
        if summary.cycles > max_cycles {
            return Err(RunError::CycleBudgetExhausted);
        }
        let out = machine.step(program, &cost, &energy, nvm, periph);
        summary.cycles += out.cycles;
        summary.energy_nj += out.energy_nj;
        summary.instructions += 1;
    }
    Ok(summary)
}
