//! Scripted peripherals: sensor, radio, LED.

use gecko_isa::rng::{SplitMix64, GOLDEN_GAMMA};
use gecko_isa::Word;

/// The board's peripherals.
///
/// * **Sensor** — `sense` returns a deterministic pseudo-random sequence
///   derived from a seed (a splitmix64 stream), standing in for temperature
///   / glucose / accelerometer samples. Re-sensing after a rollback reads
///   the *next* sample, as a real re-executed sensor transaction would.
/// * **Radio/UART** — `send` appends to an output log that experiments and
///   tests inspect.
/// * **LED** — `blink` counts toggles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peripherals {
    sensor: SplitMix64,
    sent: Vec<Word>,
    blinks: u64,
    senses: u64,
}

impl Peripherals {
    /// Creates peripherals with a sensor stream seeded by `seed`.
    pub fn new(seed: u64) -> Peripherals {
        Peripherals {
            // Pre-mixed state preserved from the original in-crate stream
            // so scripted sensor traces stay bit-identical.
            sensor: SplitMix64::from_state(seed.wrapping_mul(GOLDEN_GAMMA).wrapping_add(1)),
            sent: Vec::new(),
            blinks: 0,
            senses: 0,
        }
    }

    /// Reads the next sensor sample: a value in `0..4096` (a 12-bit ADC
    /// peripheral reading).
    pub fn sense(&mut self) -> Word {
        self.senses += 1;
        (self.sensor.next_u64() & 0xFFF) as Word
    }

    /// Transmits `value`.
    pub fn send(&mut self, value: Word) {
        self.sent.push(value);
    }

    /// Toggles the LED.
    pub fn blink(&mut self) {
        self.blinks += 1;
    }

    /// Everything transmitted so far, in order.
    pub fn sent(&self) -> &[Word] {
        &self.sent
    }

    /// Number of LED toggles.
    pub fn blink_count(&self) -> u64 {
        self.blinks
    }

    /// Number of sensor reads.
    pub fn sense_count(&self) -> u64 {
        self.senses
    }

    /// Clears logs and counters but keeps the sensor stream position (the
    /// environment does not rewind when an app restarts).
    pub fn clear_logs(&mut self) {
        self.sent.clear();
        self.blinks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_is_deterministic_per_seed() {
        let mut a = Peripherals::new(1);
        let mut b = Peripherals::new(1);
        let sa: Vec<_> = (0..16).map(|_| a.sense()).collect();
        let sb: Vec<_> = (0..16).map(|_| b.sense()).collect();
        assert_eq!(sa, sb);
        let mut c = Peripherals::new(2);
        let sc: Vec<_> = (0..16).map(|_| c.sense()).collect();
        assert_ne!(sa, sc, "different seeds, different streams");
    }

    #[test]
    fn sensor_values_are_12_bit() {
        let mut p = Peripherals::new(42);
        for _ in 0..1000 {
            let v = p.sense();
            assert!((0..4096).contains(&v));
        }
        assert_eq!(p.sense_count(), 1000);
    }

    #[test]
    fn send_and_blink_logged() {
        let mut p = Peripherals::new(0);
        p.send(5);
        p.send(-9);
        p.blink();
        assert_eq!(p.sent(), &[5, -9]);
        assert_eq!(p.blink_count(), 1);
        p.clear_logs();
        assert!(p.sent().is_empty());
        assert_eq!(p.blink_count(), 0);
    }

    #[test]
    fn clear_logs_does_not_rewind_sensor() {
        let mut p = Peripherals::new(3);
        let first = p.sense();
        p.clear_logs();
        let second = p.sense();
        assert_ne!(first, second, "stream advances past clear");
    }
}
