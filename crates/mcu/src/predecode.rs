//! Predecoded programs: the simulator's fast dispatch format.
//!
//! [`crate::Machine::step`] re-interprets `gecko_isa` structures on every
//! step: it chases the block, matches on [`gecko_isa::Inst`], resolves
//! [`gecko_isa::Operand`]s and asks the cost/energy models what the step
//! costs. None of that depends on runtime state — a program's layout,
//! operand kinds and per-instruction costs are fixed at compile time. A
//! [`PredecodedProgram`] hoists all of it into one dense array built once
//! per compiled artifact: each program point (instruction *or* block
//! terminator) becomes a flat [`PEntry`] with its operands pre-resolved
//! into a register/immediate-split [`POp`] and its cycle and energy cost
//! precomputed, so [`crate::Machine::step_predecoded`] is a single indexed
//! load plus one match.
//!
//! The predecoded form is *purely* a re-encoding: `step_predecoded` must
//! produce bit-identical outcomes (register file, PC, events, cycles,
//! energy) to `step` on the program it was built from — the differential
//! tests in `gecko-sim` pin that across every bundled app and scheme.

use gecko_isa::{
    BinOp, BlockId, Cond, CostModel, EnergyModel, Inst, IoOp, Operand, Program, Reg, RegionId,
    Terminator, Word,
};

/// One predecoded program point: a flat operation plus its precomputed
/// cycle and energy cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PEntry {
    /// The operation, with operands resolved.
    pub op: POp,
    /// Cycles the step consumes (from [`gecko_isa::CostModel`]).
    pub cycles: u64,
    /// Energy the step consumes in nJ (from [`gecko_isa::EnergyModel`]).
    pub energy_nj: f64,
}

/// A flat, operand-resolved operation. Instruction/terminator and
/// register/immediate distinctions that [`crate::Machine::step`] re-derives
/// every step are split into variants here, so dispatch is one match with
/// no nested `Operand` resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum POp {
    /// `Mov dst, imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: Word,
    },
    /// `Mov dst, src`.
    MovReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = lhs <op> imm`.
    BinImm {
        /// The ALU operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Immediate right operand.
        imm: Word,
    },
    /// `dst = lhs <op> rhs`.
    BinReg {
        /// The ALU operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// `dst = mem[base + off]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed word offset.
        off: Word,
    },
    /// `mem[base + off] = src`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed word offset.
        off: Word,
    },
    /// A peripheral transaction.
    Io {
        /// The I/O operation.
        op: IoOp,
        /// The data register.
        reg: Reg,
    },
    /// A compiler-inserted region boundary (surfaces an event).
    Boundary {
        /// The region being committed.
        region: RegionId,
    },
    /// A compiler-inserted checkpoint store (surfaces an event).
    Checkpoint {
        /// The register to persist.
        reg: Reg,
        /// Double-buffer slot color (0 or 1).
        slot: u8,
    },
    /// No operation.
    Nop,
    /// Terminator: unconditional jump.
    Jump {
        /// Jump target block.
        target: BlockId,
    },
    /// Terminator: conditional branch against an immediate.
    BranchImm {
        /// The comparison.
        cond: Cond,
        /// Left operand register.
        lhs: Reg,
        /// Immediate right operand.
        imm: Word,
        /// Target when the condition holds.
        taken: BlockId,
        /// Target when it does not.
        fall: BlockId,
    },
    /// Terminator: conditional branch against a register.
    BranchReg {
        /// The comparison.
        cond: Cond,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Target when the condition holds.
        taken: BlockId,
        /// Target when it does not.
        fall: BlockId,
    },
    /// Terminator: halt (surfaces an event).
    Halt,
}

/// A program predecoded into one dense entry array.
///
/// Entries are laid out block by block: each block contributes its
/// instructions in order followed by one terminator entry, and
/// `base[b]` is the flat index of block `b`'s first entry. A PC
/// `(block, index)` therefore maps to entry `base[block] + index` — the
/// "index == instruction count means at-the-terminator" convention of
/// [`crate::Pc`] falls out for free.
///
/// Plain data (`Send + Sync`): campaign engines share it read-only across
/// worker threads inside a `CompiledApp`, exactly like the `Program` it
/// mirrors.
#[derive(Debug, Clone, PartialEq)]
pub struct PredecodedProgram {
    entries: Vec<PEntry>,
    base: Vec<u32>,
    max_step_cycles: u64,
    max_step_energy_nj: f64,
}

impl PredecodedProgram {
    /// Predecodes `program`, precomputing every entry's cost under the
    /// given models. The result is only valid for simulators that step
    /// with the *same* program and models.
    pub fn build(program: &Program, cost: &CostModel, energy: &EnergyModel) -> PredecodedProgram {
        let mut entries = Vec::new();
        let mut base = vec![0u32; program.block_count()];
        for (id, block) in program.blocks() {
            base[id.index()] = entries.len() as u32;
            for inst in &block.insts {
                let cycles = cost.inst_cycles(inst);
                entries.push(PEntry {
                    op: predecode_inst(inst),
                    cycles,
                    energy_nj: energy.inst_energy_nj(inst, cycles),
                });
            }
            let cycles = cost.term_cycles(&block.term);
            entries.push(PEntry {
                op: predecode_term(&block.term),
                cycles,
                energy_nj: energy.cycles_energy_nj(cycles),
            });
        }
        let max_step_cycles = entries.iter().map(|e| e.cycles).max().unwrap_or(0);
        let max_step_energy_nj = entries.iter().map(|e| e.energy_nj).fold(0.0, f64::max);
        PredecodedProgram {
            entries,
            base,
            max_step_cycles,
            max_step_energy_nj,
        }
    }

    /// The worst-case single-step cost across the whole program, as
    /// `(cycles, energy_nj)` — the maxima are taken independently, so the
    /// pair upper-bounds every entry even if no single instruction costs
    /// both. Precomputed at build time; the simulator's event-horizon
    /// stepping uses it to bound a batched segment's per-step energy and
    /// time loss without inspecting the instructions it will retire.
    #[inline]
    pub fn worst_step(&self) -> (u64, f64) {
        (self.max_step_cycles, self.max_step_energy_nj)
    }

    /// The entry at program point `(block, index)`.
    ///
    /// # Panics
    ///
    /// Panics if the point lies outside the program (which verified
    /// programs cannot produce).
    #[inline]
    pub fn entry(&self, block: BlockId, index: usize) -> PEntry {
        self.entries[self.base[block.index()] as usize + index]
    }

    /// Total number of predecoded entries (instructions + terminators).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the program predecoded to no entries (never true for a
    /// well-formed program, which has at least a terminator).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn predecode_inst(inst: &Inst) -> POp {
    match *inst {
        Inst::Mov { dst, src } => match src {
            Operand::Reg(src) => POp::MovReg { dst, src },
            Operand::Imm(imm) => POp::MovImm { dst, imm },
        },
        Inst::Bin { op, dst, lhs, rhs } => match rhs {
            Operand::Reg(rhs) => POp::BinReg { op, dst, lhs, rhs },
            Operand::Imm(imm) => POp::BinImm { op, dst, lhs, imm },
        },
        Inst::Load { dst, base, off } => POp::Load { dst, base, off },
        Inst::Store { src, base, off } => POp::Store { src, base, off },
        Inst::Io { op, reg } => POp::Io { op, reg },
        Inst::Boundary { region } => POp::Boundary { region },
        Inst::Checkpoint { reg, slot } => POp::Checkpoint { reg, slot },
        Inst::Nop => POp::Nop,
    }
}

fn predecode_term(term: &Terminator) -> POp {
    match *term {
        Terminator::Jump(target) => POp::Jump { target },
        Terminator::Branch {
            cond,
            lhs,
            rhs,
            taken,
            fall,
        } => match rhs {
            Operand::Reg(rhs) => POp::BranchReg {
                cond,
                lhs,
                rhs,
                taken,
                fall,
            },
            Operand::Imm(imm) => POp::BranchImm {
                cond,
                lhs,
                imm,
                taken,
                fall,
            },
        },
        Terminator::Halt => POp::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::ProgramBuilder;

    #[test]
    fn layout_is_dense_and_indexable() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 7);
        b.bin(BinOp::Add, Reg::R1, Reg::R1, 1);
        b.halt();
        let p = b.finish().unwrap();
        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let pre = PredecodedProgram::build(&p, &cost, &energy);
        assert!(!pre.is_empty());
        // Two instructions plus the terminator in the entry block.
        let e0 = pre.entry(p.entry(), 0);
        assert_eq!(
            e0.op,
            POp::MovImm {
                dst: Reg::R1,
                imm: 7
            }
        );
        assert_eq!(e0.cycles, cost.inst_cycles(&p.block(p.entry()).insts[0]));
        let term = pre.entry(p.entry(), p.block(p.entry()).insts.len());
        assert_eq!(term.op, POp::Halt);
    }

    #[test]
    fn costs_match_the_models() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 4, true);
        b.mov(Reg::R2, d as i32);
        b.store(Reg::R1, Reg::R2, 0);
        b.sense(Reg::R3);
        b.halt();
        let p = b.finish().unwrap();
        let cost = CostModel::default();
        let energy = EnergyModel::default();
        let pre = PredecodedProgram::build(&p, &cost, &energy);
        for (id, block) in p.blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let e = pre.entry(id, i);
                assert_eq!(e.cycles, cost.inst_cycles(inst));
                assert_eq!(e.energy_nj, energy.inst_energy_nj(inst, e.cycles));
            }
            let t = pre.entry(id, block.insts.len());
            assert_eq!(t.cycles, cost.term_cycles(&block.term));
            assert_eq!(t.energy_nj, energy.cycles_energy_nj(t.cycles));
        }
    }
}
