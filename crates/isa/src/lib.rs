//! # gecko-isa
//!
//! The instruction set architecture shared by every layer of the GECKO
//! reproduction suite: the `gecko-compiler` passes instrument programs
//! expressed in this ISA, the `gecko-mcu` interpreter executes them with
//! cycle and energy accounting, and `gecko-apps` provides benchmark
//! programs written against it.
//!
//! The ISA is a deliberately small 16-register, word-addressed load/store
//! machine modeled on FRAM-class microcontrollers (TI MSP430FR59xx family):
//! arithmetic is cheap, non-volatile memory accesses carry wait states, and
//! there is no cache — exactly the architecture contract the GECKO paper
//! (MICRO 2024) relies on.
//!
//! Programs are explicit control-flow graphs: a [`Program`] is a set of
//! [`Block`]s, each a straight-line run of [`Inst`]ructions ended by a
//! [`Terminator`]. Two pseudo-instructions exist solely for the compiler to
//! insert: [`Inst::Boundary`] (an idempotent-region boundary) and
//! [`Inst::Checkpoint`] (a compiler-directed register checkpoint store with a
//! double-buffer slot color).
//!
//! ## Example
//!
//! ```
//! use gecko_isa::{ProgramBuilder, Reg, Operand, BinOp, Cond};
//!
//! // sum = 0; for i in 0..10 { sum += i }
//! let mut b = ProgramBuilder::new("sum");
//! let (sum, i) = (Reg::R1, Reg::R2);
//! b.mov(sum, Operand::Imm(0));
//! b.mov(i, Operand::Imm(0));
//! let head = b.new_label("head");
//! let body = b.new_label("body");
//! let exit = b.new_label("exit");
//! b.jump(head);
//! b.bind(head);
//! b.set_loop_bound(10);
//! b.branch(Cond::Lt, i, Operand::Imm(10), body, exit);
//! b.bind(body);
//! b.bin(BinOp::Add, sum, sum, Operand::Reg(i));
//! b.bin(BinOp::Add, i, i, Operand::Imm(1));
//! b.jump(head);
//! b.bind(exit);
//! b.halt();
//! let program = b.finish().expect("valid program");
//! assert_eq!(program.name(), "sum");
//! ```

pub mod asm;
pub mod builder;
pub mod cost;
pub mod dot;
pub mod inst;
pub mod program;
pub mod rng;
pub mod verify;

pub use builder::ProgramBuilder;
pub use cost::{CostModel, EnergyModel};
pub use inst::{BinOp, Cond, Inst, IoOp, Operand, Reg, Terminator};
pub use program::{Block, BlockId, Program, RegionId, Segment, Word};
pub use rng::SplitMix64;
pub use verify::{verify, VerifyError};
