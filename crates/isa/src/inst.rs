//! Registers, operands, instructions and block terminators.

use std::fmt;

use crate::program::{BlockId, RegionId};

/// One of the sixteen general-purpose registers `R0`–`R15`.
///
/// Registers are the *volatile* state of the machine: they are lost on power
/// failure unless a checkpoint protocol preserves them. `R0` is a normal
/// register (there is no hard-wired zero register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    pub fn new(index: usize) -> Reg {
        assert!(index < Self::COUNT, "register index {index} out of range");
        Reg(index as u8)
    }

    /// Creates a register from its index, returning `None` when out of range.
    pub fn try_new(index: usize) -> Option<Reg> {
        (index < Self::COUNT).then_some(Reg(index as u8))
    }

    /// The register's index in `0..16`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all sixteen registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand: either a register or a 32-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the value of a register.
    Reg(Reg),
    /// A constant.
    Imm(i32),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Two-operand ALU operations.
///
/// All arithmetic is 32-bit two's-complement with wrapping semantics,
/// matching what C code compiled for a small MCU would observe. Division by
/// zero yields 0 (the interpreter does not trap), and shift amounts are
/// taken modulo 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; `x / 0 == 0`.
    Div,
    /// Signed remainder; `x % 0 == 0`.
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (amount mod 32).
    Shl,
    /// Logical shift right (amount mod 32).
    Shr,
    /// Arithmetic shift right (amount mod 32).
    Sar,
    /// Set-if-less-than (signed): `dst = (lhs < rhs) as i32`.
    Slt,
    /// Set-if-equal: `dst = (lhs == rhs) as i32`.
    Seq,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl BinOp {
    /// Applies the operation to two values.
    pub fn eval(self, lhs: i32, rhs: i32) -> i32 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => ((lhs as u32) << (rhs as u32 % 32)) as i32,
            BinOp::Shr => ((lhs as u32) >> (rhs as u32 % 32)) as i32,
            BinOp::Sar => lhs >> (rhs as u32 % 32),
            BinOp::Slt => (lhs < rhs) as i32,
            BinOp::Seq => (lhs == rhs) as i32,
            BinOp::Min => lhs.min(rhs),
            BinOp::Max => lhs.max(rhs),
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sar => "sar",
            BinOp::Slt => "slt",
            BinOp::Seq => "seq",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// All operations, for exhaustive testing.
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Sar,
            BinOp::Slt,
            BinOp::Seq,
            BinOp::Min,
            BinOp::Max,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch conditions (signed comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(self, lhs: i32, rhs: i32) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }

    /// The assembler mnemonic (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
        }
    }

    /// The logical negation of the condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Peripheral (I/O) operations.
///
/// I/O operations model the "atomic tasks" the paper describes (sensing a
/// value, sending a message over the radio, toggling an LED). The compiler
/// treats every I/O operation as its own idempotent region by placing region
/// boundaries around it (Section VI-B, "Loop and I/O operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Read the next sample from the (scripted) sensor into a register.
    Sense,
    /// Transmit a register value over the radio / UART.
    Send,
    /// Toggle the on-board LED (no register).
    Blink,
}

impl IoOp {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IoOp::Sense => "sense",
            IoOp::Send => "send",
            IoOp::Blink => "blink",
        }
    }
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single (non-terminator) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = src`.
    Mov { dst: Reg, src: Operand },
    /// `dst = op(lhs, rhs)`.
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Operand,
    },
    /// `dst = NVM[R[base] + off]` (word-addressed).
    Load { dst: Reg, base: Reg, off: i32 },
    /// `NVM[R[base] + off] = R[src]`.
    Store { src: Reg, base: Reg, off: i32 },
    /// A peripheral operation. `Sense` writes `reg`; `Send` reads `reg`;
    /// `Blink` ignores it.
    Io { op: IoOp, reg: Reg },
    /// Compiler-inserted idempotent-region boundary. At run time the GECKO /
    /// Ratchet runtime commits the region id to NVM here so that recovery
    /// knows which region to restart.
    Boundary { region: RegionId },
    /// Compiler-inserted checkpoint store: persist `reg` into the
    /// compiler-managed checkpoint array at double-buffer color `slot`
    /// (0 or 1 from the 2-coloring pass; 2 is the fix-up buffer).
    Checkpoint { reg: Reg, slot: u8 },
    /// No operation.
    Nop,
}

impl Inst {
    /// The register written by this instruction, if any.
    pub fn def(self) -> Option<Reg> {
        match self {
            Inst::Mov { dst, .. } | Inst::Bin { dst, .. } | Inst::Load { dst, .. } => Some(dst),
            Inst::Io {
                op: IoOp::Sense,
                reg,
            } => Some(reg),
            _ => None,
        }
    }

    /// The registers read by this instruction (at most two).
    pub fn uses(self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(2);
        match self {
            Inst::Mov { src, .. } => {
                if let Some(r) = src.as_reg() {
                    out.push(r);
                }
            }
            Inst::Bin { lhs, rhs, .. } => {
                out.push(lhs);
                if let Some(r) = rhs.as_reg() {
                    out.push(r);
                }
            }
            Inst::Load { base, .. } => out.push(base),
            Inst::Store { src, base, .. } => {
                out.push(src);
                out.push(base);
            }
            Inst::Io {
                op: IoOp::Send,
                reg,
            } => out.push(reg),
            Inst::Checkpoint { reg, .. } => out.push(reg),
            _ => {}
        }
        out
    }

    /// Whether this instruction reads main (non-checkpoint) NVM.
    pub fn is_mem_read(self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this instruction writes main (non-checkpoint) NVM.
    pub fn is_mem_write(self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this is a compiler-inserted pseudo-instruction.
    pub fn is_pseudo(self) -> bool {
        matches!(self, Inst::Boundary { .. } | Inst::Checkpoint { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Bin { op, dst, lhs, rhs } => write!(f, "{op} {dst}, {lhs}, {rhs}"),
            Inst::Load { dst, base, off } => write!(f, "ld {dst}, [{base}{off:+}]"),
            Inst::Store { src, base, off } => write!(f, "st {src}, [{base}{off:+}]"),
            Inst::Io { op, reg } => write!(f, "{op} {reg}"),
            Inst::Boundary { region } => write!(f, ".region {}", region.index()),
            Inst::Checkpoint { reg, slot } => write!(f, "ckpt {reg}, {slot}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

/// The control-flow terminator of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch: goes to `taken` if `cond(lhs, rhs)`, else `fall`.
    Branch {
        cond: Cond,
        lhs: Reg,
        rhs: Operand,
        taken: BlockId,
        fall: BlockId,
    },
    /// Program completed successfully.
    Halt,
}

impl Terminator {
    /// The successor blocks (0, 1 or 2 of them).
    pub fn successors(self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch { taken, fall, .. } => vec![taken, fall],
            Terminator::Halt => vec![],
        }
    }

    /// The registers read by the terminator.
    pub fn uses(self) -> Vec<Reg> {
        match self {
            Terminator::Branch { lhs, rhs, .. } => {
                let mut v = vec![lhs];
                if let Some(r) = rhs.as_reg() {
                    v.push(r);
                }
                v
            }
            _ => vec![],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Terminator::Jump(t) => write!(f, "jmp b{}", t.index()),
            Terminator::Branch {
                cond,
                lhs,
                rhs,
                taken,
                fall,
            } => write!(
                f,
                "{cond} {lhs}, {rhs} -> b{}, b{}",
                taken.index(),
                fall.index()
            ),
            Terminator::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::new(i).index(), i);
        }
        assert_eq!(Reg::all().count(), 16);
        assert!(Reg::try_new(16).is_none());
        assert_eq!(Reg::try_new(3), Some(Reg::R3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(-4, 3), -12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0, "div by zero yields 0");
        assert_eq!(BinOp::Rem.eval(7, 0), 0, "rem by zero yields 0");
        assert_eq!(BinOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Slt.eval(-1, 0), 1);
        assert_eq!(BinOp::Seq.eval(5, 5), 1);
        assert_eq!(BinOp::Min.eval(3, -7), -7);
        assert_eq!(BinOp::Max.eval(3, -7), 3);
    }

    #[test]
    fn binop_wrapping_and_shifts() {
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(BinOp::Mul.eval(i32::MAX, 2), -2);
        assert_eq!(BinOp::Shl.eval(1, 33), 2, "shift amounts are mod 32");
        assert_eq!(BinOp::Shr.eval(-1, 28), 0xF);
        assert_eq!(BinOp::Sar.eval(-16, 2), -4);
        // i32::MIN / -1 overflows in Rust; wrapping_div yields i32::MIN.
        assert_eq!(BinOp::Div.eval(i32::MIN, -1), i32::MIN);
        assert_eq!(BinOp::Rem.eval(i32::MIN, -1), 0);
    }

    #[test]
    fn cond_eval_and_negation() {
        for &(c, l, r, want) in &[
            (Cond::Eq, 1, 1, true),
            (Cond::Ne, 1, 1, false),
            (Cond::Lt, -2, -1, true),
            (Cond::Le, 5, 5, true),
            (Cond::Gt, 5, 5, false),
            (Cond::Ge, 6, 5, true),
        ] {
            assert_eq!(c.eval(l, r), want, "{c} {l} {r}");
            assert_eq!(c.negate().eval(l, r), !want, "negated {c}");
        }
    }

    #[test]
    fn inst_def_use() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg::R1,
            lhs: Reg::R2,
            rhs: Operand::Reg(Reg::R3),
        };
        assert_eq!(i.def(), Some(Reg::R1));
        assert_eq!(i.uses(), vec![Reg::R2, Reg::R3]);

        let s = Inst::Store {
            src: Reg::R4,
            base: Reg::R5,
            off: 2,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg::R4, Reg::R5]);
        assert!(s.is_mem_write());
        assert!(!s.is_mem_read());

        let sense = Inst::Io {
            op: IoOp::Sense,
            reg: Reg::R6,
        };
        assert_eq!(sense.def(), Some(Reg::R6));
        assert!(sense.uses().is_empty());

        let send = Inst::Io {
            op: IoOp::Send,
            reg: Reg::R6,
        };
        assert_eq!(send.def(), None);
        assert_eq!(send.uses(), vec![Reg::R6]);
    }

    #[test]
    fn display_formats() {
        let i = Inst::Load {
            dst: Reg::R1,
            base: Reg::R2,
            off: -3,
        };
        assert_eq!(i.to_string(), "ld r1, [r2-3]");
        assert_eq!(
            Inst::Checkpoint {
                reg: Reg::R7,
                slot: 1
            }
            .to_string(),
            "ckpt r7, 1"
        );
        assert_eq!(Operand::Imm(-5).to_string(), "-5");
    }
}
