//! Programs: control-flow graphs of basic blocks plus memory-segment
//! metadata used by the compiler's alias analysis.

use std::fmt;

use crate::inst::{Inst, Terminator};

/// The machine word. The simulator is word-addressed: addresses index words,
/// not bytes.
pub type Word = i32;

/// Identifier of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    pub fn new(index: usize) -> BlockId {
        BlockId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of an idempotent region assigned by the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region id from a raw index.
    pub fn new(index: usize) -> RegionId {
        RegionId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rg{}", self.0)
    }
}

/// A named region of main NVM, used by alias analysis to prove that two
/// memory accesses cannot touch the same word.
///
/// Applications declare their arrays as segments; a `Mov rX, imm` whose
/// immediate falls inside a segment is treated as a pointer into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name (e.g. `"coeffs"`).
    pub name: String,
    /// First word address of the segment.
    pub start: u32,
    /// Length in words.
    pub len: u32,
    /// Whether the program writes this segment. Read-only segments can never
    /// participate in anti-dependences.
    pub writable: bool,
}

impl Segment {
    /// Whether `addr` falls inside this segment.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.start + self.len
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block's instructions, executed in order.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
    /// Maximum number of times this block can execute per entry of the
    /// enclosing loop, when the block is a loop header. Required by the WCET
    /// pass for programs with loops; `None` means "not a loop header".
    pub loop_bound: Option<u32>,
    /// Optional label for diagnostics.
    pub label: Option<String>,
}

impl Block {
    /// Creates a block with the given instructions and terminator.
    pub fn new(insts: Vec<Inst>, term: Terminator) -> Block {
        Block {
            insts,
            term,
            loop_bound: None,
            label: None,
        }
    }
}

/// A program: an entry block plus a set of basic blocks forming a CFG, and
/// the memory segments its data lives in.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    blocks: Vec<Block>,
    entry: BlockId,
    segments: Vec<Segment>,
}

impl Program {
    /// Assembles a program from parts. Prefer [`crate::ProgramBuilder`],
    /// which also verifies the result.
    pub fn from_parts(
        name: impl Into<String>,
        blocks: Vec<Block>,
        entry: BlockId,
        segments: Vec<Segment>,
    ) -> Program {
        Program {
            name: name.into(),
            blocks,
            entry,
            segments,
        }
    }

    /// The program's name (used in reports and experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Access a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in index order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i), b))
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Appends a block, returning its id.
    pub fn push_block(&mut self, block: Block) -> BlockId {
        self.blocks.push(block);
        BlockId::new(self.blocks.len() - 1)
    }

    /// The declared memory segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Adds a memory segment (used by app builders).
    pub fn add_segment(&mut self, segment: Segment) {
        self.segments.push(segment);
    }

    /// Finds the segment containing `addr`, if any.
    pub fn segment_of(&self, addr: u32) -> Option<usize> {
        self.segments.iter().position(|s| s.contains(addr))
    }

    /// Successor blocks of `id`.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).term.successors()
    }

    /// Predecessor map: for each block, the blocks that branch to it.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.blocks() {
            for s in b.term.successors() {
                preds[s.index()].push(id);
            }
        }
        preds
    }

    /// Total number of (non-pseudo) instructions, a rough program size.
    pub fn inst_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.insts.iter().filter(|i| !i.is_pseudo()).count())
            .sum()
    }

    /// Number of compiler-inserted checkpoint stores.
    pub fn checkpoint_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.insts
                    .iter()
                    .filter(|i| matches!(i, Inst::Checkpoint { .. }))
                    .count()
            })
            .sum()
    }

    /// Number of region boundaries.
    pub fn boundary_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.insts
                    .iter()
                    .filter(|i| matches!(i, Inst::Boundary { .. }))
                    .count()
            })
            .sum()
    }

    /// Blocks in reverse post-order from the entry (a topological-ish order
    /// that visits definitions before uses on acyclic paths).
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit stack to avoid recursion depth
        // limits on large CFGs.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while !stack.is_empty() {
            let (id, next) = {
                let frame = stack.last_mut().expect("stack non-empty");
                let pair = (frame.0, frame.1);
                frame.1 += 1;
                pair
            };
            let succs = self.successors(id);
            if next < succs.len() {
                let s = succs[next];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(id);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {}", self.name)?;
        for seg in &self.segments {
            writeln!(
                f,
                "; segment {} @{}..{} {}",
                seg.name,
                seg.start,
                seg.end(),
                if seg.writable { "rw" } else { "ro" }
            )?;
        }
        for (id, b) in self.blocks() {
            let marker = if id == self.entry { " (entry)" } else { "" };
            let label = b.label.as_deref().unwrap_or("");
            writeln!(f, "{id}{marker}: {label}")?;
            if let Some(bound) = b.loop_bound {
                writeln!(f, "  .loop_bound {bound}")?;
            }
            for i in &b.insts {
                writeln!(f, "  {i}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Reg};

    fn two_block_program() -> Program {
        let b0 = Block::new(
            vec![Inst::Mov {
                dst: Reg::R1,
                src: Operand::Imm(1),
            }],
            Terminator::Jump(BlockId::new(1)),
        );
        let b1 = Block::new(vec![], Terminator::Halt);
        Program::from_parts("t", vec![b0, b1], BlockId::new(0), vec![])
    }

    #[test]
    fn successors_and_predecessors() {
        let p = two_block_program();
        assert_eq!(p.successors(BlockId::new(0)), vec![BlockId::new(1)]);
        assert!(p.successors(BlockId::new(1)).is_empty());
        let preds = p.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId::new(0)]);
    }

    #[test]
    fn counts() {
        let p = two_block_program();
        assert_eq!(p.inst_count(), 1);
        assert_eq!(p.checkpoint_count(), 0);
        assert_eq!(p.boundary_count(), 0);
        assert_eq!(p.block_count(), 2);
    }

    #[test]
    fn segment_lookup() {
        let mut p = two_block_program();
        p.add_segment(Segment {
            name: "a".into(),
            start: 100,
            len: 10,
            writable: true,
        });
        p.add_segment(Segment {
            name: "b".into(),
            start: 110,
            len: 5,
            writable: false,
        });
        assert_eq!(p.segment_of(100), Some(0));
        assert_eq!(p.segment_of(109), Some(0));
        assert_eq!(p.segment_of(110), Some(1));
        assert_eq!(p.segment_of(115), None);
        assert_eq!(p.segment_of(99), None);
    }

    #[test]
    fn reverse_post_order_visits_entry_first() {
        let p = two_block_program();
        let rpo = p.reverse_post_order();
        assert_eq!(rpo, vec![BlockId::new(0), BlockId::new(1)]);
    }

    #[test]
    fn rpo_handles_diamonds_and_loops() {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> 0 | halt (branch back edge)
        let b0 = Block::new(
            vec![],
            Terminator::Branch {
                cond: crate::Cond::Eq,
                lhs: Reg::R0,
                rhs: Operand::Imm(0),
                taken: BlockId::new(1),
                fall: BlockId::new(2),
            },
        );
        let b1 = Block::new(vec![], Terminator::Jump(BlockId::new(3)));
        let b2 = Block::new(vec![], Terminator::Jump(BlockId::new(3)));
        let b3 = Block::new(
            vec![],
            Terminator::Branch {
                cond: crate::Cond::Ne,
                lhs: Reg::R0,
                rhs: Operand::Imm(0),
                taken: BlockId::new(0),
                fall: BlockId::new(4),
            },
        );
        let b4 = Block::new(vec![], Terminator::Halt);
        let p = Program::from_parts("d", vec![b0, b1, b2, b3, b4], BlockId::new(0), vec![]);
        let rpo = p.reverse_post_order();
        assert_eq!(rpo.len(), 5, "all blocks reachable");
        assert_eq!(rpo[0], BlockId::new(0), "entry first");
        // 3 must come after 1 and 2 in RPO.
        let pos = |id: usize| rpo.iter().position(|b| b.index() == id).unwrap();
        assert!(pos(3) > pos(1));
        assert!(pos(3) > pos(2));
        assert!(pos(4) > pos(3));
    }

    #[test]
    fn display_contains_blocks() {
        let p = two_block_program();
        let s = p.to_string();
        assert!(s.contains("b0 (entry)"));
        assert!(s.contains("mov r1, 1"));
        assert!(s.contains("halt"));
    }
}
