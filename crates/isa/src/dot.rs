//! Graphviz (DOT) export of program CFGs — handy for inspecting what the
//! compiler passes did to a program (`dot -Tsvg` renders it).

use std::fmt::Write as _;

use crate::inst::{Inst, Terminator};
use crate::program::Program;

/// Renders the program's CFG in Graphviz DOT syntax. Region boundaries and
/// checkpoint clusters are highlighted so instrumented programs read at a
/// glance.
pub fn to_dot(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", program.name());
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (id, block) in program.blocks() {
        let mut label = String::new();
        let _ = write!(label, "{id}");
        if let Some(name) = &block.label {
            let _ = write!(label, " ({name})");
        }
        if let Some(bound) = block.loop_bound {
            let _ = write!(label, " [loop ≤{bound}]");
        }
        let _ = writeln!(label);
        for inst in &block.insts {
            let _ = writeln!(label, "{inst}");
        }
        let has_boundary = block
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Boundary { .. }));
        let style = if id == program.entry() {
            ", style=filled, fillcolor=\"#d0e8ff\""
        } else if has_boundary {
            ", style=filled, fillcolor=\"#e8ffd0\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  b{} [label=\"{}\"{}];",
            id.index(),
            label.replace('\"', "'").replace('\n', "\\l"),
            style
        );
        match block.term {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "  b{} -> b{};", id.index(), t.index());
            }
            Terminator::Branch {
                taken, fall, cond, ..
            } => {
                let _ = writeln!(
                    out,
                    "  b{} -> b{} [label=\"{}\"];",
                    id.index(),
                    taken.index(),
                    cond
                );
                let _ = writeln!(
                    out,
                    "  b{} -> b{} [label=\"else\", style=dashed];",
                    id.index(),
                    fall.index()
                );
            }
            Terminator::Halt => {
                let _ = writeln!(out, "  b{} -> halt_{};", id.index(), id.index());
                let _ = writeln!(
                    out,
                    "  halt_{} [label=\"halt\", shape=doublecircle];",
                    id.index()
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{BinOp, Cond, Reg};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("dotty");
        b.mov(Reg::R1, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(4);
        b.branch(Cond::Lt, Reg::R1, 4, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, Reg::R1, Reg::R1, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_every_block_and_edge() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph \"dotty\""));
        for b in 0..4 {
            assert!(
                dot.contains(&format!("b{b} [label=")),
                "missing b{b}:\n{dot}"
            );
        }
        assert!(dot.contains("b1 -> b2"), "taken edge");
        assert!(dot.contains("style=dashed"), "fallthrough edge");
        assert!(dot.contains("doublecircle"), "halt node");
        assert!(dot.contains("[loop ≤4]"), "loop bound annotation");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn entry_block_is_highlighted() {
        let dot = to_dot(&sample());
        assert!(dot.contains("#d0e8ff"), "entry fill colour");
    }
}
