//! Structural verification of programs.

use std::fmt;

use crate::inst::Inst;
use crate::program::{BlockId, Program};

/// A structural defect found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The entry block id is out of range.
    EntryOutOfRange,
    /// A terminator targets a non-existent block.
    BadTarget { block: BlockId, target: BlockId },
    /// Two memory segments overlap.
    OverlappingSegments { a: String, b: String },
    /// A checkpoint pseudo-instruction uses a slot other than 0, 1 or 2
    /// (2 is the compiler's fix-up buffer).
    BadCheckpointSlot { block: BlockId, slot: u8 },
    /// The program has no block ending in `halt` — it could never complete.
    NoHalt,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EntryOutOfRange => write!(f, "entry block out of range"),
            VerifyError::BadTarget { block, target } => {
                write!(f, "block {block} targets non-existent {target}")
            }
            VerifyError::OverlappingSegments { a, b } => {
                write!(f, "segments `{a}` and `{b}` overlap")
            }
            VerifyError::BadCheckpointSlot { block, slot } => {
                write!(
                    f,
                    "checkpoint in {block} has slot {slot} (must be 0, 1 or 2)"
                )
            }
            VerifyError::NoHalt => write!(f, "program has no halt terminator"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks structural invariants of a program:
/// all branch targets exist, the entry exists, segments don't overlap,
/// checkpoint slots are binary, and a `halt` exists somewhere.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    let n = program.block_count();
    if program.entry().index() >= n {
        return Err(VerifyError::EntryOutOfRange);
    }
    let mut has_halt = false;
    for (id, block) in program.blocks() {
        for target in block.term.successors() {
            if target.index() >= n {
                return Err(VerifyError::BadTarget { block: id, target });
            }
        }
        if matches!(block.term, crate::Terminator::Halt) {
            has_halt = true;
        }
        for inst in &block.insts {
            if let Inst::Checkpoint { slot, .. } = *inst {
                if slot > 2 {
                    return Err(VerifyError::BadCheckpointSlot { block: id, slot });
                }
            }
        }
    }
    if !has_halt {
        return Err(VerifyError::NoHalt);
    }
    let segs = program.segments();
    for (i, a) in segs.iter().enumerate() {
        for b in &segs[i + 1..] {
            let disjoint = a.end() <= b.start || b.end() <= a.start;
            if !disjoint {
                return Err(VerifyError::OverlappingSegments {
                    a: a.name.clone(),
                    b: b.name.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Reg, Terminator};
    use crate::program::{Block, Segment};

    fn halt_block() -> Block {
        Block::new(vec![], Terminator::Halt)
    }

    #[test]
    fn accepts_minimal_program() {
        let p = Program::from_parts("m", vec![halt_block()], BlockId::new(0), vec![]);
        assert_eq!(verify(&p), Ok(()));
    }

    #[test]
    fn rejects_bad_target() {
        let b = Block::new(vec![], Terminator::Jump(BlockId::new(9)));
        let p = Program::from_parts("m", vec![b, halt_block()], BlockId::new(0), vec![]);
        assert!(matches!(verify(&p), Err(VerifyError::BadTarget { .. })));
    }

    #[test]
    fn rejects_bad_entry() {
        let p = Program::from_parts("m", vec![halt_block()], BlockId::new(3), vec![]);
        assert_eq!(verify(&p), Err(VerifyError::EntryOutOfRange));
    }

    #[test]
    fn rejects_overlapping_segments() {
        let segs = vec![
            Segment {
                name: "a".into(),
                start: 0,
                len: 10,
                writable: true,
            },
            Segment {
                name: "b".into(),
                start: 5,
                len: 10,
                writable: true,
            },
        ];
        let p = Program::from_parts("m", vec![halt_block()], BlockId::new(0), segs);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::OverlappingSegments { .. })
        ));
    }

    #[test]
    fn rejects_bad_checkpoint_slot() {
        let b = Block::new(
            vec![Inst::Checkpoint {
                reg: Reg::R1,
                slot: 3,
            }],
            Terminator::Halt,
        );
        let p = Program::from_parts("m", vec![b], BlockId::new(0), vec![]);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::BadCheckpointSlot { slot: 3, .. })
        ));
    }

    #[test]
    fn rejects_haltless_program() {
        let b = Block::new(
            vec![Inst::Mov {
                dst: Reg::R0,
                src: Operand::Imm(1),
            }],
            Terminator::Jump(BlockId::new(0)),
        );
        let p = Program::from_parts("m", vec![b], BlockId::new(0), vec![]);
        assert_eq!(verify(&p), Err(VerifyError::NoHalt));
    }
}
