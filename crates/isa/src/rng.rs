//! The suite's only randomness source: a seeded **splitmix64** generator.
//!
//! Every stochastic element of the workspace — app input data, scripted
//! sensor peripherals, generated test programs, campaign seed sweeps —
//! draws from this one deterministic stream so that simulations are
//! bit-reproducible and the workspace needs no external `rand` crate
//! (the build must succeed on air-gapped machines).

/// Seeded splitmix64 pseudo-random generator.
///
/// The raw `state` is the splitmix64 counter; `next_u64` applies the
/// standard finalizer. Callers that historically pre-mixed their seed
/// (e.g. `seed * GOLDEN + k`) can reproduce their exact streams via
/// [`SplitMix64::from_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The splitmix64 increment (the 64-bit golden ratio).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator whose counter starts at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// A generator resuming from a raw counter value (for callers that
    /// derive the initial state themselves).
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// The raw counter (serializable; `from_state` restores it).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in `lo..hi` (half-open; `hi > lo`).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform integer in `lo..hi` (half-open; `hi > lo`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        // Span in u64 via wrapping two's-complement subtraction: correct
        // even when `hi - lo` exceeds i64::MAX (e.g. i64::MIN..i64::MAX).
        let span = (hi as u64).wrapping_sub(lo as u64);
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // 53 mantissa bits of uniformity.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }

    /// Picks an index by integer weight (weights need not be normalized).
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weights must not all be zero");
        let mut roll = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        unreachable!("roll exhausted the weight table")
    }

    /// A fresh, decorrelated child generator (for per-item streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "no short cycles: {xs:?}");
    }

    #[test]
    fn known_vector() {
        // Reference value of splitmix64(seed=0), first output.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = r.range_u64(10, 20);
            assert!((10..20).contains(&u));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            let f = r.range_f64(1.5, 2.5);
            assert!((1.5..2.5).contains(&f));
            let w = r.pick_weighted(&[4, 3, 2, 1]);
            assert!(w < 4);
        }
    }

    #[test]
    fn range_i64_survives_extreme_spans() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let full = r.range_i64(i64::MIN, i64::MAX);
            assert!(full < i64::MAX);
            let wide = r.range_i64(i64::MIN, 1);
            assert!(wide < 1);
        }
    }

    #[test]
    fn split_decorrelates() {
        let mut r = SplitMix64::new(1);
        let mut c1 = r.split();
        let mut c2 = r.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
