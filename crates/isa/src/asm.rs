//! A small textual assembler and disassembler for the ISA.
//!
//! The format mirrors [`crate::Inst`]'s `Display` output, with labels naming
//! basic blocks and `.segment` directives declaring data memory. It exists
//! for tests, examples, and for dumping instrumented programs in a readable
//! form; `assemble(disassemble(p))` round-trips every program.
//!
//! ```
//! use gecko_isa::asm::{assemble, disassemble};
//!
//! let src = r#"
//! .segment data 8 rw
//! entry:
//!     mov r1, 41
//!     add r1, r1, 1
//!     halt
//! "#;
//! let program = assemble("answer", src).expect("valid assembly");
//! assert_eq!(program.inst_count(), 2);
//! let text = disassemble(&program);
//! let again = assemble("answer", &text).expect("round-trip");
//! // Disassembly is a fixed point (labels are canonicalized to L<n>).
//! assert_eq!(disassemble(&again), text);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::inst::{BinOp, Cond, Inst, IoOp, Operand, Reg, Terminator};
use crate::program::{Block, BlockId, Program, RegionId, Segment};

/// An assembly parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Renders a program in assembly syntax accepted by [`assemble`].
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for seg in program.segments() {
        out.push_str(&format!(
            ".segment {} {} {}\n",
            seg.name,
            seg.len,
            if seg.writable { "rw" } else { "ro" }
        ));
    }
    for (id, block) in program.blocks() {
        out.push_str(&format!("L{}:\n", id.index()));
        if let Some(bound) = block.loop_bound {
            out.push_str(&format!("    .loop_bound {bound}\n"));
        }
        for inst in &block.insts {
            out.push_str("    ");
            match *inst {
                Inst::Mov { dst, src } => out.push_str(&format!("mov {dst}, {src}")),
                Inst::Bin { op, dst, lhs, rhs } => {
                    out.push_str(&format!("{op} {dst}, {lhs}, {rhs}"))
                }
                Inst::Load { dst, base, off } => {
                    out.push_str(&format!("ld {dst}, [{base}{off:+}]"))
                }
                Inst::Store { src, base, off } => {
                    out.push_str(&format!("st {src}, [{base}{off:+}]"))
                }
                Inst::Io { op, reg } => match op {
                    IoOp::Blink => out.push_str("blink"),
                    _ => out.push_str(&format!("{op} {reg}")),
                },
                Inst::Boundary { region } => out.push_str(&format!(".region {}", region.index())),
                Inst::Checkpoint { reg, slot } => out.push_str(&format!("ckpt {reg}, {slot}")),
                Inst::Nop => out.push_str("nop"),
            }
            out.push('\n');
        }
        out.push_str("    ");
        match block.term {
            Terminator::Jump(t) => out.push_str(&format!("jmp L{}\n", t.index())),
            Terminator::Branch {
                cond,
                lhs,
                rhs,
                taken,
                fall,
            } => out.push_str(&format!(
                "{cond} {lhs}, {rhs}, L{}, L{}\n",
                taken.index(),
                fall.index()
            )),
            Terminator::Halt => out.push_str("halt\n"),
        }
    }
    out
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let rest = tok
        .strip_prefix('r')
        .or_else(|| tok.strip_prefix('R'))
        .ok_or(())
        .or_else(|_| err(line, format!("expected register, got `{tok}`")))?;
    let idx: usize = rest
        .parse()
        .or_else(|_| err(line, format!("bad register `{tok}`")))?;
    Reg::try_new(idx).ok_or(()).or_else(|_| {
        err(
            line,
            format!("register index {idx} out of range (0..{})", Reg::COUNT),
        )
    })
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    if tok.starts_with('r') || tok.starts_with('R') {
        if let Ok(r) = parse_reg(tok, line) {
            return Ok(Operand::Reg(r));
        }
    }
    let v: i32 = tok
        .parse()
        .or_else(|_| err(line, format!("bad operand `{tok}`")))?;
    Ok(Operand::Imm(v))
}

/// Parses `[rN+off]` / `[rN-off]` / `[rN]`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or(())
        .or_else(|_| err(line, format!("expected memory operand, got `{tok}`")))?;
    let split = inner[1..].find(['+', '-']).map(|i| i + 1);
    match split {
        Some(i) => {
            let base = parse_reg(&inner[..i], line)?;
            let off: i32 = inner[i..]
                .parse()
                .or_else(|_| err(line, format!("bad offset in `{tok}`")))?;
            Ok((base, off))
        }
        None => Ok((parse_reg(inner, line)?, 0)),
    }
}

fn binop_from_mnemonic(m: &str) -> Option<BinOp> {
    BinOp::all().iter().copied().find(|op| op.mnemonic() == m)
}

fn cond_from_mnemonic(m: &str) -> Option<Cond> {
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge]
        .into_iter()
        .find(|c| c.mnemonic() == m)
}

/// Parses assembly text into a [`Program`] named `name`.
///
/// The first label in the file is the entry block. Every block must end in
/// an explicit terminator (`jmp`, a branch, or `halt`).
///
/// # Errors
///
/// Returns an [`AsmError`] pointing at the offending line.
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    // Pass 1: collect labels in order of appearance.
    let mut label_ids: HashMap<String, BlockId> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for (ln, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() {
                return err(ln + 1, "empty label");
            }
            if label_ids.contains_key(label) {
                return err(ln + 1, format!("duplicate label `{label}`"));
            }
            label_ids.insert(label.to_string(), BlockId::new(order.len()));
            order.push(label.to_string());
        }
    }
    if order.is_empty() {
        return err(1, "no labels: a program needs at least one block");
    }

    let lookup = |tok: &str, line: usize| -> Result<BlockId, AsmError> {
        label_ids
            .get(tok)
            .copied()
            .ok_or(())
            .or_else(|_| err(line, format!("unknown label `{tok}`")))
    };

    // Pass 2: parse.
    let mut segments: Vec<Segment> = Vec::new();
    let mut next_seg_start = 0u32;
    let mut blocks: Vec<Option<Block>> = vec![None; order.len()];
    let mut cur: Option<(BlockId, Vec<Inst>, Option<u32>, String)> = None;

    for (ln0, raw) in source.lines().enumerate() {
        let ln = ln0 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            if cur.is_some() {
                return err(ln, "previous block missing terminator");
            }
            let label = label.trim().to_string();
            let id = label_ids[&label];
            cur = Some((id, Vec::new(), None, label));
            continue;
        }
        // Tokenize: mnemonic, then comma-separated operands.
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        let args: Vec<&str> = if rest.is_empty() {
            vec![]
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let argn = |want: usize| -> Result<(), AsmError> {
            if args.len() == want {
                Ok(())
            } else {
                err(
                    ln,
                    format!("`{mnemonic}` wants {want} operands, got {}", args.len()),
                )
            }
        };

        if mnemonic == ".segment" {
            if cur.is_some() {
                return err(ln, ".segment must appear before the first label");
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 {
                return err(ln, ".segment wants: name len rw|ro");
            }
            let len: u32 = parts[1]
                .parse()
                .or_else(|_| err(ln, format!("bad segment length `{}`", parts[1])))?;
            let writable = match parts[2] {
                "rw" => true,
                "ro" => false,
                other => return err(ln, format!("bad segment mode `{other}`")),
            };
            segments.push(Segment {
                name: parts[0].to_string(),
                start: next_seg_start,
                len,
                writable,
            });
            next_seg_start += len;
            continue;
        }

        let Some((_, insts, loop_bound, _)) = cur.as_mut() else {
            return err(ln, "instruction before first label");
        };

        match mnemonic {
            ".loop_bound" => {
                let b: u32 = rest
                    .parse()
                    .or_else(|_| err(ln, format!("bad loop bound `{rest}`")))?;
                *loop_bound = Some(b);
            }
            ".region" => {
                let r: usize = rest
                    .parse()
                    .or_else(|_| err(ln, format!("bad region id `{rest}`")))?;
                insts.push(Inst::Boundary {
                    region: RegionId::new(r),
                });
            }
            "mov" => {
                argn(2)?;
                insts.push(Inst::Mov {
                    dst: parse_reg(args[0], ln)?,
                    src: parse_operand(args[1], ln)?,
                });
            }
            "ld" => {
                argn(2)?;
                let (base, off) = parse_mem(args[1], ln)?;
                insts.push(Inst::Load {
                    dst: parse_reg(args[0], ln)?,
                    base,
                    off,
                });
            }
            "st" => {
                argn(2)?;
                let (base, off) = parse_mem(args[1], ln)?;
                insts.push(Inst::Store {
                    src: parse_reg(args[0], ln)?,
                    base,
                    off,
                });
            }
            "sense" => {
                argn(1)?;
                insts.push(Inst::Io {
                    op: IoOp::Sense,
                    reg: parse_reg(args[0], ln)?,
                });
            }
            "send" => {
                argn(1)?;
                insts.push(Inst::Io {
                    op: IoOp::Send,
                    reg: parse_reg(args[0], ln)?,
                });
            }
            "blink" => {
                argn(0)?;
                insts.push(Inst::Io {
                    op: IoOp::Blink,
                    reg: Reg::R0,
                });
            }
            "ckpt" => {
                argn(2)?;
                let slot: u8 = args[1]
                    .parse()
                    .or_else(|_| err(ln, format!("bad slot `{}`", args[1])))?;
                insts.push(Inst::Checkpoint {
                    reg: parse_reg(args[0], ln)?,
                    slot,
                });
            }
            "nop" => {
                argn(0)?;
                insts.push(Inst::Nop);
            }
            "jmp" => {
                argn(1)?;
                let target = lookup(args[0], ln)?;
                finish_block(&mut cur, &mut blocks, Terminator::Jump(target));
            }
            "halt" => {
                argn(0)?;
                finish_block(&mut cur, &mut blocks, Terminator::Halt);
            }
            m => {
                if let Some(cond) = cond_from_mnemonic(m) {
                    argn(4)?;
                    let term = Terminator::Branch {
                        cond,
                        lhs: parse_reg(args[0], ln)?,
                        rhs: parse_operand(args[1], ln)?,
                        taken: lookup(args[2], ln)?,
                        fall: lookup(args[3], ln)?,
                    };
                    finish_block(&mut cur, &mut blocks, term);
                } else if let Some(op) = binop_from_mnemonic(m) {
                    argn(3)?;
                    insts.push(Inst::Bin {
                        op,
                        dst: parse_reg(args[0], ln)?,
                        lhs: parse_reg(args[1], ln)?,
                        rhs: parse_operand(args[2], ln)?,
                    });
                } else {
                    return err(ln, format!("unknown mnemonic `{m}`"));
                }
            }
        }
    }
    if cur.is_some() {
        return err(source.lines().count(), "last block missing terminator");
    }
    let mut final_blocks = Vec::with_capacity(order.len());
    for (i, b) in blocks.into_iter().enumerate() {
        match b {
            Some(b) => final_blocks.push(b),
            None => return err(0, format!("label `{}` has no block body", order[i])),
        }
    }
    Ok(Program::from_parts(
        name,
        final_blocks,
        BlockId::new(0),
        segments,
    ))
}

fn finish_block(
    cur: &mut Option<(BlockId, Vec<Inst>, Option<u32>, String)>,
    blocks: &mut [Option<Block>],
    term: Terminator,
) {
    let (id, insts, loop_bound, label) = cur.take().expect("finish_block with open block");
    let mut block = Block::new(insts, term);
    block.loop_bound = loop_bound;
    block.label = Some(label);
    blocks[id.index()] = Some(block);
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str = r#"
        ; a counted loop with I/O
        .segment data 4 rw
        entry:
            mov r1, 0
            mov r2, 0
            jmp head
        head:
            .loop_bound 8
            blt r1, 8, body, exit
        body:
            add r2, r2, r1
            add r1, r1, 1
            jmp head
        exit:
            mov r3, 0
            st r2, [r3+0]
            send r2
            halt
    "#;

    #[test]
    fn assembles_loop() {
        let p = assemble("loop", LOOP).unwrap();
        assert_eq!(p.block_count(), 4);
        assert_eq!(p.segments().len(), 1);
        assert_eq!(p.block(BlockId::new(1)).loop_bound, Some(8));
        crate::verify(&p).unwrap();
    }

    #[test]
    fn round_trips() {
        let p = assemble("loop", LOOP).unwrap();
        let text = disassemble(&p);
        let q = assemble("loop", &text).unwrap();
        // Labels differ (L0 vs entry) but structure must be identical.
        assert_eq!(p.block_count(), q.block_count());
        for (id, b) in p.blocks() {
            let qb = q.block(id);
            assert_eq!(b.insts, qb.insts, "{id}");
            assert_eq!(b.term, qb.term, "{id}");
            assert_eq!(b.loop_bound, qb.loop_bound, "{id}");
        }
        assert_eq!(p.segments(), q.segments());
    }

    #[test]
    fn pseudo_instructions_round_trip() {
        let src = r#"
        entry:
            .region 3
            ckpt r5, 1
            mov r5, -7
            halt
        "#;
        let p = assemble("pseudo", src).unwrap();
        let q = assemble("pseudo", &disassemble(&p)).unwrap();
        assert_eq!(
            p.block(BlockId::new(0)).insts,
            q.block(BlockId::new(0)).insts
        );
    }

    #[test]
    fn memory_operand_forms() {
        let src = r#"
        entry:
            mov r2, 10
            ld r1, [r2]
            ld r1, [r2+4]
            st r1, [r2-2]
            halt
        "#;
        let p = assemble("mem", src).unwrap();
        let insts = &p.block(BlockId::new(0)).insts;
        assert_eq!(
            insts[1],
            Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                off: 0
            }
        );
        assert_eq!(
            insts[2],
            Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                off: 4
            }
        );
        assert_eq!(
            insts[3],
            Inst::Store {
                src: Reg::R1,
                base: Reg::R2,
                off: -2
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("bad", "entry:\n    bogus r1\n    halt\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn missing_terminator_is_error() {
        let e = assemble("bad", "entry:\n    mov r1, 1\nnext:\n    halt\n").unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    #[test]
    fn unknown_label_is_error() {
        let e = assemble("bad", "entry:\n    jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = assemble("bad", "a:\n    halt\na:\n    halt\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn register_bounds_checked() {
        let e = assemble("bad", "entry:\n    mov r16, 0\n    halt\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }
}
