//! Cycle and energy cost models.
//!
//! Modeled on a 16 MHz FRAM-class MCU (MSP430FR5994 with FRAM wait states):
//! ALU operations are single-cycle, multiplies and divides are multi-cycle
//! (no hardware divider), and every NVM access pays wait states. The
//! absolute values are representative, not board-exact — the experiments
//! report *relative* numbers (normalized execution time, progress rates),
//! which depend only on the cost ratios.

use crate::inst::{BinOp, Inst, Terminator};

/// Cycle costs per instruction class.
///
/// Checkpoint stores and boundary commits are cheaper than general data
/// stores: they target fixed, adjacent addresses in the dedicated
/// checkpoint area, which the FRAM write buffer streams without the
/// random-access wait states a data store pays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU op / register move.
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder (software-assisted on MSP430-class parts).
    pub div: u64,
    /// NVM (FRAM) read.
    pub load: u64,
    /// NVM (FRAM) write.
    pub store: u64,
    /// Peripheral transaction (sensor read, radio send, LED).
    pub io: u64,
    /// Region boundary: the runtime commits the current region id to NVM.
    pub boundary: u64,
    /// Compiler-directed checkpoint store (one register to NVM, indexed).
    pub checkpoint: u64,
    /// Control transfer.
    pub branch: u64,
    /// Core clock frequency in Hz, to convert cycles to time.
    pub clock_hz: u64,
}

impl CostModel {
    /// The reference MSP430FR5994-like cost model used throughout the suite.
    pub const fn msp430fr5994() -> CostModel {
        CostModel {
            alu: 1,
            mul: 5,
            div: 20,
            load: 2,
            store: 3,
            boundary: 2,
            checkpoint: 1,
            io: 120,
            branch: 2,
            clock_hz: 16_000_000,
        }
    }

    /// Cycles to execute one instruction.
    pub fn inst_cycles(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Mov { .. } => self.alu,
            Inst::Bin { op, .. } => match op {
                BinOp::Mul => self.mul,
                BinOp::Div | BinOp::Rem => self.div,
                _ => self.alu,
            },
            Inst::Load { .. } => self.load,
            Inst::Store { .. } => self.store,
            Inst::Io { .. } => self.io,
            Inst::Boundary { .. } => self.boundary,
            Inst::Checkpoint { .. } => self.checkpoint,
            Inst::Nop => 1,
        }
    }

    /// Cycles to execute a terminator.
    pub fn term_cycles(&self, term: &Terminator) -> u64 {
        match term {
            Terminator::Jump(_) | Terminator::Branch { .. } => self.branch,
            Terminator::Halt => 1,
        }
    }

    /// Converts a cycle count to seconds at the model's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Converts a cycle count to microseconds.
    pub fn cycles_to_micros(&self, cycles: u64) -> f64 {
        self.cycles_to_seconds(cycles) * 1e6
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::msp430fr5994()
    }
}

/// Energy costs, in nanojoules.
///
/// At 3.3 V and ~0.9 mA active current a 16 MHz MCU draws ~3 mW, i.e.
/// ~0.19 nJ per cycle; FRAM writes add write energy on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per active CPU cycle (nJ).
    pub per_cycle_nj: f64,
    /// Extra energy per NVM write (store / checkpoint / boundary commit), nJ.
    pub nvm_write_extra_nj: f64,
    /// Extra energy per peripheral transaction, nJ.
    pub io_extra_nj: f64,
    /// Sleep (hibernation) power draw in nanowatts, drawn while off/charging.
    pub sleep_nw: f64,
}

impl EnergyModel {
    /// The reference MSP430FR5994-like energy model.
    pub const fn msp430fr5994() -> EnergyModel {
        EnergyModel {
            per_cycle_nj: 0.19,
            nvm_write_extra_nj: 0.35,
            io_extra_nj: 40.0,
            sleep_nw: 250.0,
        }
    }

    /// Energy to execute one instruction given its cycle count.
    pub fn inst_energy_nj(&self, inst: &Inst, cycles: u64) -> f64 {
        let mut e = self.per_cycle_nj * cycles as f64;
        match inst {
            Inst::Store { .. } | Inst::Checkpoint { .. } | Inst::Boundary { .. } => {
                e += self.nvm_write_extra_nj;
            }
            Inst::Io { .. } => e += self.io_extra_nj,
            _ => {}
        }
        e
    }

    /// Energy for `cycles` of plain execution (terminators, restores...).
    pub fn cycles_energy_nj(&self, cycles: u64) -> f64 {
        self.per_cycle_nj * cycles as f64
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::msp430fr5994()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Reg};

    #[test]
    fn alu_cheaper_than_memory_cheaper_than_io() {
        let c = CostModel::default();
        let alu = c.inst_cycles(&Inst::Mov {
            dst: Reg::R0,
            src: Operand::Imm(0),
        });
        let ld = c.inst_cycles(&Inst::Load {
            dst: Reg::R0,
            base: Reg::R1,
            off: 0,
        });
        let io = c.inst_cycles(&Inst::Io {
            op: crate::IoOp::Sense,
            reg: Reg::R0,
        });
        assert!(alu < ld && ld < io);
    }

    #[test]
    fn div_slowest_alu() {
        let c = CostModel::default();
        let mk = |op| Inst::Bin {
            op,
            dst: Reg::R0,
            lhs: Reg::R1,
            rhs: Operand::Imm(1),
        };
        assert!(c.inst_cycles(&mk(BinOp::Div)) > c.inst_cycles(&mk(BinOp::Mul)));
        assert!(c.inst_cycles(&mk(BinOp::Mul)) > c.inst_cycles(&mk(BinOp::Add)));
    }

    #[test]
    fn time_conversion() {
        let c = CostModel::default();
        assert!((c.cycles_to_seconds(16_000_000) - 1.0).abs() < 1e-12);
        assert!((c.cycles_to_micros(16) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn store_energy_exceeds_mov_energy() {
        let c = CostModel::default();
        let e = EnergyModel::default();
        let mov = Inst::Mov {
            dst: Reg::R0,
            src: Operand::Imm(0),
        };
        let st = Inst::Store {
            src: Reg::R0,
            base: Reg::R1,
            off: 0,
        };
        let e_mov = e.inst_energy_nj(&mov, c.inst_cycles(&mov));
        let e_st = e.inst_energy_nj(&st, c.inst_cycles(&st));
        assert!(e_st > e_mov);
    }

    #[test]
    fn checkpoint_pays_nvm_write_energy() {
        let e = EnergyModel::default();
        let ck = Inst::Checkpoint {
            reg: Reg::R1,
            slot: 0,
        };
        let nop = Inst::Nop;
        assert!(e.inst_energy_nj(&ck, 5) > e.inst_energy_nj(&nop, 5));
    }
}
