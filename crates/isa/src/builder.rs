//! Ergonomic construction of [`Program`]s.
//!
//! The builder keeps an implicit "current block"; instructions are appended
//! to it until a terminator (`jump`, `branch`, `halt`) ends it. [`ProgramBuilder::bind`]
//! starts the block for a previously created label. If `bind` is called while
//! the current block has no terminator yet, the builder inserts a fall-through
//! jump to the label being bound, mirroring assembler conventions.

use std::collections::HashMap;
use std::fmt;

use crate::inst::{BinOp, Cond, Inst, IoOp, Operand, Reg, Terminator};
use crate::program::{Block, BlockId, Program, Segment};
use crate::verify::{verify, VerifyError};

/// Error produced by [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was created with `new_label` but never bound with `bind`.
    UnboundLabel(String),
    /// The final block has no terminator.
    UnterminatedBlock,
    /// A label was bound twice.
    RebindLabel(String),
    /// The finished program failed verification.
    Verify(VerifyError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label `{l}` was never bound"),
            BuildError::UnterminatedBlock => write!(f, "final block has no terminator"),
            BuildError::RebindLabel(l) => write!(f, "label `{l}` bound twice"),
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<VerifyError> for BuildError {
    fn from(e: VerifyError) -> BuildError {
        BuildError::Verify(e)
    }
}

/// Incremental builder for [`Program`]s. See the crate-level example.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<Option<Block>>,
    labels: HashMap<usize, String>,
    bound: Vec<bool>,
    current: Option<CurrentBlock>,
    segments: Vec<Segment>,
    next_segment_start: u32,
}

#[derive(Debug)]
struct CurrentBlock {
    id: BlockId,
    insts: Vec<Inst>,
    loop_bound: Option<u32>,
    label: Option<String>,
}

impl ProgramBuilder {
    /// Creates a builder; the entry block is open and current.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            blocks: vec![None],
            labels: HashMap::new(),
            bound: vec![true],
            current: Some(CurrentBlock {
                id: BlockId::new(0),
                insts: Vec::new(),
                loop_bound: None,
                label: Some("entry".to_string()),
            }),
            segments: Vec::new(),
            next_segment_start: 0,
        }
    }

    /// Creates a fresh label (a future block) with a diagnostic name.
    pub fn new_label(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(None);
        self.bound.push(false);
        self.labels.insert(id.index(), name.into());
        id
    }

    /// Starts emitting into `label`'s block. If the current block is still
    /// open, a fall-through jump to `label` is inserted first.
    ///
    /// # Panics
    ///
    /// Panics if `label` is already bound (programming error in the caller).
    pub fn bind(&mut self, label: BlockId) {
        if self.current.is_some() {
            self.terminate(Terminator::Jump(label));
        }
        assert!(
            !self.bound[label.index()],
            "label {label} bound twice (use distinct labels)"
        );
        self.bound[label.index()] = true;
        self.current = Some(CurrentBlock {
            id: label,
            insts: Vec::new(),
            loop_bound: None,
            label: self.labels.get(&label.index()).cloned(),
        });
    }

    /// Declares a maximum trip count for the current (loop-header) block.
    /// Required by the compiler's WCET analysis for every loop header.
    ///
    /// # Panics
    ///
    /// Panics if no block is open.
    pub fn set_loop_bound(&mut self, bound: u32) {
        self.cur().loop_bound = Some(bound);
    }

    /// Declares a data segment of `len` words and returns its start address.
    /// Segments are laid out consecutively from address 0.
    pub fn segment(&mut self, name: impl Into<String>, len: u32, writable: bool) -> u32 {
        let start = self.next_segment_start;
        self.segments.push(Segment {
            name: name.into(),
            start,
            len,
            writable,
        });
        self.next_segment_start = start + len;
        start
    }

    fn cur(&mut self) -> &mut CurrentBlock {
        self.current
            .as_mut()
            .expect("no open block: bind a label before emitting instructions")
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.cur().insts.push(inst);
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.push(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `dst = op(lhs, rhs)`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: impl Into<Operand>) {
        self.push(Inst::Bin {
            op,
            dst,
            lhs,
            rhs: rhs.into(),
        });
    }

    /// `dst = NVM[base + off]`.
    pub fn load(&mut self, dst: Reg, base: Reg, off: i32) {
        self.push(Inst::Load { dst, base, off });
    }

    /// `NVM[base + off] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, off: i32) {
        self.push(Inst::Store { src, base, off });
    }

    /// `dst = sensor.next()`.
    pub fn sense(&mut self, dst: Reg) {
        self.push(Inst::Io {
            op: IoOp::Sense,
            reg: dst,
        });
    }

    /// Transmit `src`.
    pub fn send(&mut self, src: Reg) {
        self.push(Inst::Io {
            op: IoOp::Send,
            reg: src,
        });
    }

    /// Toggle the LED.
    pub fn blink(&mut self) {
        self.push(Inst::Io {
            op: IoOp::Blink,
            reg: Reg::R0,
        });
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.push(Inst::Nop);
    }

    fn terminate(&mut self, term: Terminator) {
        let cur = self
            .current
            .take()
            .expect("no open block to terminate: bind a label first");
        let mut block = Block::new(cur.insts, term);
        block.loop_bound = cur.loop_bound;
        block.label = cur.label;
        self.blocks[cur.id.index()] = Some(block);
    }

    /// Ends the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Ends the current block with a conditional branch.
    pub fn branch(
        &mut self,
        cond: Cond,
        lhs: Reg,
        rhs: impl Into<Operand>,
        taken: BlockId,
        fall: BlockId,
    ) {
        self.terminate(Terminator::Branch {
            cond,
            lhs,
            rhs: rhs.into(),
            taken,
            fall,
        });
    }

    /// Ends the current block with `halt`.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    /// Finishes and verifies the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when a label is unbound, the last block is
    /// unterminated, or verification fails.
    pub fn finish(self) -> Result<Program, BuildError> {
        if self.current.is_some() {
            return Err(BuildError::UnterminatedBlock);
        }
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.into_iter().enumerate() {
            match b {
                Some(b) => blocks.push(b),
                None => {
                    let name = self
                        .labels
                        .get(&i)
                        .cloned()
                        .unwrap_or_else(|| format!("b{i}"));
                    return Err(BuildError::UnboundLabel(name));
                }
            }
        }
        let program = Program::from_parts(self.name, blocks, BlockId::new(0), self.segments);
        verify(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = ProgramBuilder::new("p");
        b.mov(Reg::R1, 7);
        b.bin(BinOp::Add, Reg::R1, Reg::R1, 1);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.inst_count(), 2);
    }

    #[test]
    fn fallthrough_bind_inserts_jump() {
        let mut b = ProgramBuilder::new("p");
        b.mov(Reg::R1, 1);
        let next = b.new_label("next");
        b.bind(next); // current block still open: auto fall-through
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.block(p.entry()).term, Terminator::Jump(next));
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new("p");
        let dangling = b.new_label("dangling");
        b.jump(dangling);
        assert_eq!(b.finish(), Err(BuildError::UnboundLabel("dangling".into())));
    }

    #[test]
    fn unterminated_is_error() {
        let mut b = ProgramBuilder::new("p");
        b.mov(Reg::R1, 1);
        assert_eq!(b.finish(), Err(BuildError::UnterminatedBlock));
    }

    #[test]
    fn segments_are_consecutive() {
        let mut b = ProgramBuilder::new("p");
        let a = b.segment("a", 16, true);
        let c = b.segment("c", 8, false);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(a, 0);
        assert_eq!(c, 16);
        assert_eq!(p.segments().len(), 2);
        assert!(!p.segments()[1].writable);
    }

    #[test]
    fn loop_with_bound() {
        let mut b = ProgramBuilder::new("loop");
        b.mov(Reg::R1, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(4);
        b.branch(Cond::Lt, Reg::R1, 4, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, Reg::R1, Reg::R1, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.block(head).loop_bound, Some(4));
        assert_eq!(p.block(body).loop_bound, None);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("p");
        let l = b.new_label("l");
        b.bind(l);
        b.halt();
        b.bind(l);
    }
}
