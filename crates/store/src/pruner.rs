//! The reth-shaped pruning machinery: a [`Segment`] per prunable data
//! kind, driven by a [`Pruner`] that hands each segment a `delete_limit`
//! work budget per tick and persists the returned [`PruneCheckpoint`]s.
//!
//! The lifecycle, per tick and per segment, mirrors the reth pruner:
//!
//! 1. Load the segment's checkpoint — if one exists, prune from the next
//!    entry after the highest pruned one; otherwise prune from the start.
//! 2. Call [`Segment::prune`] with the remaining budget.
//! 3. Persist the returned checkpoint (atomically), then subtract the
//!    entries pruned from the next segment's budget.
//!
//! Structural mutations happen *inside* `prune` (tmp + `sync_all` +
//! rename) and the checkpoint is saved *after*, so a kill between the two
//! re-runs an idempotent prune rather than losing data.

use crate::checkpoint::{CheckpointStore, PruneCheckpoint};
use std::path::Path;

/// Errors the pruning machinery can surface.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A segment reported an internal inconsistency (e.g. a classifier
    /// returned the wrong number of verdicts).
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What a [`Segment`] is handed for one prune call.
#[derive(Debug, Clone, Copy)]
pub struct PruneInput {
    /// Maximum entries this call may delete. Never zero.
    pub delete_limit: usize,
    /// Where the previous call left off (`None` on the first ever call:
    /// prune from the start).
    pub checkpoint: Option<PruneCheckpoint>,
}

/// What a [`Segment::prune`] call reports back.
#[derive(Debug, Clone, Copy)]
pub struct PruneOutput {
    /// Entries actually deleted (charged against the tick's budget).
    pub pruned: usize,
    /// Bytes reclaimed by this call.
    pub reclaimed_bytes: u64,
    /// `true` when nothing prunable remains *right now* — the segment ran
    /// to its end rather than out of budget.
    pub done: bool,
    /// The checkpoint to persist for the next call.
    pub checkpoint: PruneCheckpoint,
}

/// One prunable data kind (run records, chunk records, telemetry events,
/// finished job directories...). Implementations must be idempotent: a
/// kill after the mutation but before the checkpoint save re-runs the
/// same prune, which must be a no-op-or-equivalent.
pub trait Segment {
    /// Stable identifier — keys the persisted checkpoint.
    fn kind(&self) -> &str;

    /// Prunes up to `input.delete_limit` entries starting from
    /// `input.checkpoint`.
    ///
    /// # Errors
    ///
    /// I/O or consistency errors; the pruner surfaces them and retries on
    /// a later tick.
    fn prune(&self, input: PruneInput) -> Result<PruneOutput, StoreError>;
}

/// What one [`Pruner::tick`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Entries deleted across all segments this tick.
    pub pruned: u64,
    /// Bytes reclaimed across all segments this tick.
    pub reclaimed_bytes: u64,
    /// Every segment reported `done` and the budget was never exhausted —
    /// the store is fully pruned until new data arrives.
    pub done: bool,
}

/// Drives a set of [`Segment`]s under a per-tick `delete_limit` budget,
/// persisting one [`PruneCheckpoint`] per segment kind.
pub struct Pruner {
    segments: Vec<Box<dyn Segment + Send>>,
    checkpoints: CheckpointStore,
    delete_limit: usize,
    ticks: u64,
}

impl Pruner {
    /// Opens a pruner whose checkpoints persist at `checkpoint_path`.
    /// `delete_limit` is the per-tick entry budget (0 means unlimited).
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-file read errors.
    pub fn open(checkpoint_path: &Path, delete_limit: usize) -> std::io::Result<Pruner> {
        Ok(Pruner {
            segments: Vec::new(),
            checkpoints: CheckpointStore::open(checkpoint_path)?,
            delete_limit: if delete_limit == 0 {
                usize::MAX
            } else {
                delete_limit
            },
            ticks: 0,
        })
    }

    /// Registers a segment. Segments are pruned in registration order
    /// each tick, earlier ones getting first claim on the budget.
    pub fn add<S: Segment + Send + 'static>(&mut self, segment: S) {
        self.segments.push(Box::new(segment));
    }

    /// The persisted checkpoints (for stats surfacing).
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Ticks run so far on this pruner instance.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Runs one budgeted prune pass over every segment.
    ///
    /// # Errors
    ///
    /// The first segment error aborts the tick (already-persisted
    /// checkpoints stand; the next tick resumes from them).
    pub fn tick(&mut self) -> Result<TickReport, StoreError> {
        self.ticks += 1;
        let mut report = TickReport {
            done: true,
            ..TickReport::default()
        };
        let mut budget = self.delete_limit;
        for segment in &self.segments {
            if budget == 0 {
                report.done = false;
                break;
            }
            let input = PruneInput {
                delete_limit: budget,
                checkpoint: self.checkpoints.get(segment.kind()),
            };
            let out = segment.prune(input)?;
            self.checkpoints.save(segment.kind(), out.checkpoint)?;
            budget = budget.saturating_sub(out.pruned);
            report.pruned += out.pruned as u64;
            report.reclaimed_bytes += out.reclaimed_bytes;
            if !out.done {
                report.done = false;
            }
        }
        Ok(report)
    }
}

impl std::fmt::Debug for Pruner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pruner({} segments, delete_limit {}, {} ticks)",
            self.segments.len(),
            self.delete_limit,
            self.ticks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A fake segment with `total` prunable entries; each prune call
    /// deletes up to the budget and checkpoints its progress.
    struct Counted {
        kind: &'static str,
        total: u64,
        calls: Arc<AtomicUsize>,
    }

    impl Segment for Counted {
        fn kind(&self) -> &str {
            self.kind
        }

        fn prune(&self, input: PruneInput) -> Result<PruneOutput, StoreError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let mut cp = input.checkpoint.unwrap_or_default();
            let left = self.total - cp.next_segment;
            let take = (input.delete_limit as u64).min(left);
            cp.next_segment += take;
            cp.pruned_entries += take;
            Ok(PruneOutput {
                pruned: take as usize,
                reclaimed_bytes: take * 10,
                done: cp.next_segment == self.total,
                checkpoint: cp,
            })
        }
    }

    #[test]
    fn budget_is_shared_across_segments_and_progress_persists() {
        let dir = std::env::temp_dir().join(format!("gecko-store-pruner-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prune.json");
        let calls = Arc::new(AtomicUsize::new(0));

        let mut pruner = Pruner::open(&path, 8).unwrap();
        pruner.add(Counted {
            kind: "a",
            total: 5,
            calls: Arc::clone(&calls),
        });
        pruner.add(Counted {
            kind: "b",
            total: 9,
            calls: Arc::clone(&calls),
        });

        // Tick 1: a takes 5, b takes the remaining 3.
        let t = pruner.tick().unwrap();
        assert_eq!(t.pruned, 8);
        assert!(!t.done);
        assert_eq!(pruner.checkpoints().get("b").unwrap().next_segment, 3);

        // "Kill" the pruner; a fresh one resumes from the persisted
        // checkpoints and finishes b.
        drop(pruner);
        let mut pruner = Pruner::open(&path, 8).unwrap();
        pruner.add(Counted {
            kind: "a",
            total: 5,
            calls: Arc::clone(&calls),
        });
        pruner.add(Counted {
            kind: "b",
            total: 9,
            calls: Arc::clone(&calls),
        });
        let t = pruner.tick().unwrap();
        assert_eq!(t.pruned, 6);
        assert!(t.done);
        assert_eq!(pruner.checkpoints().get("a").unwrap().pruned_entries, 5);
        assert_eq!(pruner.checkpoints().get("b").unwrap().pruned_entries, 9);
        assert_eq!(pruner.ticks(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_delete_limit_means_unlimited() {
        let dir = std::env::temp_dir().join(format!("gecko-store-pruner0-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut pruner = Pruner::open(&dir.join("prune.json"), 0).unwrap();
        pruner.add(Counted {
            kind: "big",
            total: 1_000_000,
            calls: Arc::new(AtomicUsize::new(0)),
        });
        let t = pruner.tick().unwrap();
        assert_eq!(t.pruned, 1_000_000);
        assert!(t.done);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
