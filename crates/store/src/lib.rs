//! # gecko-store — segmented on-disk store with budgeted, resumable pruning
//!
//! PR 4's run journal and PR 6's per-job telemetry files are append-only:
//! a long-running daemon grows them without bound. This crate is the
//! retention layer underneath them, practicing the same crash-consistency
//! discipline the simulator models — every structural change to the store
//! is *interruption-safe at any byte*, and pruning never touches the data
//! a fingerprinted bit-exact resume depends on.
//!
//! Three layers:
//!
//! * [`log`] — [`SegmentedLog`]: an append-only JSON-lines log split into
//!   sealed `seg-<n>.jsonl` segments plus one active tail. Sealing
//!   `sync_all`s the segment; the active tail's torn final line (a
//!   power-cut mid-append) is truncated away and counted on reopen;
//!   sealed segments are only ever rewritten via tmp + `sync_all` +
//!   atomic rename.
//! * [`pruner`] — the reth-shaped pruning machinery: a [`Segment`] trait
//!   per data kind, each pruned under a `delete_limit` work budget per
//!   [`Pruner::tick`], with a [`PruneCheckpoint`] persisted per segment
//!   (in [`checkpoint::CheckpointStore`]) so pruning is incremental,
//!   resumable, and safe to kill between any two syscalls.
//! * [`compact`] / [`retention`] — the two generic [`Segment`]
//!   implementations: [`LogCompactor`] rewrites sealed segments keeping
//!   only the lines a caller-supplied classifier marks live (run-record
//!   supersession, garbage lines), and [`LogRetention`] drops the oldest
//!   lines of a log once it exceeds a byte cap (telemetry streams, where
//!   old events age out wholesale).
//!
//! The contract the whole crate is built around: for any interleaving of
//! appends, prune ticks, and kills, `log.lines()` decoded by the owning
//! vocabulary is identical to the unpruned decode — pruning only ever
//! removes lines the decoder already ignored or superseded. The fleet and
//! checker crates supply the vocabulary-aware classifiers; this crate
//! supplies the budget, checkpoint, and crash-safety mechanics.
//!
//! ```
//! use std::sync::Arc;
//! use gecko_store::{LogConfig, Pruner, SegmentedLog, Verdict};
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let log = Arc::new(
//!     SegmentedLog::open(&dir.join("log"), LogConfig { max_segment_bytes: 64 }).unwrap(),
//! );
//! for i in 0..24 {
//!     log.append(&format!("{{\"k\":{}}}", i % 4)); // later duplicates win
//! }
//! let mut pruner = Pruner::open(&dir.join("prune.json"), 8).unwrap();
//! pruner.add(gecko_store::LogCompactor::new("doc", Arc::clone(&log), |lines| {
//!     // keep only the last line per key
//!     let key = |l: &str| l.bytes().rev().nth(1).unwrap();
//!     lines
//!         .iter()
//!         .enumerate()
//!         .map(|(i, l)| {
//!             if lines[i + 1..].iter().any(|m| key(m) == key(l)) {
//!                 Verdict::Delete
//!             } else {
//!                 Verdict::Keep
//!             }
//!         })
//!         .collect()
//! }));
//! while !pruner.tick().unwrap().done {} // budgeted, resumable ticks
//! assert!(log.lines().len() < 24);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]

pub mod checkpoint;
pub mod compact;
pub mod log;
pub mod pruner;
pub mod retention;

pub use checkpoint::{CheckpointStore, PruneCheckpoint};
pub use compact::{Classifier, LogCompactor, Verdict};
pub use log::{repair_torn_tail, LogConfig, SegmentInfo, SegmentLines, SegmentedLog};
pub use pruner::{PruneInput, PruneOutput, Pruner, Segment, StoreError, TickReport};
pub use retention::LogRetention;
