//! [`LogRetention`]: the [`Segment`] that ages out the oldest lines of a
//! [`SegmentedLog`] once it exceeds a byte cap — the right policy for
//! telemetry streams, where every line is live to the decoder but old
//! events lose value wholesale.
//!
//! Unlike [`LogCompactor`](crate::LogCompactor), retention deletes from
//! the *front*: whole sealed segments where possible, a budgeted prefix
//! of the oldest segment otherwise. The active tail is never touched, so
//! a log can exceed its cap by at most one unsealed segment.

use std::sync::Arc;

use crate::log::SegmentedLog;
use crate::pruner::{PruneInput, PruneOutput, Segment, StoreError};

/// A [`Segment`] that keeps one [`SegmentedLog`] under `max_bytes` by
/// deleting its oldest lines.
pub struct LogRetention {
    kind: String,
    log: Arc<SegmentedLog>,
    max_bytes: u64,
}

impl LogRetention {
    /// Builds a retention segment. `max_bytes == 0` disables retention
    /// (every prune is a done no-op).
    pub fn new(kind: impl Into<String>, log: Arc<SegmentedLog>, max_bytes: u64) -> LogRetention {
        LogRetention {
            kind: kind.into(),
            log,
            max_bytes,
        }
    }
}

impl Segment for LogRetention {
    fn kind(&self) -> &str {
        &self.kind
    }

    fn prune(&self, input: PruneInput) -> Result<PruneOutput, StoreError> {
        let mut cp = input.checkpoint.unwrap_or_default();
        let mut budget = input.delete_limit;
        let mut pruned = 0usize;
        let mut reclaimed = 0u64;
        let mut done = true;
        if self.max_bytes == 0 {
            return Ok(PruneOutput {
                pruned,
                reclaimed_bytes: reclaimed,
                done,
                checkpoint: cp,
            });
        }
        while self.log.total_bytes() > self.max_bytes {
            let Some(oldest) = self.log.segment_lines().into_iter().find(|s| s.sealed) else {
                break; // only the active tail remains — nothing to age out
            };
            if budget == 0 {
                done = false;
                break;
            }
            let seg_bytes: u64 = oldest.lines.iter().map(|l| l.len() as u64 + 1).sum();
            let over = self.log.total_bytes() - self.max_bytes;
            if oldest.lines.len() <= budget && seg_bytes <= over {
                // The whole segment is both affordable and needed gone.
                self.log.remove_segment(oldest.seq)?;
                pruned += oldest.lines.len();
                budget -= oldest.lines.len();
                reclaimed += seg_bytes;
                cp.next_segment = oldest.seq + 1;
            } else {
                // Trim a prefix: enough lines to get under the cap, capped
                // by the budget.
                let mut cut_bytes = 0u64;
                let mut cut = 0usize;
                for line in &oldest.lines {
                    if cut_bytes >= over || cut >= budget {
                        break;
                    }
                    cut_bytes += line.len() as u64 + 1;
                    cut += 1;
                }
                if cut == 0 {
                    done = false;
                    break;
                }
                let kept: Vec<String> = oldest.lines[cut..].to_vec();
                self.log.replace_segment(oldest.seq, &kept)?;
                if kept.is_empty() {
                    cp.next_segment = oldest.seq + 1;
                }
                pruned += cut;
                budget -= cut;
                reclaimed += cut_bytes;
                if cut_bytes < over {
                    done = false; // budget ran out mid-segment
                    break;
                }
            }
        }
        cp.pruned_entries += pruned as u64;
        cp.reclaimed_bytes += reclaimed;
        Ok(PruneOutput {
            pruned,
            reclaimed_bytes: reclaimed,
            done,
            checkpoint: cp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::pruner::Pruner;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gecko-store-retention-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn oldest_lines_age_out_to_stay_under_the_cap() {
        let dir = scratch("cap");
        let log = Arc::new(
            SegmentedLog::open(
                &dir.join("log"),
                LogConfig {
                    max_segment_bytes: 64,
                },
            )
            .unwrap(),
        );
        let mut pruner = Pruner::open(&dir.join("prune.json"), 0).unwrap();
        pruner.add(LogRetention::new("tele", Arc::clone(&log), 200));

        for i in 0..200 {
            log.append(&format!("{{\"event\":{i:04}}}"));
            pruner.tick().unwrap();
            // The cap can only be exceeded by the unsealed tail.
            assert!(
                log.total_bytes() <= 200 + 64,
                "bytes {} after event {i}",
                log.total_bytes()
            );
        }
        // The survivors are the *newest* lines, still in order.
        let lines = log.lines();
        assert!(lines.last().unwrap().contains("0199"));
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "retention keeps a contiguous suffix");
        let cp = pruner.checkpoints().get("tele").unwrap();
        assert!(cp.pruned_entries > 0);
        assert!(cp.reclaimed_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budgeted_retention_converges_and_zero_cap_disables() {
        let dir = scratch("budget");
        let log = Arc::new(
            SegmentedLog::open(
                &dir.join("log"),
                LogConfig {
                    max_segment_bytes: 48,
                },
            )
            .unwrap(),
        );
        for i in 0..50 {
            log.append(&format!("{{\"event\":{i:04}}}"));
        }

        // Disabled retention never deletes.
        let mut off = Pruner::open(&dir.join("off.json"), 0).unwrap();
        off.add(LogRetention::new("off", Arc::clone(&log), 0));
        let t = off.tick().unwrap();
        assert_eq!(t.pruned, 0);
        assert!(t.done);

        // delete_limit=1 converges to the cap one line per tick.
        let mut drip = Pruner::open(&dir.join("prune.json"), 1).unwrap();
        drip.add(LogRetention::new("tele", Arc::clone(&log), 150));
        let mut ticks = 0;
        while !drip.tick().unwrap().done {
            ticks += 1;
            assert!(ticks < 10_000);
        }
        assert!(ticks > 1, "a 1-line budget takes many ticks");
        let sealed_bytes: u64 = log
            .segments()
            .iter()
            .filter(|s| s.sealed)
            .map(|s| s.bytes)
            .sum();
        assert!(
            log.total_bytes() <= 150 || sealed_bytes == 0,
            "under cap or only the tail remains"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
