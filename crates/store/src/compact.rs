//! [`LogCompactor`]: the generic [`Segment`] that rewrites a
//! [`SegmentedLog`]'s sealed segments, keeping only the lines a
//! caller-supplied classifier marks live.
//!
//! The classifier sees the *whole* log (every segment, append order) and
//! returns one [`Verdict`] per line — that is where vocabulary-specific
//! rules live (a `run_done` record superseded by a later duplicate, a
//! torn line the decoder already skips, bucket lines belonging to a
//! superseded run). The compactor contributes the mechanics:
//!
//! * Only **sealed** segments are rewritten; the active tail (and any
//!   concurrent appends landing in it) is never touched.
//! * Deletion is budgeted: at most `delete_limit` lines per call, and the
//!   checkpoint does not advance past a segment until it is fully clean —
//!   which is why a `delete_limit` of 1 converges to the same final
//!   layout as an unlimited prune.
//! * The checkpoint is monotone: once `next_segment` passes a segment,
//!   that segment is never revisited. A record superseded *after* its
//!   segment was compacted therefore survives on disk; decoders already
//!   resolve duplicates (later wins), so this costs bytes, not
//!   correctness.
//! * Rewrites go through [`SegmentedLog::replace_segment`] (tmp +
//!   `sync_all` + atomic rename), so a kill at any byte leaves either the
//!   old or the new segment — and re-running the same prune afterwards is
//!   a no-op-or-equivalent either way.

use std::sync::Arc;

use crate::log::SegmentedLog;
use crate::pruner::{PruneInput, PruneOutput, Segment, StoreError};

/// A classifier's decision for one log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The line is live: a decoder may need it. Never deleted.
    Keep,
    /// The line is dead: superseded, malformed, or otherwise invisible to
    /// the owning decoder. Eligible for deletion.
    Delete,
}

/// A whole-log classifier: every line in append order in, one [`Verdict`]
/// per line out.
pub type Classifier = Box<dyn Fn(&[String]) -> Vec<Verdict> + Send + Sync>;

/// A [`Segment`] that compacts one [`SegmentedLog`] under a classifier.
pub struct LogCompactor {
    kind: String,
    log: Arc<SegmentedLog>,
    classify: Classifier,
}

impl LogCompactor {
    /// Builds a compactor for `log`. `classify` receives every line of
    /// the log in append order and must return exactly one verdict per
    /// line; it is called afresh each prune (the log may have grown).
    pub fn new(
        kind: impl Into<String>,
        log: Arc<SegmentedLog>,
        classify: impl Fn(&[String]) -> Vec<Verdict> + Send + Sync + 'static,
    ) -> LogCompactor {
        LogCompactor {
            kind: kind.into(),
            log,
            classify: Box::new(classify),
        }
    }
}

impl Segment for LogCompactor {
    fn kind(&self) -> &str {
        &self.kind
    }

    fn prune(&self, input: PruneInput) -> Result<PruneOutput, StoreError> {
        let mut cp = input.checkpoint.unwrap_or_default();
        let mut budget = input.delete_limit;
        let by_segment = self.log.segment_lines();
        let all: Vec<String> = by_segment
            .iter()
            .flat_map(|s| s.lines.iter().cloned())
            .collect();
        let verdicts = (self.classify)(&all);
        if verdicts.len() != all.len() {
            return Err(StoreError::Corrupt(format!(
                "classifier for {:?} returned {} verdicts for {} lines",
                self.kind,
                verdicts.len(),
                all.len()
            )));
        }

        let mut pruned = 0usize;
        let mut reclaimed = 0u64;
        let mut done = true;
        let mut offset = 0usize;
        for seg in &by_segment {
            let seg_verdicts = &verdicts[offset..offset + seg.lines.len()];
            offset += seg.lines.len();
            if !seg.sealed || seg.seq < cp.next_segment {
                continue;
            }
            let deletable = seg_verdicts
                .iter()
                .filter(|v| **v == Verdict::Delete)
                .count();
            if deletable == 0 {
                cp.next_segment = seg.seq + 1;
                continue;
            }
            if budget == 0 {
                done = false;
                break;
            }
            // Delete the first `budget` dead lines; keep the rest (alive
            // *and* dead-but-over-budget — the checkpoint stays on this
            // segment until it is fully clean).
            let take = deletable.min(budget);
            let mut killed = 0usize;
            let mut kept = Vec::with_capacity(seg.lines.len() - take);
            for (line, verdict) in seg.lines.iter().zip(seg_verdicts) {
                if *verdict == Verdict::Delete && killed < take {
                    killed += 1;
                    reclaimed += line.len() as u64 + 1;
                } else {
                    kept.push(line.clone());
                }
            }
            self.log.replace_segment(seg.seq, &kept)?;
            pruned += take;
            budget -= take;
            if take == deletable {
                cp.next_segment = seg.seq + 1;
            } else {
                done = false;
                break;
            }
        }
        cp.pruned_entries += pruned as u64;
        cp.reclaimed_bytes += reclaimed;
        Ok(PruneOutput {
            pruned,
            reclaimed_bytes: reclaimed,
            done,
            checkpoint: cp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::pruner::Pruner;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gecko-store-compact-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Toy vocabulary: lines are `key=value`; the last line per key wins,
    /// lines starting with `!` are garbage.
    fn classify_toy(lines: &[String]) -> Vec<Verdict> {
        lines
            .iter()
            .enumerate()
            .map(|(i, line)| {
                if line.starts_with('!') {
                    return Verdict::Delete;
                }
                let key = line.split('=').next().unwrap_or(line);
                let superseded = lines[i + 1..]
                    .iter()
                    .any(|later| later.split('=').next() == Some(key));
                if superseded {
                    Verdict::Delete
                } else {
                    Verdict::Keep
                }
            })
            .collect()
    }

    fn fill(log: &SegmentedLog) {
        for round in 0..6 {
            for key in 0..4 {
                log.append(&format!("k{key}={round}"));
            }
            log.append(&format!("!garbage-{round}"));
        }
    }

    /// The decoded view: last value per key, in the order keys appear.
    fn decode(lines: &[String]) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for line in lines {
            if line.starts_with('!') {
                continue;
            }
            let (k, v) = line.split_once('=').unwrap();
            match out.iter_mut().find(|(key, _)| key == k) {
                Some((_, value)) => *value = v.to_string(),
                None => out.push((k.to_string(), v.to_string())),
            }
        }
        out
    }

    #[test]
    fn compaction_preserves_the_decoded_view() {
        let dir = scratch("decode");
        let log = Arc::new(
            SegmentedLog::open(
                &dir.join("log"),
                LogConfig {
                    max_segment_bytes: 24,
                },
            )
            .unwrap(),
        );
        fill(&log);
        let before = decode(&log.lines());
        let bytes_before = log.total_bytes();

        let mut pruner = Pruner::open(&dir.join("prune.json"), 0).unwrap();
        pruner.add(LogCompactor::new("toy", Arc::clone(&log), classify_toy));
        let t = pruner.tick().unwrap();
        assert!(t.done);
        assert!(t.pruned > 0);
        assert_eq!(decode(&log.lines()), before, "pruning must be invisible");
        assert!(log.total_bytes() < bytes_before);
        assert_eq!(t.reclaimed_bytes, bytes_before - log.total_bytes());

        // Idempotent: everything still-prunable sits in the tail, which
        // the compactor never touches.
        let again = pruner.tick().unwrap();
        assert_eq!(again.pruned, 0);
        assert!(again.done);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_limit_one_converges_to_the_unlimited_layout() {
        let dir_a = scratch("limit1");
        let dir_b = scratch("limitmax");
        let cfg = LogConfig {
            max_segment_bytes: 24,
        };
        let log_a = Arc::new(SegmentedLog::open(&dir_a.join("log"), cfg).unwrap());
        let log_b = Arc::new(SegmentedLog::open(&dir_b.join("log"), cfg).unwrap());
        fill(&log_a);
        fill(&log_b);

        let mut drip = Pruner::open(&dir_a.join("prune.json"), 1).unwrap();
        drip.add(LogCompactor::new("toy", Arc::clone(&log_a), classify_toy));
        let mut ticks = 0;
        while !drip.tick().unwrap().done {
            ticks += 1;
            assert!(ticks < 10_000, "budgeted pruning must converge");
        }

        let mut flood = Pruner::open(&dir_b.join("prune.json"), 0).unwrap();
        flood.add(LogCompactor::new("toy", Arc::clone(&log_b), classify_toy));
        assert!(flood.tick().unwrap().done);

        let layout = |log: &SegmentedLog| -> Vec<(u64, Vec<String>)> {
            log.segment_lines()
                .into_iter()
                .map(|s| (s.seq, s.lines))
                .collect()
        };
        assert_eq!(layout(&log_a), layout(&log_b));
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn kill_between_rewrite_and_checkpoint_is_harmless() {
        let dir = scratch("kill");
        let cfg = LogConfig {
            max_segment_bytes: 24,
        };
        let log = Arc::new(SegmentedLog::open(&dir.join("log"), cfg).unwrap());
        fill(&log);
        let before = decode(&log.lines());

        // Prune with budget 3, but "crash" before the checkpoint save by
        // simply discarding the pruner (its checkpoint file never saw the
        // last update because we clone a stale copy first).
        let mut p1 = Pruner::open(&dir.join("prune.json"), 3).unwrap();
        p1.add(LogCompactor::new("toy", Arc::clone(&log), classify_toy));
        let _ = p1.tick().unwrap();
        // Roll the checkpoint file back to "nothing saved": the segment
        // rewrites are on disk but the cursor is gone — the exact state a
        // kill between rename and save leaves behind.
        std::fs::remove_file(dir.join("prune.json")).unwrap();

        let mut p2 = Pruner::open(&dir.join("prune.json"), 0).unwrap();
        p2.add(LogCompactor::new("toy", Arc::clone(&log), classify_toy));
        let t = p2.tick().unwrap();
        assert!(t.done);
        assert_eq!(decode(&log.lines()), before, "replayed prune is invisible");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
