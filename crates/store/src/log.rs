//! [`SegmentedLog`]: an append-only JSON-lines log split into sealed
//! segments plus one active tail, with crash-safe sealing and rewrite.
//!
//! On-disk layout, inside the log's directory:
//!
//! ```text
//! seg-000000.jsonl   sealed (full) segment — only rewritten atomically
//! seg-000001.jsonl   sealed segment
//! seg-000002.jsonl   active tail — append-only, torn tail repaired on open
//! ```
//!
//! Durability rules, in order of appearance in a segment's life:
//!
//! * Appends go to the active tail, `flush`ed per line (a kill loses at
//!   most the line being written — the classic torn tail).
//! * When the tail crosses [`LogConfig::max_segment_bytes`] it is
//!   *sealed*: flushed, `sync_all`ed, and a fresh tail is opened. From
//!   then on the segment's bytes are stable on disk.
//! * On open, a non-`\n`-terminated active tail is truncated back to the
//!   last complete line and the repair is counted in
//!   [`SegmentedLog::torn_tails`] — a half-written record never reaches a
//!   reader.
//! * Sealed segments are only ever rewritten through
//!   [`SegmentedLog::replace_segment`]: write `.tmp`, `sync_all`, atomic
//!   rename over the original (plus a best-effort directory sync).
//!   Stale `.tmp` files from a kill mid-rewrite are removed on open.

use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuning for a [`SegmentedLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Seal the active tail once it reaches this many bytes. Small values
    /// make pruning finer-grained (and tests fast); the default favors
    /// few files.
    pub max_segment_bytes: u64,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            max_segment_bytes: 256 * 1024,
        }
    }
}

/// One segment as seen by [`SegmentedLog::segments`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Monotone sequence number (names the file, `seg-<seq>.jsonl`).
    pub seq: u64,
    /// Current size in bytes.
    pub bytes: u64,
    /// Sealed segments are immutable except through
    /// [`SegmentedLog::replace_segment`]; the unsealed tail takes
    /// appends.
    pub sealed: bool,
}

/// The lines of one segment, for classifiers and compaction.
#[derive(Debug, Clone)]
pub struct SegmentLines {
    /// Sequence number.
    pub seq: u64,
    /// Whether the segment is sealed (only sealed segments may be
    /// rewritten).
    pub sealed: bool,
    /// The segment's complete lines, in append order.
    pub lines: Vec<String>,
}

struct LogState {
    sealed: Vec<(u64, u64)>, // (seq, bytes), ascending by seq
    active_seq: u64,
    active_bytes: u64,
    writer: std::io::BufWriter<std::fs::File>,
}

/// A segmented append-only line log. Cheap to share behind an `Arc`;
/// appends and rewrites are serialized by an internal lock, and appends
/// never panic — I/O failures degrade to a drop counter, like every other
/// sink in the workspace.
pub struct SegmentedLog {
    dir: PathBuf,
    cfg: LogConfig,
    state: Mutex<LogState>,
    dropped: AtomicU64,
    torn_tails: AtomicU64,
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:06}.jsonl"))
}

fn open_tail(path: &Path) -> std::io::Result<(std::io::BufWriter<std::fs::File>, u64)> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let bytes = file.metadata()?.len();
    Ok((std::io::BufWriter::new(file), bytes))
}

/// Truncates `path` back to its last `\n` (or to empty), so a line torn
/// by a kill mid-append never reaches a reader. Returns `true` if a torn
/// tail was actually repaired. Exposed for single-file journals that want
/// the same open-time repair the segmented log performs on its tail.
///
/// # Errors
///
/// Propagates open/read/truncate errors.
pub fn repair_torn_tail(path: &Path) -> std::io::Result<bool> {
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(false);
    }
    // Read backwards in one gulp — segments are bounded by the seal size,
    // so this is at most one segment of I/O, and only on open.
    let mut buf = Vec::with_capacity(len as usize);
    file.read_to_end(&mut buf)?;
    if buf.last() == Some(&b'\n') {
        return Ok(false);
    }
    let keep = buf.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    file.set_len(keep as u64)?;
    file.seek(std::io::SeekFrom::End(0))?;
    file.sync_all()?;
    Ok(true)
}

impl SegmentedLog {
    /// Opens (creating if needed) a segmented log in `dir`: removes stale
    /// `.tmp` files from a killed rewrite, repairs the active tail's torn
    /// final line, and resumes appending.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open errors.
    pub fn open(dir: &Path, cfg: LogConfig) -> std::io::Result<SegmentedLog> {
        std::fs::create_dir_all(dir)?;
        let mut seqs: Vec<(u64, u64)> = Vec::new();
        for entry in std::fs::read_dir(dir)?.flatten() {
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            if name.ends_with(".tmp") {
                // A rewrite died before its rename; the original segment
                // is still intact, so the tmp is garbage.
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            if let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".jsonl"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push((seq, entry.metadata().map(|m| m.len()).unwrap_or(0)));
            }
        }
        seqs.sort_unstable();
        let active_seq = seqs.last().map_or(0, |(seq, _)| *seq);
        let torn_tails = AtomicU64::new(0);
        let active_path = seg_path(dir, active_seq);
        if active_path.exists() && repair_torn_tail(&active_path)? {
            torn_tails.fetch_add(1, Ordering::Relaxed);
        }
        let (writer, active_bytes) = open_tail(&active_path)?;
        seqs.retain(|(seq, _)| *seq != active_seq);
        Ok(SegmentedLog {
            dir: dir.to_path_buf(),
            cfg,
            state: Mutex::new(LogState {
                sealed: seqs,
                active_seq,
                active_bytes,
                writer,
            }),
            dropped: AtomicU64::new(0),
            torn_tails,
        })
    }

    /// The log's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one line (the newline is added here), sealing the active
    /// tail if it crosses the configured size. Never panics: I/O failures
    /// drop the line and count it.
    pub fn append(&self, line: &str) {
        let mut s = self.lock();
        let ok = writeln!(s.writer, "{line}").is_ok() && s.writer.flush().is_ok();
        if !ok {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        s.active_bytes += line.len() as u64 + 1;
        if s.active_bytes >= self.cfg.max_segment_bytes && self.seal_locked(&mut s).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Seals the active tail now (flush + `sync_all` + fresh tail), even
    /// if it is below the size threshold. A no-op on an empty tail.
    ///
    /// # Errors
    ///
    /// Propagates flush/sync/open errors (the log stays usable).
    pub fn seal(&self) -> std::io::Result<()> {
        let mut s = self.lock();
        if s.active_bytes == 0 {
            return Ok(());
        }
        self.seal_locked(&mut s)
    }

    fn seal_locked(&self, s: &mut LogState) -> std::io::Result<()> {
        s.writer.flush()?;
        s.writer.get_ref().sync_all()?;
        let sealed_entry = (s.active_seq, s.active_bytes);
        let next = s.active_seq + 1;
        let (writer, bytes) = open_tail(&seg_path(&self.dir, next))?;
        s.sealed.push(sealed_entry);
        s.active_seq = next;
        s.active_bytes = bytes;
        s.writer = writer;
        Ok(())
    }

    /// Flushes and `sync_all`s the active tail — the checkpoint-boundary
    /// durability hook (sealed segments are already synced).
    ///
    /// # Errors
    ///
    /// Propagates flush/sync errors.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut s = self.lock();
        s.writer.flush()?;
        s.writer.get_ref().sync_all()
    }

    /// Every line in the log, across all segments, in append order.
    pub fn lines(&self) -> Vec<String> {
        self.segment_lines()
            .into_iter()
            .flat_map(|s| s.lines)
            .collect()
    }

    /// Every segment's lines, ascending by sequence number (the active
    /// tail last). Unreadable files read as empty rather than failing —
    /// the reader's contract is "whatever is durable".
    pub fn segment_lines(&self) -> Vec<SegmentLines> {
        let mut s = self.lock();
        let _ = s.writer.flush();
        let read = |seq: u64| -> Vec<String> {
            std::fs::read_to_string(seg_path(&self.dir, seq))
                .map(|text| text.lines().map(str::to_string).collect())
                .unwrap_or_default()
        };
        let mut out: Vec<SegmentLines> = s
            .sealed
            .iter()
            .map(|(seq, _)| SegmentLines {
                seq: *seq,
                sealed: true,
                lines: read(*seq),
            })
            .collect();
        out.push(SegmentLines {
            seq: s.active_seq,
            sealed: false,
            lines: read(s.active_seq),
        });
        out
    }

    /// Current segments, ascending by sequence number (active tail last).
    pub fn segments(&self) -> Vec<SegmentInfo> {
        let s = self.lock();
        let mut out: Vec<SegmentInfo> = s
            .sealed
            .iter()
            .map(|(seq, bytes)| SegmentInfo {
                seq: *seq,
                bytes: *bytes,
                sealed: true,
            })
            .collect();
        out.push(SegmentInfo {
            seq: s.active_seq,
            bytes: s.active_bytes,
            sealed: false,
        });
        out
    }

    /// Total bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments().iter().map(|s| s.bytes).sum()
    }

    /// Atomically replaces sealed segment `seq` with `lines` (tmp file,
    /// `sync_all`, rename; empty `lines` removes the segment file).
    /// Refuses to touch the active tail or an unknown segment.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for the active tail / unknown `seq`; otherwise the
    /// underlying I/O error. On any error the original segment is intact.
    pub fn replace_segment(&self, seq: u64, lines: &[String]) -> std::io::Result<()> {
        let mut s = self.lock();
        let Some(slot) = s.sealed.iter().position(|(q, _)| *q == seq) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("segment {seq} is not a sealed segment of this log"),
            ));
        };
        let path = seg_path(&self.dir, seq);
        if lines.is_empty() {
            std::fs::remove_file(&path)?;
            s.sealed.remove(slot);
        } else {
            let tmp = path.with_extension("jsonl.tmp");
            let mut file = std::fs::File::create(&tmp)?;
            let mut bytes = 0u64;
            for line in lines {
                writeln!(file, "{line}")?;
                bytes += line.len() as u64 + 1;
            }
            file.sync_all()?;
            std::fs::rename(&tmp, &path)?;
            s.sealed[slot].1 = bytes;
        }
        // Make the rename/unlink itself durable. Best-effort: some
        // platforms refuse to open a directory for writing.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Removes sealed segment `seq` entirely (retention aging).
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentedLog::replace_segment`].
    pub fn remove_segment(&self, seq: u64) -> std::io::Result<()> {
        self.replace_segment(seq, &[])
    }

    /// Lines dropped because of I/O failures.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Torn final lines truncated away on open (a kill mid-append).
    pub fn torn_tails(&self) -> u64 {
        self.torn_tails.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SegmentedLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.lock();
        write!(
            f,
            "SegmentedLog({}, {} sealed + tail seg-{:06})",
            self.dir.display(),
            s.sealed.len(),
            s.active_seq
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gecko-store-log-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn appends_roll_over_into_sealed_segments_and_survive_reopen() {
        let dir = scratch("roll");
        let cfg = LogConfig {
            max_segment_bytes: 32,
        };
        let log = SegmentedLog::open(&dir, cfg).unwrap();
        for i in 0..10 {
            log.append(&format!("{{\"i\":{i}}}"));
        }
        let segs = log.segments();
        assert!(segs.len() > 1, "{segs:?}");
        assert!(segs[..segs.len() - 1].iter().all(|s| s.sealed));
        assert!(!segs.last().unwrap().sealed);
        assert_eq!(log.lines().len(), 10);
        drop(log);

        let reopened = SegmentedLog::open(&dir, cfg).unwrap();
        assert_eq!(reopened.lines().len(), 10, "reopen sees every line");
        assert_eq!(reopened.torn_tails(), 0);
        reopened.append("{\"i\":10}");
        assert_eq!(reopened.lines().len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted_on_open() {
        let dir = scratch("torn");
        let cfg = LogConfig::default();
        let log = SegmentedLog::open(&dir, cfg).unwrap();
        log.append("{\"whole\":1}");
        log.append("{\"whole\":2}");
        let tail = seg_path(&dir, 0);
        drop(log);
        // Kill mid-append: the last line lost its newline and half its
        // bytes.
        let mut bytes = std::fs::read(&tail).unwrap();
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&tail, &bytes).unwrap();

        let log = SegmentedLog::open(&dir, cfg).unwrap();
        assert_eq!(log.torn_tails(), 1);
        assert_eq!(log.lines(), vec!["{\"whole\":1}".to_string()]);
        // And appending after the repair produces clean lines, not a
        // glued-together hybrid.
        log.append("{\"whole\":3}");
        assert_eq!(log.lines().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_segment_is_atomic_and_cleans_stale_tmps() {
        let dir = scratch("replace");
        let cfg = LogConfig {
            max_segment_bytes: 24,
        };
        let log = SegmentedLog::open(&dir, cfg).unwrap();
        for i in 0..8 {
            log.append(&format!("{{\"i\":{i}}}"));
        }
        let first_sealed = log.segments()[0].seq;
        log.replace_segment(first_sealed, &["{\"kept\":true}".to_string()])
            .unwrap();
        assert!(log.lines().contains(&"{\"kept\":true}".to_string()));

        // The active tail is off-limits.
        let active = log.segments().last().unwrap().seq;
        assert!(log.replace_segment(active, &[]).is_err());

        // A stale tmp from a killed rewrite disappears on reopen and the
        // original segment content still reads back.
        let before = log.lines();
        std::fs::write(
            seg_path(&dir, first_sealed).with_extension("jsonl.tmp"),
            "junk",
        )
        .unwrap();
        drop(log);
        let log = SegmentedLog::open(&dir, cfg).unwrap();
        assert_eq!(log.lines(), before);
        assert!(!seg_path(&dir, first_sealed)
            .with_extension("jsonl.tmp")
            .exists());

        // Removing a segment drops its lines and its file.
        log.remove_segment(first_sealed).unwrap();
        assert!(!log.lines().contains(&"{\"kept\":true}".to_string()));
        assert!(!seg_path(&dir, first_sealed).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_and_sync_are_explicit_durability_hooks() {
        let dir = scratch("seal");
        let log = SegmentedLog::open(&dir, LogConfig::default()).unwrap();
        log.seal().unwrap(); // empty tail: no-op
        assert_eq!(log.segments().len(), 1);
        log.append("{\"a\":1}");
        log.sync().unwrap();
        log.seal().unwrap();
        let segs = log.segments();
        assert_eq!(segs.len(), 2);
        assert!(segs[0].sealed);
        assert_eq!(log.total_bytes(), segs[0].bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
