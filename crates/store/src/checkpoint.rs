//! Per-segment prune checkpoints and their crash-safe persistence.
//!
//! Mirrors the reth pruner's checkpoint discipline: after a segment is
//! pruned, its [`PruneCheckpoint`] records where the next tick should
//! resume ("prune from the next entry after the highest pruned one") plus
//! cumulative accounting. Checkpoints for every segment kind live in one
//! JSON-lines file rewritten atomically (tmp + `sync_all` + rename) on
//! every save — a kill at any byte leaves either the old or the new
//! checkpoint set, both of which are safe starting points because pruning
//! itself is idempotent.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Where a segment's pruning left off, plus lifetime accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneCheckpoint {
    /// The first log segment (or, for non-log segments, the first id)
    /// the next tick should look at. Everything below has been pruned
    /// clean and is never revisited.
    pub next_segment: u64,
    /// Entries pruned over the checkpoint's lifetime.
    pub pruned_entries: u64,
    /// Bytes reclaimed over the checkpoint's lifetime.
    pub reclaimed_bytes: u64,
}

/// The persisted map of segment kind → [`PruneCheckpoint`].
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    map: BTreeMap<String, PruneCheckpoint>,
}

impl CheckpointStore {
    /// Opens the checkpoint file at `path`, tolerating a missing file
    /// (fresh store) and skipping corrupt lines (a kill can only tear the
    /// file if it predates the atomic-rename discipline; tolerance costs
    /// nothing and re-pruning is idempotent).
    ///
    /// # Errors
    ///
    /// Propagates read errors other than "not found".
    pub fn open(path: &Path) -> std::io::Result<CheckpointStore> {
        let mut map = BTreeMap::new();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    if let Some((kind, cp)) = decode_line(line) {
                        map.insert(kind, cp);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(CheckpointStore {
            path: path.to_path_buf(),
            map,
        })
    }

    /// The checkpoint for `kind`, if one was ever saved.
    pub fn get(&self, kind: &str) -> Option<PruneCheckpoint> {
        self.map.get(kind).copied()
    }

    /// Every saved checkpoint, ordered by kind.
    pub fn all(&self) -> impl Iterator<Item = (&str, PruneCheckpoint)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records `kind`'s checkpoint and persists the whole set atomically
    /// (tmp + `sync_all` + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the in-memory checkpoint is updated either
    /// way (the next save retries the write).
    pub fn save(&mut self, kind: &str, cp: PruneCheckpoint) -> std::io::Result<()> {
        self.map.insert(kind.to_string(), cp);
        let tmp = self.path.with_extension("json.tmp");
        let mut file = std::fs::File::create(&tmp)?;
        for (kind, cp) in &self.map {
            writeln!(file, "{}", encode_line(kind, *cp))?;
        }
        file.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

fn encode_line(kind: &str, cp: PruneCheckpoint) -> String {
    // Kinds are static identifiers (no quoting needed beyond the obvious).
    let escaped: String = kind
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    format!(
        "{{\"kind\":\"{escaped}\",\"next_segment\":{},\"pruned_entries\":{},\"reclaimed_bytes\":{}}}",
        cp.next_segment, cp.pruned_entries, cp.reclaimed_bytes
    )
}

/// A deliberately tiny flat-JSON reader: `{"kind":"...", "k":u64, ...}`.
/// (The store sits below `gecko-fleet` in the dependency graph, so it
/// cannot borrow the fleet's parser.)
fn decode_line(line: &str) -> Option<(String, PruneCheckpoint)> {
    let mut rest = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut kind = None;
    let mut cp = PruneCheckpoint::default();
    while !rest.is_empty() {
        rest = rest.trim_start_matches([',', ' ']);
        let (key, after) = read_string(rest)?;
        rest = after.trim_start().strip_prefix(':')?.trim_start();
        match key.as_str() {
            "kind" => {
                let (value, after) = read_string(rest)?;
                kind = Some(value);
                rest = after;
            }
            _ => {
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                let value: u64 = rest[..end].trim().parse().ok()?;
                match key.as_str() {
                    "next_segment" => cp.next_segment = value,
                    "pruned_entries" => cp.pruned_entries = value,
                    "reclaimed_bytes" => cp.reclaimed_bytes = value,
                    _ => {}
                }
                rest = &rest[end..];
            }
        }
    }
    Some((kind?, cp))
}

fn read_string(s: &str) -> Option<(String, &str)> {
    let mut chars = s.strip_prefix('"')?.char_indices();
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[1 + i + 1..])),
            '\\' => out.push(chars.next()?.1),
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_round_trip_across_reopen() {
        let dir = std::env::temp_dir().join(format!("gecko-store-cp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prune.json");
        let mut store = CheckpointStore::open(&path).unwrap();
        assert!(store.get("journal").is_none());
        store
            .save(
                "journal",
                PruneCheckpoint {
                    next_segment: 3,
                    pruned_entries: 120,
                    reclaimed_bytes: 4096,
                },
            )
            .unwrap();
        store.save("telemetry", PruneCheckpoint::default()).unwrap();

        let store = CheckpointStore::open(&path).unwrap();
        assert_eq!(
            store.get("journal"),
            Some(PruneCheckpoint {
                next_segment: 3,
                pruned_entries: 120,
                reclaimed_bytes: 4096,
            })
        );
        assert_eq!(store.get("telemetry"), Some(PruneCheckpoint::default()));
        assert_eq!(store.all().count(), 2);
        assert!(
            !path.with_extension("json.tmp").exists(),
            "save leaves no tmp behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("gecko-store-cp-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prune.json");
        std::fs::write(
            &path,
            "not json\n{\"kind\":\"ok\",\"next_segment\":7,\"pruned_entries\":1,\"reclaimed_bytes\":2}\n{\"kind\":\"torn",
        )
        .unwrap();
        let store = CheckpointStore::open(&path).unwrap();
        assert_eq!(store.all().count(), 1);
        assert_eq!(store.get("ok").map(|c| c.next_segment), Some(7));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
