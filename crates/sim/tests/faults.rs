//! Differential proofs for the EM instruction-fault dimension:
//!
//! * a schedule with no *armed* windows is bit-identical — same
//!   [`gecko_sim::Metrics`], same logical state hash, same time and
//!   voltage bits — to a simulator that was never given a schedule at
//!   all, across the fig. 4 scheme × attack grid and a splitmix64 stream
//!   of randomly-placed disarmed windows;
//! * an armed schedule steered through the event-horizon coalescer
//!   matches the per-instruction reference exactly (the fault-edge bail
//!   is observationally invisible);
//! * a fault window covering an active span forces the scalar path — no
//!   instruction may retire coalesced while a fault could land on it.

use gecko_emi::attack::DpiPoint;
use gecko_emi::fault::{FaultModel, FaultSchedule, TimedFault};
use gecko_emi::{AttackSchedule, EmiSignal, Injection};
use gecko_sim::{ExecMode, SchemeKind, SimConfig, Simulator};

fn quick() -> bool {
    std::env::var_os("GECKO_QUICK").is_some()
}

fn window_s() -> f64 {
    if quick() {
        0.02
    } else {
        0.05
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn make_exact(sim: &mut Simulator) {
    sim.set_exec_mode(ExecMode::Interpreted);
    sim.set_fast_forward(false);
    sim.set_event_horizon(false);
}

fn assert_equivalent(a: &Simulator, b: &Simulator, label: &str) {
    assert_eq!(a.metrics, b.metrics, "{label}: metrics diverged");
    assert_eq!(a.state_hash(), b.state_hash(), "{label}: state hash");
    assert_eq!(a.time_s().to_bits(), b.time_s().to_bits(), "{label}: time");
    assert_eq!(
        a.voltage_v().to_bits(),
        b.voltage_v().to_bits(),
        "{label}: voltage"
    );
}

fn fig4_attacks() -> Vec<(&'static str, AttackSchedule)> {
    let sig = EmiSignal::new(27e6, 20.0);
    let inj = Injection::Dpi(DpiPoint::P2);
    vec![
        ("clean", AttackSchedule::none()),
        ("continuous", AttackSchedule::continuous(sig, inj)),
        (
            "bursts",
            AttackSchedule::bursts(sig, inj, &[0.004, 0.017, 0.031], 0.003),
        ),
    ]
}

/// A schedule of `n` windows that are physically present but below the
/// fault power threshold (the 35 dBm pulse from 10 m away), placed by a
/// splitmix64 stream.
fn disarmed_schedule(seed: u64, n: usize) -> FaultSchedule {
    let mut state = seed;
    let sig = EmiSignal::new(27e6, 35.0);
    let windows = (0..n)
        .map(|_| {
            let start_s = (splitmix64(&mut state) % 1000) as f64 * 50e-6;
            let dur_s = (splitmix64(&mut state) % 100 + 1) as f64 * 10e-6;
            TimedFault {
                start_s,
                end_s: start_s + dur_s,
                signal: sig,
                injection: Injection::Remote { distance_m: 10.0 },
                model: FaultModel::Skip,
            }
        })
        .collect();
    FaultSchedule::from_windows(windows)
}

#[test]
fn empty_and_disarmed_schedules_are_bit_identical_to_none() {
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let mut seed = 0xfau64;
    for scheme in SchemeKind::all() {
        for (label, attack) in fig4_attacks() {
            let base = || SimConfig::bench_supply(scheme).with_attack(attack.clone());
            let mut bare = Simulator::new(&app, base()).unwrap();
            let mut empty = Simulator::new(&app, base().with_fault(FaultSchedule::none())).unwrap();
            let mut disarmed = Simulator::new(
                &app,
                base().with_fault(disarmed_schedule(splitmix64(&mut seed), 7)),
            )
            .unwrap();
            bare.run_for(window_s());
            empty.run_for(window_s());
            disarmed.run_for(window_s());
            let tag = format!("fig4/{}/{label}", scheme.name());
            assert_equivalent(&empty, &bare, &format!("{tag}/empty"));
            assert_equivalent(&disarmed, &bare, &format!("{tag}/disarmed"));
            assert_eq!(bare.metrics.fault_skips, 0, "{tag}");
            assert_eq!(bare.metrics.fault_corruptions, 0, "{tag}");
            // The fault-free fast paths must remain fully engaged.
            assert_eq!(
                disarmed.fast_path_stats(),
                bare.fast_path_stats(),
                "{tag}: a disarmed schedule must not perturb coalescing"
            );
        }
    }
}

#[test]
fn armed_fault_windows_match_the_per_step_reference() {
    // The fault analogue of the spoofed-pulse regression: a short armed
    // skip burst strictly inside a would-be coalesced segment, plus an
    // opcode-corrupt burst later. The batched walk must bail to the
    // scalar path exactly over the windows and agree with the
    // per-instruction reference bit-for-bit.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let sig = EmiSignal::new(27e6, 35.0);
    let inj = Injection::Dpi(DpiPoint::P2);
    for scheme in SchemeKind::all() {
        let fault = FaultSchedule::from_windows(vec![
            TimedFault {
                start_s: 0.0101,
                end_s: 0.0113,
                signal: sig,
                injection: inj,
                model: FaultModel::Skip,
            },
            TimedFault {
                start_s: 0.0172,
                end_s: 0.0175,
                signal: sig,
                injection: inj,
                model: FaultModel::OperandBitflip { bit: 5 },
            },
        ]);
        let build = || SimConfig::bench_supply(scheme).with_fault(fault.clone());
        let mut fast = Simulator::new(&app, build()).unwrap();
        let mut exact = Simulator::new(&app, build()).unwrap();
        make_exact(&mut exact);
        fast.run_for(0.025);
        exact.run_for(0.025);
        let tag = format!("armed/{}", scheme.name());
        assert_equivalent(&fast, &exact, &tag);
        assert!(
            fast.metrics.fault_skips > 0 && fast.metrics.fault_corruptions > 0,
            "{tag}: both windows must bite: {:?}",
            fast.metrics
        );
        let s = fast.fast_path_stats();
        assert!(
            s.eh_spans > 0,
            "{tag}: segments outside the windows must still coalesce: {s:?}"
        );
    }
}

#[test]
fn fault_window_covering_a_span_forces_the_scalar_path() {
    // Regression for the coalescing bail: under a continuous armed fault
    // no instruction may retire inside an event-horizon span (a span
    // solver pass cannot model per-instruction fault effects), while the
    // identical fault-free run coalesces nearly everything.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let armed = FaultSchedule::continuous(
        EmiSignal::new(27e6, 35.0),
        Injection::Dpi(DpiPoint::P2),
        FaultModel::Skip,
    );
    let mut faulted = Simulator::new(
        &app,
        SimConfig::bench_supply(SchemeKind::Gecko).with_fault(armed),
    )
    .unwrap();
    let mut free = Simulator::new(&app, SimConfig::bench_supply(SchemeKind::Gecko)).unwrap();
    faulted.run_for(0.01);
    free.run_for(0.01);
    assert!(
        free.fast_path_stats().eh_insts > 0,
        "fault-free bench run must coalesce: {:?}",
        free.fast_path_stats()
    );
    assert_eq!(
        faulted.fast_path_stats().eh_insts,
        0,
        "no instruction may retire coalesced under an armed fault: {:?}",
        faulted.fast_path_stats()
    );
    assert!(faulted.metrics.fault_skips > 0, "{:?}", faulted.metrics);
}
