//! Differential proof that event-horizon active stepping is
//! *observationally invisible*: batched ON-state spans must produce
//! bit-identical trajectories to the per-instruction reference — same
//! [`gecko_sim::Metrics`], same logical state hash, same simulated time
//! and capacitor voltage down to the last bit — across the scheme grid of
//! the paper's fig. 4 workload, under attack and no-attack schedules,
//! with `run_capped` slices and snapshot forks landing strictly inside
//! would-be spans. Companion to `tests/fast_path.rs`, which proves the
//! same property for predecoded dispatch and hibernation fast-forward.

use gecko_emi::attack::DpiPoint;
use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
use gecko_sim::{ExecMode, SchemeKind, SimConfig, Simulator};

fn quick() -> bool {
    std::env::var_os("GECKO_QUICK").is_some()
}

fn window_s() -> f64 {
    if quick() {
        0.02
    } else {
        0.05
    }
}

/// Forces a simulator onto the exact reference path: interpreted
/// dispatch, no hibernation coalescing, no event-horizon batching.
fn make_exact(sim: &mut Simulator) {
    sim.set_exec_mode(ExecMode::Interpreted);
    sim.set_fast_forward(false);
    sim.set_event_horizon(false);
}

/// Asserts two simulators are on bit-identical trajectories, plus the
/// fast-path step-accounting invariant on both.
fn assert_equivalent(fast: &Simulator, exact: &Simulator, label: &str) {
    assert_eq!(
        fast.metrics, exact.metrics,
        "{label}: metrics diverged (fast vs exact)"
    );
    assert_eq!(
        fast.state_hash(),
        exact.state_hash(),
        "{label}: logical state hash diverged"
    );
    assert_eq!(
        fast.time_s().to_bits(),
        exact.time_s().to_bits(),
        "{label}: simulated time diverged: {} vs {}",
        fast.time_s(),
        exact.time_s()
    );
    assert_eq!(
        fast.voltage_v().to_bits(),
        exact.voltage_v().to_bits(),
        "{label}: capacitor voltage diverged: {} vs {}",
        fast.voltage_v(),
        exact.voltage_v()
    );
    for sim in [fast, exact] {
        let s = sim.fast_path_stats();
        assert_eq!(
            s.steps,
            s.dispatches + s.ff_ticks + s.eh_insts,
            "{label}: step accounting: {s:?}"
        );
    }
}

/// The fig. 4 workload shape: bench supply, the victim app, the paper's
/// board model, and a direct-power-injection attack schedule.
fn fig4_config(scheme: SchemeKind, attack: AttackSchedule) -> SimConfig {
    SimConfig::bench_supply(scheme).with_attack(attack)
}

fn fig4_attacks() -> Vec<(&'static str, AttackSchedule)> {
    let sig = EmiSignal::new(27e6, 20.0);
    let inj = Injection::Dpi(DpiPoint::P2);
    vec![
        ("clean", AttackSchedule::none()),
        ("continuous", AttackSchedule::continuous(sig, inj)),
        (
            "bursts",
            AttackSchedule::bursts(sig, inj, &[0.004, 0.017, 0.031], 0.003),
        ),
    ]
}

#[test]
fn fig4_grid_is_bit_identical_to_reference() {
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    for scheme in SchemeKind::all() {
        for (label, attack) in fig4_attacks() {
            let mut fast = Simulator::new(&app, fig4_config(scheme, attack.clone())).unwrap();
            let mut exact = Simulator::new(&app, fig4_config(scheme, attack)).unwrap();
            make_exact(&mut exact);
            fast.run_for(window_s());
            exact.run_for(window_s());
            let tag = format!("fig4/{}/{label}", scheme.name());
            assert_equivalent(&fast, &exact, &tag);
            if label == "clean" {
                let s = fast.fast_path_stats();
                assert!(
                    s.eh_insts > 0 && s.eh_spans > 0,
                    "{tag}: clean bench-supply execution must coalesce: {s:?}"
                );
            }
        }
    }
}

#[test]
fn comparator_monitor_cells_match_reference() {
    // The comparator path skips provably-no-op evaluations instead of
    // replaying them; prove that across clean and burst-attacked cells.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let sig = EmiSignal::new(27e6, 20.0);
    let inj = Injection::Dpi(DpiPoint::P2);
    for scheme in [SchemeKind::Nvp, SchemeKind::Gecko] {
        for (label, attack) in [
            ("clean", AttackSchedule::none()),
            (
                "bursts",
                AttackSchedule::bursts(sig, inj, &[0.006, 0.021], 0.004),
            ),
        ] {
            let build = || {
                let mut cfg = fig4_config(scheme, attack.clone());
                cfg.monitor = MonitorKind::Comparator;
                cfg
            };
            let mut fast = Simulator::new(&app, build()).unwrap();
            let mut exact = Simulator::new(&app, build()).unwrap();
            make_exact(&mut exact);
            fast.run_for(window_s());
            exact.run_for(window_s());
            assert_equivalent(
                &fast,
                &exact,
                &format!("comparator/{}/{label}", scheme.name()),
            );
        }
    }
}

#[test]
fn harvesting_duty_cycle_is_bit_identical() {
    // The duty-cycling regime: active spans drain to V_backup, the device
    // checkpoints and hibernates, recharges, resumes — both coalescers
    // hand off to each other and to the exact paths around every edge.
    let app = gecko_apps::app_by_name("crc16").unwrap();
    for scheme in SchemeKind::all() {
        let build = || SimConfig::harvesting(scheme);
        let mut fast = Simulator::new(&app, build()).unwrap();
        let mut exact = Simulator::new(&app, build()).unwrap();
        make_exact(&mut exact);
        let w = if quick() { 0.2 } else { 0.6 };
        fast.run_for(w);
        exact.run_for(w);
        assert_equivalent(&fast, &exact, &format!("harvesting/{}", scheme.name()));
    }
}

#[test]
fn run_capped_slices_inside_active_spans_are_exact() {
    // Slice boundaries land mid-span: an uncapped reference walk vs a
    // chain of deliberately awkward run_capped slices. The slices must
    // split batched active spans without observable effect.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    for scheme in [SchemeKind::Nvp, SchemeKind::Gecko] {
        let mut whole = Simulator::new(&app, fig4_config(scheme, AttackSchedule::none())).unwrap();
        let mut sliced = Simulator::new(&app, fig4_config(scheme, AttackSchedule::none())).unwrap();
        let t_end = window_s();
        whole.run_for(t_end);
        let mut slice = 1u64;
        while sliced.time_s() < t_end {
            sliced.run_capped(t_end, u64::MAX, slice);
            slice = (slice * 7 + 3) % 997 + 1; // awkward, deterministic
        }
        assert_eq!(
            whole.metrics,
            sliced.metrics,
            "{}: sliced run",
            scheme.name()
        );
        assert_eq!(whole.state_hash(), sliced.state_hash());
        assert_eq!(whole.time_s().to_bits(), sliced.time_s().to_bits());
    }
}

#[test]
fn snapshot_fork_inside_active_span_resumes_identically() {
    // Fork in the middle of what the batched walk would coalesce: land
    // there by step count, snapshot, diverge (drop the fork), restore,
    // and resume — the resumed trajectory must be bit-identical to never
    // having forked, and to the per-step reference.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let build = || fig4_config(SchemeKind::Gecko, AttackSchedule::none());

    let mut straight = Simulator::new(&app, build()).unwrap();
    straight.run_steps(40_000);

    let mut forked = Simulator::new(&app, build()).unwrap();
    forked.run_steps(17_123); // lands strictly inside an active span
    let snap = forked.snapshot();
    forked.run_steps(5_000); // the fork's divergent excursion
    forked.restore(&snap);
    forked.run_steps(40_000 - 17_123);

    assert_eq!(straight.metrics, forked.metrics, "fork-resume metrics");
    assert_eq!(straight.state_hash(), forked.state_hash());
    assert_eq!(straight.time_s().to_bits(), forked.time_s().to_bits());

    let mut exact = Simulator::new(&app, build()).unwrap();
    make_exact(&mut exact);
    exact.run_steps(40_000);
    assert_eq!(straight.metrics, exact.metrics, "vs per-step reference");
    assert_eq!(straight.state_hash(), exact.state_hash());
}

#[test]
fn snapshot_mid_batch_span_matches_scalar_mid_span_fork() {
    // The DeviceBatch analog of the fork-inside-span test above: drive a
    // batch with awkward drain caps so a member lands strictly inside a
    // planned span, snapshot it there, and prove the snapshot — and the
    // trajectory resumed from it — is bit-identical to a scalar mid-span
    // fork at the same step count.
    use gecko_sim::DeviceBatch;

    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let build = |seed: u64| {
        let mut cfg = fig4_config(SchemeKind::Gecko, AttackSchedule::none());
        cfg.seed = seed;
        cfg
    };

    let mut batch = DeviceBatch::new(
        (0..3)
            .map(|seed| Simulator::new(&app, build(seed)).unwrap())
            .collect(),
    );
    batch.begin_run_for(1.0);
    let mut cap = 977u64; // smaller than bench-supply spans: lands mid-span
    for _ in 0..40 {
        batch.drain(cap);
        cap = (cap * 7 + 3) % 997 + 1;
    }
    let dev = batch.device(0);
    assert!(dev.is_on(), "the probe device must stop mid-execution");
    assert!(
        dev.fast_path_stats().eh_spans > 0,
        "the walk must have been batching spans: {:?}",
        dev.fast_path_stats()
    );
    let steps = dev.fast_path_stats().steps;
    let from_batch = dev.snapshot();

    // The scalar mid-span fork at the same step count.
    let mut scalar = Simulator::new(&app, build(0)).unwrap();
    scalar.run_steps(steps);
    assert_eq!(batch.device(0).metrics, scalar.metrics, "mid-span metrics");
    assert_eq!(batch.device(0).state_hash(), scalar.state_hash());
    assert_eq!(
        batch.device(0).time_s().to_bits(),
        scalar.time_s().to_bits()
    );
    let from_scalar = scalar.snapshot();

    // Both forks, resumed on fresh devices, must converge on the straight
    // per-step reference.
    let goal = steps + 40_000;
    let mut a = Simulator::new(&app, build(0)).unwrap();
    a.restore(&from_batch);
    a.run_steps(goal - steps);
    let mut b = Simulator::new(&app, build(0)).unwrap();
    b.restore(&from_scalar);
    b.run_steps(goal - steps);
    assert_eq!(a.metrics, b.metrics, "fork-resume metrics");
    assert_eq!(a.state_hash(), b.state_hash());
    assert_eq!(a.time_s().to_bits(), b.time_s().to_bits());

    let mut exact = Simulator::new(&app, build(0)).unwrap();
    make_exact(&mut exact);
    exact.run_steps(goal);
    assert_eq!(a.metrics, exact.metrics, "vs per-step reference");
    assert_eq!(a.state_hash(), exact.state_hash());
}

#[test]
fn spoofed_pulse_strictly_inside_coalesced_segment_matches_reference() {
    // Regression for the EMI interaction: a short spoofing pulse whose
    // window falls strictly inside what would otherwise be one coalesced
    // active segment. The batch must stop at the window edge, hand the
    // pulse to the exact path (where it spoofs the checkpoint signal),
    // and resume — with the identical trace a per-step walk produces.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let sig = EmiSignal::new(27e6, 35.0);
    let inj = Injection::Dpi(DpiPoint::P2);
    for scheme in SchemeKind::all() {
        let attack = AttackSchedule::bursts(sig, inj, &[0.0101], 0.0012);
        let build = || fig4_config(scheme, attack.clone());
        let mut fast = Simulator::new(&app, build()).unwrap();
        let mut exact = Simulator::new(&app, build()).unwrap();
        make_exact(&mut exact);
        fast.run_for(0.025);
        exact.run_for(0.025);
        let tag = format!("pulse/{}", scheme.name());
        assert_equivalent(&fast, &exact, &tag);
        let s = fast.fast_path_stats();
        assert!(
            s.eh_spans > 0,
            "{tag}: segments before/after the pulse must coalesce: {s:?}"
        );
        // Ratchet's compiler-placed checkpoints never consult the voltage
        // monitor, so a spoofed reading is (correctly) a no-op there; every
        // JIT-protocol scheme must visibly react to the pulse.
        if scheme != SchemeKind::Ratchet {
            assert!(
                fast.metrics.jit_checkpoints > 0 || fast.metrics.attack_detections > 0,
                "{tag}: the pulse must actually bite (spoofed checkpoint or detection)"
            );
        }
    }
}
