//! Differential proof that [`DeviceBatch`] lock-step batching is
//! *observationally invisible*: a batch of N devices must land every
//! device on the bit-identical trajectory of N independent scalar runs —
//! same [`gecko_sim::Metrics`], same logical state hash, same simulated
//! time and capacitor voltage down to the last bit — across the scheme
//! grid, under attack and no-attack schedules, for both workload shapes,
//! and under deliberately awkward `drain` slice caps. Companion to
//! `tests/event_horizon.rs`, which proves the same property for the
//! in-device span coalescer the batch planner shares its solver with.

use gecko_emi::attack::DpiPoint;
use gecko_emi::{AttackSchedule, EmiSignal, Injection};
use gecko_sim::{DeviceBatch, SchemeKind, SimConfig, Simulator};

fn quick() -> bool {
    std::env::var_os("GECKO_QUICK").is_some()
}

fn window_s() -> f64 {
    if quick() {
        0.02
    } else {
        0.05
    }
}

fn attacks() -> Vec<(&'static str, AttackSchedule)> {
    let sig = EmiSignal::new(27e6, 20.0);
    let inj = Injection::Dpi(DpiPoint::P2);
    vec![
        ("clean", AttackSchedule::none()),
        ("continuous", AttackSchedule::continuous(sig, inj)),
        (
            "bursts",
            AttackSchedule::bursts(sig, inj, &[0.004, 0.017, 0.031], 0.003),
        ),
    ]
}

fn build(scheme: SchemeKind, attack: AttackSchedule, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::bench_supply(scheme).with_attack(attack);
    cfg.seed = seed;
    cfg
}

fn assert_same_trajectory(batched: &Simulator, scalar: &Simulator, label: &str) {
    assert_eq!(
        batched.metrics, scalar.metrics,
        "{label}: metrics diverged (batched vs scalar)"
    );
    assert_eq!(
        batched.state_hash(),
        scalar.state_hash(),
        "{label}: logical state hash diverged"
    );
    assert_eq!(
        batched.time_s().to_bits(),
        scalar.time_s().to_bits(),
        "{label}: simulated time diverged: {} vs {}",
        batched.time_s(),
        scalar.time_s()
    );
    assert_eq!(
        batched.voltage_v().to_bits(),
        scalar.voltage_v().to_bits(),
        "{label}: capacitor voltage diverged"
    );
}

#[test]
fn heterogeneous_batch_matches_scalar_runs_bit_for_bit() {
    // One batch holding the full scheme × attack grid (12 devices, all
    // seeds distinct) vs. 12 independent scalar runs of the same cells.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let mut cells = Vec::new();
    let mut seed = 1u64;
    for scheme in SchemeKind::all() {
        for (label, attack) in attacks() {
            cells.push((scheme, label, attack, seed));
            seed += 1;
        }
    }
    let sims = cells
        .iter()
        .map(|(scheme, _, attack, seed)| {
            Simulator::new(&app, build(*scheme, attack.clone(), *seed)).unwrap()
        })
        .collect();
    let mut batch = DeviceBatch::new(sims);
    batch.run_for(window_s());

    for (i, (scheme, label, attack, seed)) in cells.iter().enumerate() {
        let mut scalar = Simulator::new(&app, build(*scheme, attack.clone(), *seed)).unwrap();
        scalar.run_for(window_s());
        let tag = format!("batch[{i}]/{}/{label}", scheme.name());
        assert_same_trajectory(batch.device(i), &scalar, &tag);
    }

    let stats = batch.stats();
    assert!(
        stats.planned > 0 && stats.coalesced_steps > 0,
        "the planner must cover bench-supply spans: {stats:?}"
    );
    assert_eq!(
        stats.coalesced_steps + stats.scalar_steps,
        batch
            .devices()
            .iter()
            .map(|s| s.fast_path_stats().steps)
            .sum::<u64>(),
        "batch step accounting must partition into coalesced + scalar: {stats:?}"
    );
}

#[test]
fn batch_until_completions_matches_scalar_runs() {
    let app = gecko_apps::app_by_name("crc16").unwrap();
    let n = 3u64;
    let horizon = if quick() { 5.0 } else { 15.0 };
    for scheme in [SchemeKind::Nvp, SchemeKind::Gecko] {
        let sims = (0..4)
            .map(|seed| Simulator::new(&app, build(scheme, AttackSchedule::none(), seed)).unwrap())
            .collect();
        let mut batch = DeviceBatch::new(sims);
        let batched = batch.run_until_completions(n, horizon);
        for (i, m) in batched.iter().enumerate() {
            let mut scalar =
                Simulator::new(&app, build(scheme, AttackSchedule::none(), i as u64)).unwrap();
            let sm = scalar.run_until_completions(n, horizon);
            assert_eq!(m, &sm, "{}/dev{i}: metrics", scheme.name());
            assert_same_trajectory(
                batch.device(i),
                &scalar,
                &format!("completions/{}/dev{i}", scheme.name()),
            );
            assert!(m.completions >= n, "bench supply must complete: {m:?}");
        }
    }
}

#[test]
fn awkward_drain_slices_match_unsliced_batch() {
    // Slice caps landing strictly inside planned spans may only split
    // them — the sliced batch must stay bit-identical to the unsliced
    // one (and hence to scalar).
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let make = || {
        let sims = (0..3)
            .map(|seed| {
                Simulator::new(&app, build(SchemeKind::Gecko, AttackSchedule::none(), seed))
                    .unwrap()
            })
            .collect();
        DeviceBatch::new(sims)
    };
    let mut whole = make();
    whole.run_for(window_s());

    let mut sliced = make();
    sliced.begin_run_for(window_s());
    let mut cap = 1u64;
    while sliced.drain(cap) > 0 {
        cap = (cap * 7 + 3) % 997 + 1; // awkward, deterministic
    }
    for i in 0..whole.len() {
        assert_same_trajectory(whole.device(i), sliced.device(i), &format!("sliced/dev{i}"));
    }
}

#[test]
fn occupancy_reflects_planner_coverage() {
    // Clean bench supply: almost every live round is planner-covered.
    // With the event horizon disabled the planner never covers anything
    // and every ON round is a scalar fallback.
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    let covered = {
        let sims = (0..2)
            .map(|seed| {
                Simulator::new(&app, build(SchemeKind::Gecko, AttackSchedule::none(), seed))
                    .unwrap()
            })
            .collect();
        let mut batch = DeviceBatch::new(sims);
        batch.run_for(0.01);
        batch.stats()
    };
    assert!(
        covered.occupancy_permille() > 500,
        "clean supply should mostly ride the planner: {covered:?}"
    );

    let uncovered = {
        let sims = (0..2)
            .map(|seed| {
                let mut sim =
                    Simulator::new(&app, build(SchemeKind::Gecko, AttackSchedule::none(), seed))
                        .unwrap();
                sim.set_event_horizon(false);
                sim
            })
            .collect();
        let mut batch = DeviceBatch::new(sims);
        batch.run_for(0.01);
        batch.stats()
    };
    assert_eq!(
        uncovered.planned, 0,
        "no planner coverage with the horizon off: {uncovered:?}"
    );
    assert!(
        uncovered.fallback_rounds > 0 && uncovered.occupancy_permille() == 0,
        "every ON round must be a counted fallback: {uncovered:?}"
    );
}
