//! Behavioural integration tests of the full-system simulator: the
//! scheme-level claims of the paper, checked end-to-end.

use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
use gecko_sim::{Metrics, SchemeKind, SimConfig, Simulator};

const RESONANT_HZ: f64 = 27e6;

fn attack_remote() -> AttackSchedule {
    AttackSchedule::continuous(
        EmiSignal::new(RESONANT_HZ, 35.0),
        Injection::Remote { distance_m: 5.0 },
    )
}

fn run(app_name: &str, config: SimConfig, seconds: f64) -> Metrics {
    let app = gecko_apps::app_by_name(app_name).expect("app exists");
    let mut sim = Simulator::new(&app, config).expect("compiles");
    sim.run_for(seconds)
}

#[test]
fn all_schemes_complete_on_bench_supply() {
    for scheme in SchemeKind::all() {
        let m = run("crc16", SimConfig::bench_supply(scheme), 0.3);
        assert!(m.completions > 0, "{scheme}: {m:?}");
        assert_eq!(m.checksum_errors, 0, "{scheme}: {m:?}");
        assert_eq!(m.dirty_deaths, 0, "{scheme}: no deaths on a bench supply");
    }
}

#[test]
fn all_schemes_survive_harvesting_outages() {
    for scheme in SchemeKind::all() {
        let m = run("bitcnt", SimConfig::harvesting(scheme), 6.0);
        assert!(m.completions > 0, "{scheme}: {m:?}");
        assert_eq!(m.checksum_errors, 0, "{scheme} must stay correct: {m:?}");
        assert!(m.reboots > 0, "{scheme}: outages force reboots: {m:?}");
    }
}

#[test]
fn nvp_checkpoints_on_real_power_loss() {
    let m = run("bitcnt", SimConfig::harvesting(SchemeKind::Nvp), 8.0);
    assert!(m.jit_checkpoints >= 2, "{m:?}");
    assert_eq!(
        m.jit_checkpoint_failures, 0,
        "no attack, no failures: {m:?}"
    );
}

#[test]
fn gecko_does_not_false_alarm_without_attack() {
    let m = run("bitcnt", SimConfig::harvesting(SchemeKind::Gecko), 8.0);
    assert_eq!(m.attack_detections, 0, "false positive: {m:?}");
}

#[test]
fn resonant_attack_collapses_nvp_forward_progress() {
    let clean = run("crc32", SimConfig::bench_supply(SchemeKind::Nvp), 0.5);
    let attacked = run(
        "crc32",
        SimConfig::bench_supply(SchemeKind::Nvp).with_attack(attack_remote()),
        0.5,
    );
    let r = attacked.forward_cycles as f64 / clean.forward_cycles.max(1) as f64;
    assert!(
        r < 0.15,
        "forward progress rate under resonant attack should collapse, got {r}"
    );
    assert!(
        attacked.jit_checkpoints > 10,
        "spoofed checkpoints: {attacked:?}"
    );
}

#[test]
fn off_resonance_attack_is_harmless() {
    let clean = run("crc32", SimConfig::bench_supply(SchemeKind::Nvp), 0.3);
    let attacked = run(
        "crc32",
        SimConfig::bench_supply(SchemeKind::Nvp).with_attack(AttackSchedule::continuous(
            EmiSignal::new(300e6, 35.0),
            Injection::Remote { distance_m: 5.0 },
        )),
        0.3,
    );
    let r = attacked.forward_cycles as f64 / clean.forward_cycles.max(1) as f64;
    assert!(r > 0.9, "off-resonance should be harmless, got {r}");
}

#[test]
fn gecko_detects_attack_and_keeps_progressing() {
    let cfg = SimConfig::harvesting(SchemeKind::Gecko).with_attack(attack_remote());
    let m = run("bitcnt", cfg, 8.0);
    assert!(m.attack_detections >= 1, "must detect: {m:?}");
    assert!(m.rollbacks >= 1, "must roll back: {m:?}");
    assert!(
        m.completions > 0,
        "GECKO keeps providing service under attack: {m:?}"
    );
    assert_eq!(m.checksum_errors, 0, "and stays correct: {m:?}");
}

#[test]
fn gecko_outperforms_nvp_and_ratchet_under_attack() {
    let mut completions = std::collections::BTreeMap::new();
    for scheme in [SchemeKind::Nvp, SchemeKind::Ratchet, SchemeKind::Gecko] {
        let cfg = SimConfig::harvesting(scheme).with_attack(attack_remote());
        let m = run("bitcnt", cfg, 8.0);
        completions.insert(scheme.name(), m.completions);
    }
    let gecko = completions["GECKO"];
    let nvp = completions["NVP"];
    let ratchet = completions["Ratchet"];
    assert!(
        gecko > 2 * nvp.max(1) && gecko > 2 * ratchet.max(1),
        "GECKO must dominate under attack: {completions:?}"
    );
}

#[test]
fn gecko_reenables_jit_after_attack_ends() {
    let app = gecko_apps::app_by_name("bitcnt").unwrap();
    // Attack only during [1 s, 3 s).
    let attack = AttackSchedule::from_windows(vec![gecko_emi::TimedAttack {
        start_s: 1.0,
        end_s: 3.0,
        signal: EmiSignal::new(RESONANT_HZ, 35.0),
        injection: Injection::Remote { distance_m: 5.0 },
    }]);
    let cfg = SimConfig::harvesting(SchemeKind::Gecko).with_attack(attack);
    let mut sim = Simulator::new(&app, cfg).unwrap();
    let m = sim.run_for(8.0);
    assert!(m.attack_detections >= 1, "{m:?}");
    assert!(
        m.jit_reenables >= 1,
        "after the attack ends GECKO returns to JIT: {m:?}"
    );
    assert_eq!(m.checksum_errors, 0, "{m:?}");
}

#[test]
fn comparator_monitor_is_more_vulnerable_than_adc() {
    let dev = gecko_emi::devices::msp430fr5994;
    // FR5994's comparator path resonates at 5–6 MHz.
    let comp_attack = AttackSchedule::continuous(
        EmiSignal::new(5e6, 35.0),
        Injection::Remote { distance_m: 5.0 },
    );
    let adc_cfg = SimConfig::bench_supply(SchemeKind::Nvp)
        .with_device(dev(), MonitorKind::Adc)
        .with_attack(comp_attack.clone());
    let comp_cfg = SimConfig::bench_supply(SchemeKind::Nvp)
        .with_device(dev(), MonitorKind::Comparator)
        .with_attack(comp_attack);
    let adc = run("crc16", adc_cfg, 0.4);
    let comp = run("crc16", comp_cfg, 0.4);
    assert!(
        comp.forward_cycles < adc.forward_cycles / 2,
        "comparator path collapses harder at its resonance: adc={} comp={}",
        adc.forward_cycles,
        comp.forward_cycles
    );
}

#[test]
fn simulation_is_deterministic() {
    let a = run(
        "fir",
        SimConfig::harvesting(SchemeKind::Gecko).with_attack(attack_remote()),
        3.0,
    );
    let b = run(
        "fir",
        SimConfig::harvesting(SchemeKind::Gecko).with_attack(attack_remote()),
        3.0,
    );
    assert_eq!(a, b);

    // Sharing one compiled artifact (the campaign-engine path) must give
    // the same result as compiling privately, and reusing it across
    // simulators must not let state leak between runs.
    let app = gecko_apps::app_by_name("fir").unwrap();
    let compiled = gecko_sim::CompiledApp::build(
        &app,
        SchemeKind::Gecko,
        &gecko_compiler::CompileOptions::default(),
    )
    .unwrap();
    let via_artifact = || {
        let cfg = SimConfig::harvesting(SchemeKind::Gecko).with_attack(attack_remote());
        let mut sim = Simulator::from_compiled(&compiled, cfg);
        sim.run_for(3.0)
    };
    let c = via_artifact();
    let d = via_artifact();
    assert_eq!(a, c, "shared artifact changes nothing");
    assert_eq!(c, d, "artifact reuse leaks no state");
}

#[test]
fn gecko_overhead_is_small_and_ratchet_large() {
    // Figure 11's shape on one app: exec cycles per completion, bench
    // supply, no outages, no attack.
    let per_completion = |scheme: SchemeKind| -> f64 {
        let app = gecko_apps::app_by_name("crc32").unwrap();
        let mut sim = Simulator::new(&app, SimConfig::bench_supply(scheme)).unwrap();
        let m = sim.run_until_completions(20, 5.0);
        assert!(m.completions >= 20, "{scheme}: {m:?}");
        (m.forward_cycles + m.overhead_cycles) as f64 / m.completions as f64
    };
    let nvp = per_completion(SchemeKind::Nvp);
    let ratchet = per_completion(SchemeKind::Ratchet);
    let gecko = per_completion(SchemeKind::Gecko);
    let unpruned = per_completion(SchemeKind::GeckoNoPrune);
    let r_ratchet = ratchet / nvp;
    let r_gecko = gecko / nvp;
    let r_unpruned = unpruned / nvp;
    assert!(r_ratchet > 1.5, "Ratchet must be much slower: {r_ratchet}");
    assert!(r_gecko < 1.25, "GECKO must be cheap: {r_gecko}");
    assert!(
        r_gecko <= r_unpruned + 1e-9,
        "pruning cannot make things slower: {r_gecko} vs {r_unpruned}"
    );
    assert!(
        r_unpruned < r_ratchet,
        "even unpruned GECKO beats Ratchet: {r_unpruned} vs {r_ratchet}"
    );
}
