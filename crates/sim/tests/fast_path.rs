//! Differential proof that the fast-path machinery is *observationally
//! invisible*: predecoded dispatch and hibernation fast-forward must
//! produce bit-identical trajectories to the interpreted, tick-exact
//! reference — same [`gecko_sim::Metrics`], same logical state hash, same
//! simulated time and capacitor voltage down to the last bit — across the
//! full app × scheme grid, randomized physical configurations, and
//! snapshots forked from the middle of a fast-forwarded span.

use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
use gecko_energy::{ConstantPower, PulsedRf};
use gecko_isa::SplitMix64;
use gecko_sim::{ExecMode, SchemeKind, SimConfig, Simulator};

fn quick() -> bool {
    std::env::var_os("GECKO_QUICK").is_some()
}

/// Forces a simulator onto the exact reference path: interpreted dispatch,
/// no hibernation coalescing, no event-horizon batching.
fn make_exact(sim: &mut Simulator) {
    sim.set_exec_mode(ExecMode::Interpreted);
    sim.set_fast_forward(false);
    sim.set_event_horizon(false);
}

/// Asserts two simulators are on bit-identical trajectories.
fn assert_equivalent(fast: &Simulator, exact: &Simulator, label: &str) {
    assert_eq!(
        fast.metrics, exact.metrics,
        "{label}: metrics diverged (fast vs exact)"
    );
    assert_eq!(
        fast.state_hash(),
        exact.state_hash(),
        "{label}: logical state hash diverged"
    );
    assert_eq!(
        fast.time_s().to_bits(),
        exact.time_s().to_bits(),
        "{label}: simulated time diverged: {} vs {}",
        fast.time_s(),
        exact.time_s()
    );
    assert_eq!(
        fast.voltage_v().to_bits(),
        exact.voltage_v().to_bits(),
        "{label}: capacitor voltage diverged: {} vs {}",
        fast.voltage_v(),
        exact.voltage_v()
    );
}

/// A duty-cycling configuration with attack bursts and quiet gaps: the
/// regime where both the fast-forward (hibernation spans between bursts)
/// and its exact fallback (spans overlapping a burst) are exercised.
fn grid_config(scheme: SchemeKind, monitor: MonitorKind) -> SimConfig {
    let mut cfg = SimConfig::harvesting(scheme);
    cfg.monitor = monitor;
    cfg.attack = AttackSchedule::bursts(
        EmiSignal::new(27e6, 35.0),
        Injection::Remote { distance_m: 2.0 },
        &[0.05, 0.4, 0.9],
        0.08,
    );
    cfg
}

#[test]
fn grid_fast_path_is_bit_identical_to_reference() {
    let quick_set = ["blink", "crc16", "bitcnt"];
    let window_s = if quick() { 0.6 } else { 1.0 };
    for app in &gecko_apps::all_apps() {
        if quick() && !quick_set.contains(&app.name) {
            continue;
        }
        let name = app.name;
        for (i, scheme) in SchemeKind::all().into_iter().enumerate() {
            // Alternate monitor kinds so both the ADC sample-and-hold
            // replay and the comparator latch-skip paths are covered.
            let monitor = if i % 2 == 0 {
                MonitorKind::Adc
            } else {
                MonitorKind::Comparator
            };
            let mut fast = Simulator::new(app, grid_config(scheme, monitor)).unwrap();
            let mut exact = Simulator::new(app, grid_config(scheme, monitor)).unwrap();
            make_exact(&mut exact);
            fast.run_for(window_s);
            exact.run_for(window_s);
            assert_equivalent(&fast, &exact, &format!("{name}/{}", scheme.name()));
        }
    }
}

#[test]
fn filtered_adc_falls_back_to_exact_ticks() {
    // The median filter carries per-poll state, so the fast-forward must
    // refuse to engage — and the trajectory must still match the reference.
    let app = gecko_apps::app_by_name("blink").unwrap();
    let build = || {
        let mut cfg = grid_config(SchemeKind::Nvp, MonitorKind::Adc);
        cfg.adc_filter_taps = Some(5);
        cfg
    };
    let mut fast = Simulator::new(&app, build()).unwrap();
    let mut exact = Simulator::new(&app, build()).unwrap();
    make_exact(&mut exact);
    fast.run_for(0.8);
    exact.run_for(0.8);
    assert_equivalent(&fast, &exact, "filtered-adc");
    assert_eq!(
        fast.fast_path_stats().ff_ticks,
        0,
        "filter present: no ticks may be coalesced"
    );
}

#[test]
fn randomized_configurations_stay_bit_identical() {
    let cases = if quick() { 4 } else { 12 };
    let names = ["blink", "crc16", "bitcnt", "fir", "qsort"];
    let mut rng = SplitMix64::new(0xFA57_0A71);
    for case in 0..cases {
        let mut case_rng = rng.split();
        let name = names[case_rng.range_u64(0, names.len() as u64) as usize];
        let app = gecko_apps::app_by_name(name).unwrap();
        let scheme = SchemeKind::all()[case_rng.range_u64(0, 4) as usize];
        let monitor = if case_rng.range_u64(0, 2) == 0 {
            MonitorKind::Adc
        } else {
            MonitorKind::Comparator
        };
        let power_w = case_rng.range_f64(-6.5, -2.8);
        let power_w = 10f64.powf(power_w); // 0.3 µW .. 1.6 mW
        let pulsed = case_rng.range_u64(0, 3) == 0;
        let capacitance_f = case_rng.range_f64(20e-6, 1e-3);
        let initial_v = case_rng.range_f64(0.0, 3.3);
        let seed = case_rng.next_u64();
        let n_bursts = case_rng.range_u64(0, 4);
        let mut starts = Vec::new();
        for _ in 0..n_bursts {
            starts.push(case_rng.range_f64(0.0, 1.5));
        }
        let burst_dur = case_rng.range_f64(0.01, 0.2);
        let window_s = case_rng.range_f64(0.3, 1.2);

        let build = || {
            let mut cfg = SimConfig::harvesting(scheme)
                .with_capacitor(capacitance_f, initial_v)
                .with_attack(AttackSchedule::bursts(
                    EmiSignal::new(27e6, 35.0),
                    Injection::Remote { distance_m: 1.0 },
                    &starts,
                    burst_dur,
                ));
            cfg.monitor = monitor;
            cfg.seed = seed;
            cfg.harvester = if pulsed {
                Box::new(PulsedRf::new(0.02, 0.35, power_w))
            } else {
                Box::new(ConstantPower::new(power_w))
            };
            cfg
        };
        let mut fast = Simulator::new(&app, build()).unwrap();
        let mut exact = Simulator::new(&app, build()).unwrap();
        make_exact(&mut exact);
        fast.run_for(window_s);
        exact.run_for(window_s);
        assert_equivalent(&fast, &exact, &format!("case {case} ({name})"));
    }
}

#[test]
fn advance_matches_run_steps_exactly() {
    // `advance` promises step-for-step equivalence with `step_one`, not
    // just same-time equivalence: after the same number of steps both
    // simulators sit at the same point.
    let app = gecko_apps::app_by_name("crc16").unwrap();
    let build = || SimConfig::harvesting(SchemeKind::Gecko).with_capacitor(200e-6, 0.0);
    let mut fast = Simulator::new(&app, build()).unwrap();
    let mut exact = Simulator::new(&app, build()).unwrap();
    make_exact(&mut exact);
    for chunk in [1u64, 7, 500, 12_000, 50_000] {
        let n = fast.advance(chunk);
        assert_eq!(n, chunk, "advance takes exactly the requested steps");
        exact.run_steps(chunk);
        assert_equivalent(&fast, &exact, &format!("after +{chunk} steps"));
    }
    let stats = fast.fast_path_stats();
    assert_eq!(
        stats.steps,
        stats.dispatches + stats.ff_ticks + stats.eh_insts,
        "step accounting: {stats:?}"
    );
    assert!(
        stats.ff_ticks > 0,
        "a 200 µF cap charging from empty must hibernate long enough to \
         coalesce: {stats:?}"
    );
}

#[test]
fn run_capped_slices_reproduce_run_for_bit_exactly() {
    // The supervisor's cooperative budget checks slice a workload into
    // `run_capped` calls sharing one `t_end`. Slicing may split coalesced
    // hibernation spans, so this is the regression proof that the sliced
    // walk lands on the identical trajectory — on a hibernation-heavy
    // configuration where spans genuinely straddle slice boundaries.
    let app = gecko_apps::app_by_name("blink").unwrap();
    let build = || {
        let mut cfg = SimConfig::harvesting(SchemeKind::Gecko).with_capacitor(200e-6, 0.0);
        cfg.harvester = Box::new(ConstantPower::new(3e-6));
        cfg
    };
    let window_s = 2.0;
    for slice in [1u64, 137, 4_096, u64::MAX] {
        let mut sliced = Simulator::new(&app, build()).unwrap();
        let t_end = sliced.time_s() + window_s;
        let mut total = 0u64;
        loop {
            let taken = sliced.run_capped(t_end, u64::MAX, slice);
            total += taken;
            if sliced.time_s() >= t_end {
                break;
            }
            assert_eq!(taken, slice, "a capped call fills its cap");
        }
        let mut reference = Simulator::new(&app, build()).unwrap();
        reference.run_for(window_s);
        assert_equivalent(&sliced, &reference, &format!("slice {slice}"));
        assert_eq!(total, sliced.fast_path_stats().steps);
    }
    // And the completion-target form must reproduce run_until_completions.
    let mut capped = Simulator::new(&app, build()).unwrap();
    let t_end = capped.time_s() + 30.0;
    while capped.time_s() < t_end && capped.metrics.completions < 2 {
        capped.run_capped(t_end, 2, 10_000);
    }
    let mut reference = Simulator::new(&app, build()).unwrap();
    reference.run_until_completions(2, 30.0);
    assert_equivalent(&capped, &reference, "until-completions");
}

#[test]
fn snapshot_forked_inside_a_fast_forwarded_span_is_exact() {
    // Drive a simulator deep into a hibernation span that the fast path
    // coalesces, snapshot mid-span, and check (a) the snapshot carries an
    // exact `sim_time_s` even though no run loop has exited, and (b) a
    // fast continuation and an exact continuation from the restored
    // snapshot land on identical trajectories.
    let app = gecko_apps::app_by_name("blink").unwrap();
    let build = || SimConfig::harvesting(SchemeKind::Nvp).with_capacitor(470e-6, 0.0);
    let mut sim = Simulator::new(&app, build()).unwrap();
    assert!(!sim.is_on(), "starts hibernating");
    sim.advance(10_000);
    assert!(
        sim.fast_path_stats().ff_ticks > 0,
        "span was coalesced: {:?}",
        sim.fast_path_stats()
    );
    assert_eq!(
        sim.metrics.sim_time_s.to_bits(),
        sim.time_s().to_bits(),
        "sim_time_s must be exact mid-span, not only at run-loop exit"
    );

    let snap = sim.snapshot();
    let m_fast = sim.run_for(4.0);
    let fast_hash = sim.state_hash();
    let fast_t = sim.time_s().to_bits();
    let fast_v = sim.voltage_v().to_bits();

    sim.restore(&snap);
    make_exact(&mut sim);
    let m_exact = sim.run_for(4.0);
    assert_eq!(m_fast, m_exact, "metrics diverged across the fork");
    assert_eq!(sim.state_hash(), fast_hash, "state hash diverged");
    assert_eq!(sim.time_s().to_bits(), fast_t, "time diverged");
    assert_eq!(sim.voltage_v().to_bits(), fast_v, "voltage diverged");
}
