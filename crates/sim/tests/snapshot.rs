//! Snapshot/restore round-trip property: restoring a mid-run snapshot and
//! resuming must be bit-identical — metrics and NVM checksum — to never
//! having diverged. The crash-consistency checker's snapshot-fork
//! exploration is sound only if this holds for arbitrary divergences, so
//! the test perturbs the forked simulator aggressively (extra execution,
//! injected failures, spoofed signals) before rewinding.

use gecko_isa::SplitMix64;
use gecko_sim::{SchemeKind, SimConfig, Simulator};

/// A seeded diversity of physical configurations: scheme, capacitance and
/// harvested power all vary, covering always-on bench runs as well as
/// naturally duty-cycling ones (where snapshots land mid-sleep and
/// mid-recovery).
fn config_for(rng: &mut SplitMix64) -> SimConfig {
    let scheme = SchemeKind::all()[rng.range_u64(0, 4) as usize];
    let duty_cycling = rng.range_u64(0, 2) == 0;
    let seed = rng.next_u64();
    let cap_steps = rng.range_u64(1, 5);
    let mut config = if duty_cycling {
        let mut c = SimConfig::harvesting(scheme);
        c.capacitance_f = 47e-6 * cap_steps as f64;
        c
    } else {
        SimConfig::bench_supply(scheme)
    };
    config.seed = seed;
    config
}

fn nvm_checksum(sim: &Simulator) -> u64 {
    sim.nvm().words().iter().fold(0u64, |h, &w| {
        h.wrapping_mul(31).wrapping_add(w as u32 as u64)
    })
}

#[test]
fn restore_resume_is_bit_identical_to_uninterrupted_run() {
    let quick = std::env::var_os("GECKO_QUICK").is_some();
    let trials = if quick { 6 } else { 24 };
    let app = gecko_apps::app_by_name("crc16").unwrap();
    let mut rng = SplitMix64::new(0xC0FFEE);
    for trial in 0..trials {
        let mut trial_rng = rng.split();
        let prefix = trial_rng.range_u64(100, 20_000);
        let suffix = trial_rng.range_u64(100, 20_000);

        // Identical configurations from a cloned stream.
        let mut reference = Simulator::new(&app, config_for(&mut trial_rng.clone())).unwrap();
        let mut forked = Simulator::new(&app, config_for(&mut trial_rng.clone())).unwrap();

        reference.run_steps(prefix);
        let reference_metrics = reference.run_steps(suffix);

        // Fork: run the prefix, snapshot, diverge hard, rewind, resume.
        forked.run_steps(prefix);
        let snap = forked.snapshot();
        forked.run_steps(trial_rng.range_u64(1, 5_000));
        forked.inject_power_failure();
        forked.run_steps(trial_rng.range_u64(1, 5_000));
        forked.inject_spoofed_checkpoint();
        forked.inject_spoofed_wakeup();
        forked.run_steps(trial_rng.range_u64(1, 2_000));
        forked.restore(&snap);
        let forked_metrics = forked.run_steps(suffix);

        assert_eq!(
            forked_metrics, reference_metrics,
            "trial {trial}: metrics diverged after restore"
        );
        assert_eq!(
            nvm_checksum(&forked),
            nvm_checksum(&reference),
            "trial {trial}: NVM diverged after restore"
        );
        assert_eq!(
            forked.state_hash(),
            reference.state_hash(),
            "trial {trial}: logical state hash diverged after restore"
        );
    }
}

#[test]
fn snapshot_then_immediate_restore_is_a_noop() {
    let app = gecko_apps::app_by_name("blink").unwrap();
    let mut sim = Simulator::new(&app, SimConfig::bench_supply(SchemeKind::Gecko)).unwrap();
    sim.run_steps(50);
    let before_hash = sim.state_hash();
    let before_time = sim.time_s();
    let before_metrics = sim.metrics;
    let snap = sim.snapshot();
    sim.restore(&snap);
    assert_eq!(sim.state_hash(), before_hash);
    assert_eq!(sim.time_s(), before_time);
    assert_eq!(sim.metrics, before_metrics);
}
