//! Simulation counters backing the evaluation's metrics: forward progress
//! rate `R`, checkpoint failure rate `F`, throughput, and corruption.

/// Accumulated counters from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Simulated wall-clock seconds.
    pub sim_time_s: f64,
    /// Cycles spent executing *application* instructions (forward
    /// progress; excludes runtime overhead, restores, reboots).
    pub forward_cycles: u64,
    /// Cycles spent on runtime overhead (checkpoints, restores, boots,
    /// recovery blocks).
    pub overhead_cycles: u64,
    /// Completed application runs.
    pub completions: u64,
    /// Completions whose output checksum was wrong — silent data
    /// corruption, the worst outcome of the attack.
    pub checksum_errors: u64,
    /// JIT checkpoints started.
    pub jit_checkpoints: u64,
    /// JIT checkpoints that failed to complete (energy exhausted
    /// mid-write): the paper's `N_fail`.
    pub jit_checkpoint_failures: u64,
    /// Reboots (wake-ups after any shutdown or power failure).
    pub reboots: u64,
    /// Power failures with no completed checkpoint (dirty deaths).
    pub dirty_deaths: u64,
    /// Rollback recoveries performed (region re-entry).
    pub rollbacks: u64,
    /// Recovery-block (slice) executions during rollbacks.
    pub recovery_slices: u64,
    /// Attack detections (mode switches JIT → rollback).
    pub attack_detections: u64,
    /// JIT re-enables after a clean probation (mode rollback → JIT).
    pub jit_reenables: u64,
    /// Checkpoint pseudo-instructions executed (GECKO's dynamic
    /// checkpoint-store count, Figure 12).
    pub checkpoint_stores: u64,
    /// Region boundary commits executed.
    pub boundary_commits: u64,
    /// Instructions skipped by an EM instruction fault.
    pub fault_skips: u64,
    /// Instructions corrupted (opcode or operand) by an EM instruction
    /// fault.
    pub fault_corruptions: u64,
    /// Total energy drawn from the capacitor (nJ).
    pub energy_nj: f64,
}

crate::impl_record!(Metrics {
    sim_time_s,
    forward_cycles,
    overhead_cycles,
    completions,
    checksum_errors,
    jit_checkpoints,
    jit_checkpoint_failures,
    reboots,
    dirty_deaths,
    rollbacks,
    recovery_slices,
    attack_detections,
    jit_reenables,
    checkpoint_stores,
    boundary_commits,
    fault_skips,
    fault_corruptions,
    energy_nj
});

impl Metrics {
    /// Merges another run's counters into this one (summing; simulated
    /// time accumulates too). The campaign engine folds per-item metrics
    /// in work-item order with this, so aggregates are independent of
    /// worker count.
    pub fn absorb(&mut self, other: &Metrics) {
        self.sim_time_s += other.sim_time_s;
        self.forward_cycles += other.forward_cycles;
        self.overhead_cycles += other.overhead_cycles;
        self.completions += other.completions;
        self.checksum_errors += other.checksum_errors;
        self.jit_checkpoints += other.jit_checkpoints;
        self.jit_checkpoint_failures += other.jit_checkpoint_failures;
        self.reboots += other.reboots;
        self.dirty_deaths += other.dirty_deaths;
        self.rollbacks += other.rollbacks;
        self.recovery_slices += other.recovery_slices;
        self.attack_detections += other.attack_detections;
        self.jit_reenables += other.jit_reenables;
        self.checkpoint_stores += other.checkpoint_stores;
        self.boundary_commits += other.boundary_commits;
        self.fault_skips += other.fault_skips;
        self.fault_corruptions += other.fault_corruptions;
        self.energy_nj += other.energy_nj;
    }

    /// Checkpoint failure rate `F = N_fail / N_checkpoints` (0 when no
    /// checkpoints ran).
    pub fn checkpoint_failure_rate(&self) -> f64 {
        if self.jit_checkpoints == 0 {
            0.0
        } else {
            self.jit_checkpoint_failures as f64 / self.jit_checkpoints as f64
        }
    }

    /// Application throughput in completions per minute.
    pub fn throughput_per_min(&self) -> f64 {
        if self.sim_time_s <= 0.0 {
            0.0
        } else {
            self.completions as f64 * 60.0 / self.sim_time_s
        }
    }

    /// Fraction of executed cycles that made forward progress.
    pub fn efficiency(&self) -> f64 {
        let total = self.forward_cycles + self.overhead_cycles;
        if total == 0 {
            0.0
        } else {
            self.forward_cycles as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let m = Metrics::default();
        assert_eq!(m.checkpoint_failure_rate(), 0.0);
        assert_eq!(m.throughput_per_min(), 0.0);
        assert_eq!(m.efficiency(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let m = Metrics {
            sim_time_s: 30.0,
            completions: 10,
            jit_checkpoints: 4,
            jit_checkpoint_failures: 1,
            forward_cycles: 75,
            overhead_cycles: 25,
            ..Default::default()
        };
        assert!((m.checkpoint_failure_rate() - 0.25).abs() < 1e-12);
        assert!((m.throughput_per_min() - 20.0).abs() < 1e-12);
        assert!((m.efficiency() - 0.75).abs() < 1e-12);
    }
}
