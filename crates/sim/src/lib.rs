//! # gecko-sim
//!
//! Full-system co-simulation of an intermittent device under EMI attack:
//! the MCU interpreter, capacitor and harvester, voltage monitor with
//! EMI-induced disturbance, and one of four recovery schemes —
//!
//! * **NVP** — the commodity JIT-checkpointing baseline (TI CTPL model);
//! * **Ratchet** — compiler-formed idempotent regions with centralized
//!   runtime checkpointing at every boundary;
//! * **GECKO** — the paper's contribution: JIT checkpointing while safe,
//!   reactive attack detection (ACK + region-repeat), rollback recovery
//!   over pruned checkpoints and recovery blocks while under attack;
//! * **GECKO w/o pruning** — the Figure 11 ablation.
//!
//! The simulation is instruction-stepped: each instruction consumes cycles
//! and capacitor energy; harvested power integrates continuously; the
//! voltage monitor is sampled on its own period with the attack disturbance
//! superimposed; power failure wipes exactly the volatile state.
//!
//! [`experiments`] contains one entry point per table/figure of the paper's
//! evaluation; `gecko-bench` wraps them into runnable bench targets.
//!
//! ```
//! use gecko_sim::{SchemeKind, SimConfig, Simulator};
//!
//! let app = gecko_apps::app_by_name("crc16").unwrap();
//! let config = SimConfig::bench_supply(SchemeKind::Gecko);
//! let mut sim = Simulator::new(&app, config).unwrap();
//! let m = sim.run_for(0.25); // a quarter second of device time
//! assert!(m.completions > 0, "crc16 completes many times: {m:?}");
//! assert_eq!(m.checksum_errors, 0);
//! ```

#![deny(missing_docs)]

pub mod areas;
pub mod batch;
pub mod device;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod scheme;
pub mod trace;

pub use batch::{BatchStats, DeviceBatch};
pub use device::{
    CompiledApp, ExecMode, FastPathStats, SimConfig, SimSnapshot, Simulator, SpanProfile,
};
pub use metrics::Metrics;
pub use report::{Record, Value};
pub use scheme::SchemeKind;
pub use trace::{Trace, TraceSample};
