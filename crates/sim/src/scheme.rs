//! Recovery-scheme identifiers.

use std::fmt;

/// Which crash-consistency scheme a simulated device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Commodity JIT checkpointing (TI CTPL / non-volatile processor).
    Nvp,
    /// Ratchet-style rollback: idempotent regions + centralized
    /// full-register checkpoints at every boundary.
    Ratchet,
    /// GECKO with checkpoint pruning (the paper's contribution).
    Gecko,
    /// GECKO with pruning disabled (Figure 11 ablation).
    GeckoNoPrune,
}

impl SchemeKind {
    /// All schemes, in the paper's comparison order.
    pub fn all() -> [SchemeKind; 4] {
        [
            SchemeKind::Nvp,
            SchemeKind::Ratchet,
            SchemeKind::Gecko,
            SchemeKind::GeckoNoPrune,
        ]
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Nvp => "NVP",
            SchemeKind::Ratchet => "Ratchet",
            SchemeKind::Gecko => "GECKO",
            SchemeKind::GeckoNoPrune => "GECKO w/o pruning",
        }
    }

    /// Stable machine-readable identifier, used on the wire (JSON specs)
    /// and in file names. Unlike [`SchemeKind::name`], slugs contain no
    /// spaces or slashes.
    pub fn slug(self) -> &'static str {
        match self {
            SchemeKind::Nvp => "nvp",
            SchemeKind::Ratchet => "ratchet",
            SchemeKind::Gecko => "gecko",
            SchemeKind::GeckoNoPrune => "gecko-no-prune",
        }
    }

    /// Resolves a scheme from either its [`slug`](SchemeKind::slug) or its
    /// display [`name`](SchemeKind::name) (case-insensitive for slugs).
    pub fn from_name(name: &str) -> Option<SchemeKind> {
        SchemeKind::all()
            .into_iter()
            .find(|s| s.slug().eq_ignore_ascii_case(name) || s.name() == name)
    }

    /// Whether this scheme instruments the program with region boundaries.
    pub fn uses_regions(self) -> bool {
        !matches!(self, SchemeKind::Nvp)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            SchemeKind::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn slugs_round_trip() {
        for s in SchemeKind::all() {
            assert_eq!(SchemeKind::from_name(s.slug()), Some(s));
            assert_eq!(SchemeKind::from_name(s.name()), Some(s));
        }
        assert_eq!(
            SchemeKind::from_name("GECKO-NO-PRUNE"),
            Some(SchemeKind::GeckoNoPrune)
        );
        assert_eq!(SchemeKind::from_name("bogus"), None);
    }

    #[test]
    fn region_usage() {
        assert!(!SchemeKind::Nvp.uses_regions());
        assert!(SchemeKind::Ratchet.uses_regions());
        assert!(SchemeKind::Gecko.uses_regions());
    }
}
