//! Time-series recording of a simulated device: capacitor voltage, power
//! state and runtime mode sampled at a fixed interval — the raw material
//! behind Figure 9-style plots and the `voltage_trace` example.

use crate::areas::GeckoMode;
use crate::device::Simulator;
use crate::metrics::Metrics;

/// One sample of device state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Simulation time (s).
    pub t_s: f64,
    /// Real capacitor voltage (V).
    pub voltage_v: f64,
    /// Whether the CPU was executing.
    pub on: bool,
    /// Whether GECKO was in rollback (monitor-distrusting) mode.
    pub rollback_mode: bool,
    /// Cumulative completed application runs.
    pub completions: u64,
}

crate::impl_record!(TraceSample {
    t_s,
    voltage_v,
    on,
    rollback_mode,
    completions
});

/// A recorded time series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    samples: Vec<TraceSample>,
}

impl Trace {
    /// Records `duration_s` of device time, sampling every `step_s`.
    /// The simulator advances as a side effect.
    ///
    /// # Panics
    ///
    /// Panics if `step_s <= 0`.
    pub fn record(sim: &mut Simulator, duration_s: f64, step_s: f64) -> Trace {
        assert!(step_s > 0.0, "step must be positive");
        let t_end = sim.time_s() + duration_s;
        let mut samples = Vec::new();
        while sim.time_s() < t_end {
            let m: Metrics = sim.run_for(step_s);
            samples.push(TraceSample {
                t_s: sim.time_s(),
                voltage_v: sim.voltage_v(),
                on: sim.is_on(),
                rollback_mode: sim.gecko_mode() == Some(GeckoMode::Rollback),
                completions: m.completions,
            });
        }
        Trace { samples }
    }

    /// The recorded samples in time order.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Minimum and maximum recorded voltage.
    pub fn voltage_range(&self) -> (f64, f64) {
        self.samples
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
                (lo.min(s.voltage_v), hi.max(s.voltage_v))
            })
    }

    /// Fraction of samples during which the device was on.
    pub fn duty(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.on).count() as f64 / self.samples.len() as f64
    }

    /// Renders an ASCII strip chart of the voltage (one row per sample
    /// bucket), for terminal examples.
    pub fn ascii_chart(&self, width: usize, v_max: f64) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let col = ((s.voltage_v / v_max).clamp(0.0, 1.0) * (width - 1) as f64) as usize;
            let mut row = vec![b' '; width];
            row[col] = b'*';
            let state = if !s.on {
                'z'
            } else if s.rollback_mode {
                'R'
            } else {
                'J'
            };
            out.push_str(&format!(
                "{:7.3}s {state} |{}| {:.2} V\n",
                s.t_s,
                String::from_utf8_lossy(&row),
                s.voltage_v
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimConfig;
    use crate::scheme::SchemeKind;

    #[test]
    fn records_harvesting_duty_cycle() {
        let app = gecko_apps::app_by_name("blink").unwrap();
        let mut sim = Simulator::new(&app, SimConfig::harvesting(SchemeKind::Nvp)).unwrap();
        let trace = Trace::record(&mut sim, 6.0, 0.05);
        assert!(trace.len() > 100);
        let (lo, hi) = trace.voltage_range();
        assert!(lo < hi, "voltage must move: {lo}..{hi}");
        assert!(hi <= 3.3 + 1e-9);
        let duty = trace.duty();
        assert!(
            duty > 0.1 && duty < 0.95,
            "weak harvesting duty-cycles: {duty}"
        );
    }

    #[test]
    fn rollback_mode_is_visible_in_traces() {
        use gecko_emi::{AttackSchedule, EmiSignal, Injection};
        let app = gecko_apps::app_by_name("blink").unwrap();
        let cfg = SimConfig::harvesting(SchemeKind::Gecko).with_attack(AttackSchedule::continuous(
            EmiSignal::new(27e6, 35.0),
            Injection::Remote { distance_m: 5.0 },
        ));
        let mut sim = Simulator::new(&app, cfg).unwrap();
        let trace = Trace::record(&mut sim, 5.0, 0.05);
        assert!(
            trace.samples().iter().any(|s| s.rollback_mode),
            "the attack must push GECKO into rollback mode"
        );
    }

    #[test]
    fn ascii_chart_renders_one_row_per_sample() {
        let app = gecko_apps::app_by_name("blink").unwrap();
        let mut sim = Simulator::new(&app, SimConfig::bench_supply(SchemeKind::Nvp)).unwrap();
        let trace = Trace::record(&mut sim, 0.01, 0.002);
        let chart = trace.ascii_chart(40, 3.3);
        assert_eq!(chart.lines().count(), trace.len());
        assert!(chart.contains('*'));
    }
}
