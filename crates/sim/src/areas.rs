//! Non-volatile runtime areas used by the rollback schemes: the GECKO
//! checkpoint array and Ratchet's double-buffered register file.

use gecko_isa::{Reg, RegionId, Word};
use gecko_mcu::Nvm;

/// GECKO's compiler-managed checkpoint storage.
///
/// Layout (word offsets from `base`):
///
/// * `0` — committed region id (single-word atomic commit);
/// * `1` — total boundary crossings (progress stamp for the
///   region-repeat attack detector);
/// * `2` — runtime mode (0 = fresh boot, 1 = JIT enabled, 2 = rollback);
/// * `3` — boot record: region id observed at last boot;
/// * `4` — boot record: crossings observed at last boot;
/// * `5` — reload-pending flag (application restart protocol);
/// * `6` — cycles the device had been on when its last JIT checkpoint ran
///   (the minimum-power-on-period attack detector's evidence);
/// * `7..7+16·3` — the checkpoint array: 3 slots per register (slots 0/1
///   from 2-coloring, slot 2 for coloring fix-up regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeckoArea {
    base: u32,
}

/// GECKO runtime mode persisted in NVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeckoMode {
    /// Freshly manufactured device (zeroed NVM).
    Fresh,
    /// JIT checkpointing active (no attack suspected).
    Jit,
    /// Rollback-only: the voltage monitor is distrusted.
    Rollback,
}

impl GeckoArea {
    const REGION: u32 = 0;
    const CROSSINGS: u32 = 1;
    const MODE: u32 = 2;
    const BOOT_REGION: u32 = 3;
    const BOOT_CROSSINGS: u32 = 4;
    const RELOAD: u32 = 5;
    const ON_CYCLES: u32 = 6;
    const SLOTS: u32 = 7;

    /// Words occupied by the area.
    pub const SIZE_WORDS: u32 = 7 + (Reg::COUNT as u32) * 3;

    /// Creates an area at `base`.
    pub fn new(base: u32) -> GeckoArea {
        GeckoArea { base }
    }

    /// Commits entry into `region`: one atomic word write plus the
    /// crossings stamp.
    pub fn commit_region(&self, nvm: &mut Nvm, region: RegionId) {
        nvm.store(self.base + Self::REGION, region.index() as Word);
        let c = nvm.read(self.base + Self::CROSSINGS);
        nvm.store(self.base + Self::CROSSINGS, c.wrapping_add(1));
    }

    /// The committed region id.
    pub fn committed_region(&self, nvm: &Nvm) -> RegionId {
        RegionId::new(nvm.read(self.base + Self::REGION).max(0) as usize)
    }

    /// The boundary-crossing progress stamp.
    pub fn crossings(&self, nvm: &Nvm) -> Word {
        nvm.read(self.base + Self::CROSSINGS)
    }

    /// The persisted runtime mode.
    pub fn mode(&self, nvm: &Nvm) -> GeckoMode {
        match nvm.read(self.base + Self::MODE) {
            1 => GeckoMode::Jit,
            2 => GeckoMode::Rollback,
            _ => GeckoMode::Fresh,
        }
    }

    /// Persists the runtime mode.
    pub fn set_mode(&self, nvm: &mut Nvm, mode: GeckoMode) {
        let v = match mode {
            GeckoMode::Fresh => 0,
            GeckoMode::Jit => 1,
            GeckoMode::Rollback => 2,
        };
        nvm.store(self.base + Self::MODE, v);
    }

    /// Boot-protocol step for the region-repeat detector: records the
    /// `(region, crossings)` pair observed now and returns `true` when it
    /// is identical to the pair recorded at the previous boot — i.e. no
    /// boundary was crossed between two power outages, the paper's
    /// "power outage occurred more than once in the same program region".
    pub fn boot_check_and_record(&self, nvm: &mut Nvm) -> bool {
        let region = nvm.read(self.base + Self::REGION);
        let crossings = nvm.read(self.base + Self::CROSSINGS);
        let prev_region = nvm.read(self.base + Self::BOOT_REGION);
        let prev_crossings = nvm.read(self.base + Self::BOOT_CROSSINGS);
        nvm.store(self.base + Self::BOOT_REGION, region);
        nvm.store(self.base + Self::BOOT_CROSSINGS, crossings);
        region == prev_region && crossings == prev_crossings
    }

    /// Writes a checkpoint slot.
    pub fn write_slot(&self, nvm: &mut Nvm, reg: Reg, slot: u8, value: Word) {
        debug_assert!(slot <= 2);
        let off = Self::SLOTS + (reg.index() as u32) * 3 + slot as u32;
        nvm.store(self.base + off, value);
    }

    /// Reads a checkpoint slot.
    pub fn read_slot(&self, nvm: &Nvm, reg: Reg, slot: u8) -> Word {
        debug_assert!(slot <= 2);
        let off = Self::SLOTS + (reg.index() as u32) * 3 + slot as u32;
        nvm.read(self.base + off)
    }

    /// Records how long the device had been on when the JIT checkpoint
    /// that preceded a shutdown ran (saturating at `i32::MAX`).
    pub fn record_on_cycles(&self, nvm: &mut Nvm, cycles: u64) {
        nvm.store(
            self.base + Self::ON_CYCLES,
            cycles.min(i32::MAX as u64) as Word,
        );
    }

    /// Takes (reads and clears) the recorded on-duration; `None` when no
    /// checkpoint recorded one since the last boot.
    pub fn take_on_cycles(&self, nvm: &mut Nvm) -> Option<u64> {
        let v = nvm.read(self.base + Self::ON_CYCLES);
        nvm.store(self.base + Self::ON_CYCLES, 0);
        (v > 0).then_some(v as u64)
    }

    /// Sets / clears the application-restart reload flag.
    pub fn set_reload_pending(&self, nvm: &mut Nvm, pending: bool) {
        nvm.store(self.base + Self::RELOAD, pending as Word);
    }

    /// Whether an application restart's data reload is incomplete.
    pub fn reload_pending(&self, nvm: &Nvm) -> bool {
        nvm.read(self.base + Self::RELOAD) != 0
    }
}

/// Ratchet's double-buffered whole-register-file checkpoint storage.
///
/// Layout: `0` — packed commit word `(region << 2) | (buf << 1) | valid`;
/// `1..` — two buffers of 16 registers. The commit word is the single
/// atomic write that flips buffers and records the region, exactly the
/// "flip the first boolean array index variable" of Section VI-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatchetArea {
    base: u32,
}

impl RatchetArea {
    const COMMIT: u32 = 0;
    const BUFS: u32 = 1;

    /// Words occupied by the area.
    pub const SIZE_WORDS: u32 = 1 + 2 * Reg::COUNT as u32;

    /// Creates an area at `base`.
    pub fn new(base: u32) -> RatchetArea {
        RatchetArea { base }
    }

    /// The buffer the *next* checkpoint must write (opposite of the
    /// committed one).
    pub fn write_buffer(&self, nvm: &Nvm) -> u32 {
        match self.committed(nvm) {
            Some((_, buf)) => 1 - buf,
            None => 0,
        }
    }

    /// Writes one register into `buf`.
    pub fn write_reg(&self, nvm: &mut Nvm, buf: u32, reg: Reg, value: Word) {
        debug_assert!(buf < 2);
        nvm.store(
            self.base + Self::BUFS + buf * Reg::COUNT as u32 + reg.index() as u32,
            value,
        );
    }

    /// Atomically commits `(region, buf)`.
    pub fn commit(&self, nvm: &mut Nvm, region: RegionId, buf: u32) {
        let packed = ((region.index() as Word) << 2) | ((buf as Word) << 1) | 1;
        nvm.store(self.base + Self::COMMIT, packed);
    }

    /// The committed `(region, buffer)` if a checkpoint exists.
    pub fn committed(&self, nvm: &Nvm) -> Option<(RegionId, u32)> {
        let packed = nvm.read(self.base + Self::COMMIT);
        if packed & 1 == 0 {
            return None;
        }
        Some((
            RegionId::new((packed >> 2) as usize),
            ((packed >> 1) & 1) as u32,
        ))
    }

    /// Reads the full register file from the committed buffer.
    pub fn read_regs(&self, nvm: &Nvm, buf: u32) -> [Word; Reg::COUNT] {
        let mut out = [0; Reg::COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = nvm.read(self.base + Self::BUFS + buf * Reg::COUNT as u32 + i as u32);
        }
        out
    }

    /// Clears the commit word (fresh application start).
    pub fn invalidate(&self, nvm: &mut Nvm) {
        nvm.store(self.base + Self::COMMIT, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gecko_region_commit_roundtrip() {
        let mut nvm = Nvm::new(1 << 10);
        let a = GeckoArea::new(0x200);
        assert_eq!(a.committed_region(&nvm), RegionId::new(0));
        a.commit_region(&mut nvm, RegionId::new(7));
        assert_eq!(a.committed_region(&nvm), RegionId::new(7));
        assert_eq!(a.crossings(&nvm), 1);
        a.commit_region(&mut nvm, RegionId::new(2));
        assert_eq!(a.crossings(&nvm), 2);
    }

    #[test]
    fn gecko_mode_roundtrip() {
        let mut nvm = Nvm::new(1 << 10);
        let a = GeckoArea::new(0x200);
        assert_eq!(a.mode(&nvm), GeckoMode::Fresh);
        a.set_mode(&mut nvm, GeckoMode::Jit);
        assert_eq!(a.mode(&nvm), GeckoMode::Jit);
        a.set_mode(&mut nvm, GeckoMode::Rollback);
        assert_eq!(a.mode(&nvm), GeckoMode::Rollback);
    }

    #[test]
    fn gecko_slots_independent() {
        let mut nvm = Nvm::new(1 << 10);
        let a = GeckoArea::new(0x200);
        a.write_slot(&mut nvm, Reg::R3, 0, 11);
        a.write_slot(&mut nvm, Reg::R3, 1, 22);
        a.write_slot(&mut nvm, Reg::R3, 2, 33);
        a.write_slot(&mut nvm, Reg::R4, 0, 44);
        assert_eq!(a.read_slot(&nvm, Reg::R3, 0), 11);
        assert_eq!(a.read_slot(&nvm, Reg::R3, 1), 22);
        assert_eq!(a.read_slot(&nvm, Reg::R3, 2), 33);
        assert_eq!(a.read_slot(&nvm, Reg::R4, 0), 44);
    }

    #[test]
    fn region_repeat_detector() {
        let mut nvm = Nvm::new(1 << 10);
        let a = GeckoArea::new(0x200);
        a.commit_region(&mut nvm, RegionId::new(1));
        assert!(!a.boot_check_and_record(&mut nvm), "first boot: no repeat");
        // No progress between boots → repeat.
        assert!(a.boot_check_and_record(&mut nvm));
        // Progress resets the detector.
        a.commit_region(&mut nvm, RegionId::new(1));
        assert!(
            !a.boot_check_and_record(&mut nvm),
            "same region id but the crossings stamp moved"
        );
    }

    #[test]
    fn on_cycles_roundtrip_and_clear() {
        let mut nvm = Nvm::new(1 << 10);
        let a = GeckoArea::new(0x200);
        assert_eq!(a.take_on_cycles(&mut nvm), None);
        a.record_on_cycles(&mut nvm, 12345);
        assert_eq!(a.take_on_cycles(&mut nvm), Some(12345));
        assert_eq!(a.take_on_cycles(&mut nvm), None, "cleared after take");
        a.record_on_cycles(&mut nvm, u64::MAX);
        assert_eq!(
            a.take_on_cycles(&mut nvm),
            Some(i32::MAX as u64),
            "saturates"
        );
    }

    #[test]
    fn reload_flag() {
        let mut nvm = Nvm::new(1 << 10);
        let a = GeckoArea::new(0x200);
        assert!(!a.reload_pending(&nvm));
        a.set_reload_pending(&mut nvm, true);
        assert!(a.reload_pending(&nvm));
        a.set_reload_pending(&mut nvm, false);
        assert!(!a.reload_pending(&nvm));
    }

    #[test]
    fn ratchet_double_buffer_flips() {
        let mut nvm = Nvm::new(1 << 10);
        let a = RatchetArea::new(0x300);
        assert_eq!(a.committed(&nvm), None);
        assert_eq!(a.write_buffer(&nvm), 0);
        for r in Reg::all() {
            a.write_reg(&mut nvm, 0, r, r.index() as Word * 10);
        }
        a.commit(&mut nvm, RegionId::new(5), 0);
        assert_eq!(a.committed(&nvm), Some((RegionId::new(5), 0)));
        assert_eq!(
            a.write_buffer(&nvm),
            1,
            "next write goes to the other buffer"
        );
        let regs = a.read_regs(&nvm, 0);
        assert_eq!(regs[3], 30);

        // A partial write of buffer 1 must not disturb buffer 0.
        a.write_reg(&mut nvm, 1, Reg::R3, -1);
        assert_eq!(a.read_regs(&nvm, 0)[3], 30);

        a.invalidate(&mut nvm);
        assert_eq!(a.committed(&nvm), None);
    }
}
