//! Structure-of-arrays lock-step batching of many [`Simulator`] devices
//! over one shared workload.
//!
//! Every figure sweep in the paper is embarrassingly parallel across
//! *devices*: the same compiled program runs on thousands of independent
//! (capacitor, monitor, attack-phase, seed) tuples. Running them as N cold
//! scalar loops re-derives the event-horizon span solver state per device
//! per span; [`DeviceBatch`] instead gathers every device's planner inputs
//! — current stored energy, guard floor, worst-case per-instruction loss —
//! into contiguous arrays once per round and sizes **all** ON-state spans
//! in a single [`segment::safe_steps`] pass, then retires each planned
//! span with one `retire_span`-backed drain.
//!
//! ## Bit-identity by construction
//!
//! The authoritative per-device state stays inside each [`Simulator`]; the
//! arrays are a *planning view*, refilled from
//! [`Simulator::span_profile`] every round. Because the profile is
//! computed by the very same code (`active_span_guards`) the in-device
//! coalescer runs, the batch's externally-computed horizon equals the
//! horizon the device would size for itself, and
//! `advance_to_horizon(plan, t_end)` commits the identical span
//! `advance_to_horizon(u64::MAX, t_end)` would. Devices the planner cannot
//! cover this round — attack edge in the window, filtered ADC, latched
//! comparator, a held reading below `V_backup`, or simply hibernating —
//! fall back to the exact scalar path *inside the same
//! `advance_to_horizon` call* and rejoin the planner at the next round.
//! Per device, the sequence of `advance_to_horizon` calls is exactly the
//! scalar run-loop's sequence, so metrics, `state_hash`, and every
//! intermediate snapshot are bit-identical to N scalar runs (see
//! `tests/batch.rs`).

use crate::device::{Simulator, MIN_ACTIVE_SPAN};
use crate::metrics::Metrics;
use gecko_energy::segment;

/// Cumulative instrumentation for one [`DeviceBatch`] (diagnostics only —
/// never part of simulation state, snapshots, or campaign digests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Gather → plan → drain sweeps executed.
    pub rounds: u64,
    /// Live device-slots summed over all rounds (the denominator of
    /// [`BatchStats::occupancy_permille`]).
    pub device_rounds: u64,
    /// Device-rounds the single-pass planner covered with a batched
    /// ON-state span (`plan >= MIN_ACTIVE_SPAN`).
    pub planned: u64,
    /// Coalesced spans committed (event-horizon active spans plus
    /// hibernation fast-forwards).
    pub spans: u64,
    /// Steps retired inside coalesced spans.
    pub coalesced_steps: u64,
    /// Steps that took the exact one-at-a-time dispatch.
    pub scalar_steps: u64,
    /// Device-rounds where an ON device fell off the planner and took the
    /// scalar path (it rejoins at the next round).
    pub fallback_rounds: u64,
}

impl BatchStats {
    /// Planner coverage: fraction of live device-rounds the batched
    /// horizon plan covered, in permille (0..=1000). `0` for an empty
    /// batch.
    pub fn occupancy_permille(&self) -> u64 {
        (self.planned * 1000)
            .checked_div(self.device_rounds)
            .unwrap_or(0)
    }

    /// Folds another batch's counters into this one (used by the fleet
    /// merge; addition is order-independent, so the aggregate is
    /// worker-count- and batch-size-deterministic given the same work).
    pub fn absorb(&mut self, other: &BatchStats) {
        self.rounds += other.rounds;
        self.device_rounds += other.device_rounds;
        self.planned += other.planned;
        self.spans += other.spans;
        self.coalesced_steps += other.coalesced_steps;
        self.scalar_steps += other.scalar_steps;
        self.fallback_rounds += other.fallback_rounds;
    }
}

/// Plan sentinel: the device is hibernating (or otherwise outside the
/// planner); let `advance_to_horizon` pick its own span.
const PLAN_UNBOUNDED: u64 = u64::MAX;

/// A set of independent devices stepped lock-step, with all ON-state
/// horizons sized in one structure-of-arrays pass per round.
///
/// ```
/// use gecko_sim::{DeviceBatch, SchemeKind, SimConfig, Simulator};
///
/// let app = gecko_apps::app_by_name("crc16").unwrap();
/// let sims = (0..4)
///     .map(|seed| {
///         let mut config = SimConfig::bench_supply(SchemeKind::Gecko);
///         config.seed = seed;
///         Simulator::new(&app, config).unwrap()
///     })
///     .collect();
/// let mut batch = DeviceBatch::new(sims);
/// for m in batch.run_until_completions(2, 5.0) {
///     assert!(m.completions >= 2);
/// }
/// ```
#[derive(Debug)]
pub struct DeviceBatch {
    /// Authoritative device state (the arrays below are a planning view).
    sims: Vec<Simulator>,
    /// SoA planner columns, refilled per round for planner-covered
    /// devices: stored energy (J), guard floor (J), worst-case
    /// per-instruction loss (J).
    energy_j: Vec<f64>,
    e_guard_j: Vec<f64>,
    worst_loss_j: Vec<f64>,
    /// Per-device span budget for this round's drain (`PLAN_UNBOUNDED`
    /// when the device plans itself, `0` for scalar fallback).
    plan: Vec<u64>,
    /// Which devices the planner columns cover this round.
    covered: Vec<bool>,
    /// Per-device workload bounds, set by `begin_*`.
    t_end: Vec<f64>,
    target: Vec<u64>,
    /// Devices still short of their workload bound.
    live: Vec<bool>,
    stats: BatchStats,
}

impl DeviceBatch {
    /// Wraps a set of devices. They may differ in scheme, app, attack,
    /// and seed — independence is what makes batching invisible — though
    /// sharing one compiled program is what amortizes the predecode.
    pub fn new(sims: Vec<Simulator>) -> DeviceBatch {
        let n = sims.len();
        DeviceBatch {
            sims,
            energy_j: vec![0.0; n],
            e_guard_j: vec![0.0; n],
            worst_loss_j: vec![0.0; n],
            plan: vec![0; n],
            covered: vec![false; n],
            t_end: vec![f64::NEG_INFINITY; n],
            target: vec![0; n],
            live: vec![false; n],
            stats: BatchStats::default(),
        }
    }

    /// Number of devices in the batch (live or retired).
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the batch holds no devices at all.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Read access to device `i`.
    pub fn device(&self, i: usize) -> &Simulator {
        &self.sims[i]
    }

    /// Read access to every device, in insertion order.
    pub fn devices(&self) -> &[Simulator] {
        &self.sims
    }

    /// Consumes the batch, handing the devices back.
    pub fn into_devices(self) -> Vec<Simulator> {
        self.sims
    }

    /// Each device's metrics so far, in insertion order.
    pub fn metrics(&self) -> Vec<Metrics> {
        self.sims.iter().map(|s| s.metrics).collect()
    }

    /// Cumulative batch instrumentation.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Arms every device with a [`Simulator::run_for`]-equivalent bound:
    /// `seconds` of device time from its current clock.
    pub fn begin_run_for(&mut self, seconds: f64) {
        for i in 0..self.sims.len() {
            self.t_end[i] = self.sims[i].time_s() + seconds;
            self.target[i] = u64::MAX;
        }
        self.refresh_live();
    }

    /// Arms every device with a
    /// [`Simulator::run_until_completions`]-equivalent bound: run until
    /// `n` total application completions or `max_seconds` more device
    /// time, whichever first.
    pub fn begin_until_completions(&mut self, n: u64, max_seconds: f64) {
        for i in 0..self.sims.len() {
            self.t_end[i] = self.sims[i].time_s() + max_seconds;
            self.target[i] = n;
        }
        self.refresh_live();
    }

    /// Whether every device has reached its workload bound (vacuously
    /// true before any `begin_*` call).
    pub fn idle(&self) -> bool {
        !self.live.iter().any(|&l| l)
    }

    fn refresh_live(&mut self) {
        for i in 0..self.sims.len() {
            self.live[i] = self.sims[i].time_s() < self.t_end[i]
                && self.sims[i].metrics.completions < self.target[i];
        }
    }

    /// One lock-step round: gather planner inputs for every live device,
    /// size all ON-state spans in a single pass over the SoA columns, and
    /// retire one span (or one exact step) per device — capped at
    /// `max_steps` per device, which can only split spans and is
    /// observationally identical (the `run_capped` argument). Returns the
    /// total steps taken across the batch; `0` means the batch is idle.
    ///
    /// Per device this performs exactly one
    /// [`Simulator::advance_to_horizon`] call with a budget that commits
    /// the same span the device would size for itself, so chaining rounds
    /// reproduces the scalar run loops bit for bit.
    pub fn drain(&mut self, max_steps: u64) -> u64 {
        if max_steps == 0 || self.idle() {
            return 0;
        }
        self.stats.rounds += 1;

        // Gather: one profile read per live device. Hibernating devices
        // plan themselves (hibernation fast-forward has its own exact
        // solver); ON devices outside the planner take the scalar path
        // this round and rejoin at the next gather.
        for i in 0..self.sims.len() {
            self.covered[i] = false;
            if !self.live[i] {
                continue;
            }
            self.stats.device_rounds += 1;
            if !self.sims[i].is_on() {
                self.plan[i] = PLAN_UNBOUNDED;
            } else if let Some(p) = self.sims[i].span_profile() {
                self.energy_j[i] = p.energy_j;
                self.e_guard_j[i] = p.e_guard_j;
                self.worst_loss_j[i] = p.worst_loss_j;
                self.covered[i] = true;
            } else {
                self.plan[i] = 0;
            }
        }

        // Plan: the one pass over the batch that sizes every covered
        // device's span. Tight loop over contiguous arrays — no device
        // state is touched.
        for i in 0..self.sims.len() {
            if self.covered[i] {
                self.plan[i] =
                    segment::safe_steps(self.energy_j[i], self.e_guard_j[i], self.worst_loss_j[i]);
            }
        }

        // Drain: retire each planned span (plans below the entry
        // threshold degrade to the exact path, same as in-device).
        let mut total = 0u64;
        for i in 0..self.sims.len() {
            if !self.live[i] {
                continue;
            }
            let budget = match self.plan[i] {
                p if p >= MIN_ACTIVE_SPAN => {
                    if self.covered[i] {
                        self.stats.planned += 1;
                    }
                    p.min(max_steps)
                }
                _ => max_steps,
            };
            let before = self.sims[i].fast_path_stats();
            total += self.sims[i].advance_to_horizon(budget, self.t_end[i]);
            let after = self.sims[i].fast_path_stats();
            let scalar = after.dispatches - before.dispatches;
            self.stats.scalar_steps += scalar;
            self.stats.coalesced_steps +=
                (after.eh_insts - before.eh_insts) + (after.ff_ticks - before.ff_ticks);
            self.stats.spans +=
                (after.eh_spans - before.eh_spans) + (after.ff_spans - before.ff_spans);
            // An ON device (covered by the planner or bailed out of it)
            // that took exact dispatches this round is a fallback; it
            // rejoins the planner at the next gather. Sleeping devices
            // (`PLAN_UNBOUNDED`) pace themselves and are not fallbacks.
            if scalar > 0 && (self.covered[i] || self.plan[i] == 0) {
                self.stats.fallback_rounds += 1;
            }
            self.live[i] = self.sims[i].time_s() < self.t_end[i]
                && self.sims[i].metrics.completions < self.target[i];
        }
        total
    }

    /// Runs every device for `seconds` of device time
    /// ([`Simulator::run_for`] semantics) and returns the per-device
    /// metrics, bit-identical to running each device alone.
    pub fn run_for(&mut self, seconds: f64) -> Vec<Metrics> {
        self.begin_run_for(seconds);
        while self.drain(u64::MAX) > 0 {}
        self.metrics()
    }

    /// Runs every device until `n` completions or `max_seconds`
    /// ([`Simulator::run_until_completions`] semantics) and returns the
    /// per-device metrics, bit-identical to running each device alone.
    pub fn run_until_completions(&mut self, n: u64, max_seconds: f64) -> Vec<Metrics> {
        self.begin_until_completions(n, max_seconds);
        while self.drain(u64::MAX) > 0 {}
        self.metrics()
    }
}
