//! Structured experiment records without external serialization crates.
//!
//! Every experiment row type implements [`Record`]: an ordered list of
//! `(field, Value)` pairs. The [`impl_record!`](crate::impl_record) macro derives the
//! implementation from a field list (the replacement for the per-row serde
//! derives this workspace used to carry). `gecko-fleet`'s telemetry sinks
//! and `gecko-bench`'s persistence render records as JSON with the
//! hand-rolled encoder below, so the default build needs no crates.io
//! access at all.

use std::fmt::Write as _;

/// A dynamically typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A UTF-8 string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (NaN/inf encode as JSON `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// Absent / not applicable.
    Null,
}

impl Value {
    /// Encodes the value as a JSON fragment.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => write_json_string(s, out),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip float formatting; integral
                    // floats keep a ".0" so the value reads back as float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Null => out.push_str("null"),
        }
    }
}

/// Escapes and quotes `s` per JSON.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// A named, ordered bag of fields — one experiment row.
pub trait Record {
    /// The fields, in declaration order.
    fn fields(&self) -> Vec<(&'static str, Value)>;

    /// The row as one JSON object.
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push('{');
        for (i, (name, value)) in self.fields().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            out.push(':');
            value.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Encodes a slice of records as a pretty-printed JSON array (one object
/// per line), matching what the bench harness persists.
pub fn records_to_json<R: Record>(rows: &[R]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Derives [`Record`] for a struct from its field list:
///
/// ```ignore
/// impl_record!(Fig8Row { distance_m, power_dbm, rate });
/// ```
///
/// Fields must be `Clone` and convertible via `Value::from`.
#[macro_export]
macro_rules! impl_record {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::report::Record for $ty {
            fn fields(&self) -> Vec<(&'static str, $crate::report::Value)> {
                vec![$(
                    (stringify!($field), $crate::report::Value::from(self.$field.clone())),
                )+]
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        n: u64,
        x: f64,
        ok: bool,
        opt: Option<f64>,
    }
    impl_record!(Row {
        name,
        n,
        x,
        ok,
        opt
    });

    #[test]
    fn record_encodes_json() {
        let r = Row {
            name: "a\"b".to_string(),
            n: 3,
            x: 0.5,
            ok: true,
            opt: None,
        };
        assert_eq!(
            r.to_json(),
            r#"{"name":"a\"b","n":3,"x":0.5,"ok":true,"opt":null}"#
        );
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        let mut s = String::new();
        Value::F64(2.0).write_json(&mut s);
        assert_eq!(s, "2.0");
        s.clear();
        Value::F64(f64::NAN).write_json(&mut s);
        assert_eq!(s, "null");
        s.clear();
        // Rust's Display never uses exponent notation; the decimal
        // expansion still round-trips exactly.
        Value::F64(1e-7).write_json(&mut s);
        assert_eq!(s, "0.0000001");
        assert_eq!(s.parse::<f64>().unwrap(), 1e-7);
    }

    #[test]
    fn array_layout_is_one_object_per_line() {
        let rows = vec![
            Row {
                name: "x".into(),
                n: 1,
                x: 1.5,
                ok: false,
                opt: Some(2.5),
            },
            Row {
                name: "y".into(),
                n: 2,
                x: 2.5,
                ok: true,
                opt: None,
            },
        ];
        let json = records_to_json(&rows);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert_eq!(json.lines().count(), 4);
        assert!(json.contains(r#""opt":2.5"#));
    }
}
