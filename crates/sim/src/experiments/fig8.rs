//! Figure 8: attack distance vs. transmit power — forward progress rate of
//! the victim within a 5-meter attack range at the resonant frequency.

use super::{attacked_rate, clean_forward_cycles, Fidelity};
use gecko_emi::{EmiSignal, Injection, MonitorKind};

/// One distance/power measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Antenna-to-victim distance (m).
    pub distance_m: f64,
    /// Transmit power (dBm).
    pub power_dbm: f64,
    /// Forward progress rate `R` in 0..=1.
    pub rate: f64,
}

crate::impl_record!(Fig8Row {
    distance_m,
    power_dbm,
    rate
});

/// Runs the Figure 8 grid on the MSP430FR5994 at its 27 MHz resonance.
pub fn rows(fidelity: Fidelity) -> Vec<Fig8Row> {
    let (distances, powers): (Vec<f64>, Vec<f64>) = match fidelity {
        Fidelity::Quick => (vec![0.5, 2.0, 5.0], vec![10.0, 25.0, 35.0]),
        Fidelity::Full => (
            vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
            vec![0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0],
        ),
    };
    let device = gecko_emi::devices::msp430fr5994();
    let window = fidelity.window_s();
    let clean = clean_forward_cycles(&device, MonitorKind::Adc, window);
    let mut out = Vec::new();
    for &d in &distances {
        for &p in &powers {
            let rate = attacked_rate(
                &device,
                MonitorKind::Adc,
                EmiSignal::new(27e6, p),
                Injection::Remote { distance_m: d },
                window,
                clean,
            );
            out.push(Fig8Row {
                distance_m: d,
                power_dbm: p,
                rate,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_power_hurts_more_and_distance_helps() {
        let rows = rows(Fidelity::Quick);
        let get = |d: f64, p: f64| {
            rows.iter()
                .find(|r| (r.distance_m - d).abs() < 1e-9 && (r.power_dbm - p).abs() < 1e-9)
                .map(|r| r.rate)
                .unwrap()
        };
        // At close range, full power is devastating; weak power is not.
        assert!(get(0.5, 35.0) < 0.2, "{}", get(0.5, 35.0));
        assert!(get(5.0, 10.0) > 0.6, "{}", get(5.0, 10.0));
        // Monotone trends (allowing simulator noise of 10 percentage points).
        assert!(get(0.5, 35.0) <= get(5.0, 35.0) + 0.1);
        assert!(get(5.0, 35.0) <= get(5.0, 10.0) + 0.1);
    }
}
