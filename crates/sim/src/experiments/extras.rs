//! Extension experiments beyond the paper's figures, probing the design
//! choices its text discusses:
//!
//! * **Filter countermeasure study** — Section V-A1 argues input filters
//!   "are incapable of thwarting EMI attacks completely"; we put a median
//!   filter in front of the ADC monitor and measure.
//! * **NVM wear comparison** — the wear-out attack literature (Section
//!   VIII) makes checkpoint-area write traffic a first-class concern;
//!   Ratchet's centralized checkpoints write an order of magnitude more
//!   NVM than GECKO's pruned clusters.
//! * **WCET-budget ablation** — the region-size knob behind Figure 11's
//!   overhead.
//! * **Recovery-block fuel ablation** — how slice length limits trade
//!   pruning rate against recovery cost.

use super::{Fidelity, SchemeKind, SimConfig, Simulator, VICTIM_APP};
use gecko_compiler::{compile, CompileOptions};
use gecko_emi::{AttackSchedule, EmiSignal, Injection};

/// One filter-study measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterRow {
    /// Median filter taps (0 = unfiltered).
    pub taps: usize,
    /// Attack frequency (Hz); 0 = no attack.
    pub freq_hz: f64,
    /// Forward progress rate vs the unfiltered, unattacked baseline.
    pub rate: f64,
}

crate::impl_record!(FilterRow {
    taps,
    freq_hz,
    rate
});

/// Runs the filter countermeasure study on the MSP430FR5994: an off-peak
/// (detuned) attack and the resonant attack, with 0/3/7-tap median filters.
pub fn filter_defense(fidelity: Fidelity) -> Vec<FilterRow> {
    let window = fidelity.window_s() * 2.0;
    let app = gecko_apps::app_by_name(VICTIM_APP).expect("victim app");
    let run = |taps: usize, freq_hz: f64| -> u64 {
        let mut cfg = SimConfig::bench_supply(SchemeKind::Nvp);
        if taps > 0 {
            cfg.adc_filter_taps = Some(taps);
        }
        if freq_hz > 0.0 {
            cfg = cfg.with_attack(AttackSchedule::continuous(
                EmiSignal::new(freq_hz, 35.0),
                Injection::Remote { distance_m: 5.0 },
            ));
        }
        let mut sim = Simulator::new(&app, cfg).expect("compiles");
        sim.run_for(window).forward_cycles
    };
    let clean = run(0, 0.0).max(1);
    let mut out = Vec::new();
    for taps in [0usize, 3, 7] {
        for freq in [0.0, 29.5e6, 27e6] {
            out.push(FilterRow {
                taps,
                freq_hz: freq,
                rate: run(taps, freq) as f64 / clean as f64,
            });
        }
    }
    out
}

/// One wear measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WearRow {
    /// Scheme name.
    pub scheme: String,
    /// Total NVM writes per completed application run (wear proxy).
    pub nvm_writes_per_run: f64,
    /// Checkpoint-store executions per run.
    pub checkpoint_stores_per_run: f64,
}

crate::impl_record!(WearRow {
    scheme,
    nvm_writes_per_run,
    checkpoint_stores_per_run
});

/// Measures NVM write traffic per completed run for each scheme.
pub fn wear(fidelity: Fidelity) -> Vec<WearRow> {
    let runs = match fidelity {
        Fidelity::Quick => 10,
        Fidelity::Full => 50,
    };
    let app = gecko_apps::app_by_name("crc32").expect("app");
    let mut out = Vec::new();
    for scheme in SchemeKind::all() {
        let mut sim = Simulator::new(&app, SimConfig::bench_supply(scheme)).expect("compiles");
        let before = sim.nvm().write_count();
        let m = sim.run_until_completions(runs, 30.0);
        let writes = sim.nvm().write_count() - before;
        out.push(WearRow {
            scheme: scheme.name().to_string(),
            nvm_writes_per_run: writes as f64 / m.completions.max(1) as f64,
            checkpoint_stores_per_run: m.checkpoint_stores as f64 / m.completions.max(1) as f64,
        });
    }
    out
}

/// One WCET-budget ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetRow {
    /// Region WCET budget (cycles).
    pub budget_cycles: u64,
    /// Regions formed across all apps.
    pub regions: usize,
    /// Checkpoint stores (static, after pruning).
    pub checkpoints: usize,
    /// Execution overhead over NVP on `crc32` (bench supply).
    pub overhead: f64,
}

crate::impl_record!(BudgetRow {
    budget_cycles,
    regions,
    checkpoints,
    overhead
});

/// Sweeps the region WCET budget.
pub fn wcet_budget_ablation(fidelity: Fidelity) -> Vec<BudgetRow> {
    let runs = match fidelity {
        Fidelity::Quick => 3,
        Fidelity::Full => 10,
    };
    let crc = gecko_apps::app_by_name("crc32").expect("app");
    let per_run = |opts: CompileOptions| -> f64 {
        let mut cfg = SimConfig::bench_supply(SchemeKind::Gecko);
        cfg.compile = opts;
        let mut sim = Simulator::new(&crc, cfg).expect("compiles");
        let m = sim.run_until_completions(runs, 30.0);
        (m.forward_cycles + m.overhead_cycles) as f64 / m.completions.max(1) as f64
    };
    let nvp = {
        let mut sim = Simulator::new(&crc, SimConfig::bench_supply(SchemeKind::Nvp)).unwrap();
        let m = sim.run_until_completions(runs, 30.0);
        (m.forward_cycles + m.overhead_cycles) as f64 / m.completions.max(1) as f64
    };
    let mut out = Vec::new();
    for budget in [1_000u64, 2_000, 4_000, 16_000, 64_000] {
        let opts = CompileOptions {
            wcet_budget_cycles: Some(budget),
            ..CompileOptions::default()
        };
        let (mut regions, mut checkpoints) = (0, 0);
        for app in gecko_apps::all_apps() {
            let c = compile(&app.program, &opts).expect("compiles");
            regions += c.stats.regions;
            checkpoints += c.stats.checkpoints_after;
        }
        out.push(BudgetRow {
            budget_cycles: budget,
            regions,
            checkpoints,
            overhead: per_run(opts) / nvp,
        });
    }
    out
}

/// One recovery-fuel ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct FuelRow {
    /// Maximum recovery-block length (instructions).
    pub max_slice_insts: usize,
    /// Checkpoint stores pruned across all apps.
    pub pruned: usize,
    /// Total recovery-block instructions emitted.
    pub recovery_insts: usize,
}

crate::impl_record!(FuelRow {
    max_slice_insts,
    pruned,
    recovery_insts
});

/// Sweeps the recovery-block length limit.
pub fn slice_fuel_ablation(_fidelity: Fidelity) -> Vec<FuelRow> {
    let mut out = Vec::new();
    for fuel in [1usize, 2, 4, 12, 32] {
        let opts = CompileOptions {
            max_slice_insts: fuel,
            ..CompileOptions::default()
        };
        let (mut pruned, mut insts) = (0, 0);
        for app in gecko_apps::all_apps() {
            let c = compile(&app.program, &opts).expect("compiles");
            pruned += c.stats.checkpoints_pruned;
            insts += c.stats.recovery_insts;
        }
        out.push(FuelRow {
            max_slice_insts: fuel,
            pruned,
            recovery_insts: insts,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_help_off_peak_but_not_at_resonance() {
        let rows = filter_defense(Fidelity::Quick);
        let get = |taps: usize, f: f64| {
            rows.iter()
                .find(|r| r.taps == taps && (r.freq_hz - f).abs() < 1.0)
                .unwrap()
                .rate
        };
        // Quiet: filter costs (almost) nothing.
        assert!(get(7, 0.0) > 0.9, "{}", get(7, 0.0));
        // At resonance: even 7 taps cannot save the device (paper's claim).
        assert!(get(7, 27e6) < 0.25, "{}", get(7, 27e6));
        // Detuned attack: the filter helps visibly.
        assert!(
            get(7, 29.5e6) > get(0, 29.5e6) + 0.05,
            "filtered {} vs raw {}",
            get(7, 29.5e6),
            get(0, 29.5e6)
        );
    }

    #[test]
    fn ratchet_wears_nvm_fastest() {
        let rows = wear(Fidelity::Quick);
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.scheme == s)
                .unwrap()
                .nvm_writes_per_run
        };
        assert!(get("Ratchet") > 2.0 * get("GECKO"), "{rows:?}");
        assert!(get("GECKO") <= get("GECKO w/o pruning") + 1.0, "{rows:?}");
    }

    #[test]
    fn smaller_budgets_mean_more_regions_and_overhead() {
        let rows = wcet_budget_ablation(Fidelity::Quick);
        assert!(rows.windows(2).all(|w| w[0].regions >= w[1].regions));
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(first.overhead >= last.overhead - 0.05, "{rows:?}");
    }

    #[test]
    fn more_fuel_prunes_more() {
        let rows = slice_fuel_ablation(Fidelity::Quick);
        assert!(
            rows.first().unwrap().pruned <= rows.last().unwrap().pruned,
            "{rows:?}"
        );
        assert!(rows.last().unwrap().recovery_insts > 0);
    }
}
