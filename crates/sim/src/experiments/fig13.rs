//! Figure 13: attack detection and recovery over time — six attack
//! scenarios, throughput timelines for NVP, Ratchet and GECKO in the
//! energy-harvesting environment.
//!
//! Time compression: one paper-minute is simulated as one second (the
//! detection/recovery dynamics happen at millisecond scale, so the 45-
//! minute wall experiments compress without changing the story). Bucket
//! throughput is normalized to the unattacked NVP rate, as in the paper.

use super::{Fidelity, SchemeKind, SimConfig, Simulator, VICTIM_APP};
use gecko_emi::{AttackSchedule, EmiSignal, Injection};

/// Paper-minutes compressed into one simulated second.
pub const MINUTES_PER_SIM_SECOND: f64 = 1.0;

/// One timeline bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Scenario label ("a".."f").
    pub scenario: String,
    /// Scheme name.
    pub scheme: String,
    /// Bucket start, in compressed "paper minutes".
    pub t_min: f64,
    /// Whether the attack is active during the bucket.
    pub under_attack: bool,
    /// Completions in this bucket / baseline completions per bucket.
    pub throughput_pct: f64,
}

crate::impl_record!(Fig13Row {
    scenario,
    scheme,
    t_min,
    under_attack,
    throughput_pct
});

/// The six attack scenarios: burst start times in paper-minutes.
pub fn scenarios() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("a", vec![]),
        ("b", vec![40.0]),
        ("c", vec![30.0]),
        ("d", vec![20.0, 40.0]),
        ("e", vec![15.0, 30.0, 35.0]),
        ("f", vec![10.0, 25.0, 40.0]),
    ]
}

/// Runs all six scenarios × three schemes.
pub fn rows(fidelity: Fidelity) -> Vec<Fig13Row> {
    // One paper-minute = `scale` simulated seconds.
    let scale = match fidelity {
        Fidelity::Quick => 0.25,
        Fidelity::Full => 1.0,
    };
    let horizon_min = 50.0;
    let burst_min = 5.0;
    let bucket_min = 2.5;
    let app = gecko_apps::app_by_name(VICTIM_APP).expect("victim app");
    // A 100 µF buffer gives a ~0.3 s charge cycle, so every bucket averages
    // several cycles and the timeline is smooth (the paper's minutes-long
    // buckets average thousands of cycles).
    let cap_f = 100e-6;

    // Baseline: unattacked NVP completions per bucket.
    let mut base_sim = Simulator::new(
        &app,
        SimConfig::harvesting(SchemeKind::Nvp).with_capacitor(cap_f, 3.3),
    )
    .expect("compiles");
    let base = base_sim.run_for(horizon_min * scale);
    let base_per_bucket = (base.completions as f64 * bucket_min / horizon_min).max(1e-9);

    let mut out = Vec::new();
    for (label, bursts) in scenarios() {
        let schedule = AttackSchedule::bursts(
            EmiSignal::new(27e6, 35.0),
            Injection::Remote { distance_m: 5.0 },
            &bursts.iter().map(|m| m * scale).collect::<Vec<_>>(),
            burst_min * scale,
        );
        for scheme in [SchemeKind::Nvp, SchemeKind::Ratchet, SchemeKind::Gecko] {
            let cfg = SimConfig::harvesting(scheme)
                .with_capacitor(cap_f, 3.3)
                .with_attack(schedule.clone());
            let mut sim = Simulator::new(&app, cfg).expect("compiles");
            let mut prev = 0u64;
            let mut t = 0.0;
            while t < horizon_min {
                let m = sim.run_for(bucket_min * scale);
                let done = m.completions - prev;
                prev = m.completions;
                let mid = (t + bucket_min / 2.0) * scale;
                out.push(Fig13Row {
                    scenario: label.to_string(),
                    scheme: scheme.name().to_string(),
                    t_min: t,
                    under_attack: schedule.active_at(mid).is_some(),
                    throughput_pct: 100.0 * done as f64 / base_per_bucket,
                });
                t += bucket_min;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scenario (d) distills the figure's story: during the attack NVP and
    /// Ratchet stall while GECKO keeps serving; after it ends GECKO returns
    /// to full throughput.
    #[test]
    fn scenario_d_story() {
        let rows: Vec<Fig13Row> = rows(Fidelity::Quick)
            .into_iter()
            .filter(|r| r.scenario == "d")
            .collect();
        let avg = |scheme: &str, attacked: bool| -> f64 {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.scheme == scheme && r.under_attack == attacked)
                .map(|r| r.throughput_pct)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let gecko_attacked = avg("GECKO", true);
        let nvp_attacked = avg("NVP", true);
        let ratchet_attacked = avg("Ratchet", true);
        assert!(
            gecko_attacked > 3.0 * nvp_attacked.max(1.0)
                || (nvp_attacked < 5.0 && gecko_attacked > 15.0),
            "GECKO {gecko_attacked}% vs NVP {nvp_attacked}%"
        );
        assert!(
            gecko_attacked > 3.0 * ratchet_attacked.max(1.0)
                || (ratchet_attacked < 5.0 && gecko_attacked > 15.0),
            "GECKO {gecko_attacked}% vs Ratchet {ratchet_attacked}%"
        );
        // Quiet-phase throughput recovers.
        assert!(avg("GECKO", false) > 50.0, "{}", avg("GECKO", false));
    }
}
