//! Figure 4: direct power injection (DPI) on ADC-monitored boards —
//! forward progress rate vs. attack frequency, injection points P1 and P2,
//! 20 dBm, 1 MHz–1 GHz sweep.

use super::{attacked_rate, clean_forward_cycles, log_freq_grid, Fidelity};
use gecko_emi::attack::DpiPoint;
use gecko_emi::{EmiSignal, Injection, MonitorKind};

/// One DPI measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Board name.
    pub device: String,
    /// Injection point ("P1" / "P2").
    pub point: String,
    /// Attack frequency (Hz).
    pub freq_hz: f64,
    /// Forward progress rate `R` in 0..=1.
    pub rate: f64,
}

crate::impl_record!(Fig4Row {
    device,
    point,
    freq_hz,
    rate
});

/// Runs the Figure 4 sweep.
pub fn rows(fidelity: Fidelity) -> Vec<Fig4Row> {
    let points = match fidelity {
        Fidelity::Quick => 9,
        Fidelity::Full => 49,
    };
    let freqs = log_freq_grid(1e6, 1e9, points);
    let window = fidelity.window_s();
    let mut out = Vec::new();
    for device in gecko_emi::devices::all_devices() {
        let clean = clean_forward_cycles(&device, MonitorKind::Adc, window);
        for (label, point) in [("P1", DpiPoint::P1), ("P2", DpiPoint::P2)] {
            for &f in &freqs {
                let rate = attacked_rate(
                    &device,
                    MonitorKind::Adc,
                    EmiSignal::new(f, 20.0),
                    Injection::Dpi(point),
                    window,
                    clean,
                );
                out.push(Fig4Row {
                    device: device.name().to_string(),
                    point: label.to_string(),
                    freq_hz: f,
                    rate,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_resonance_and_hf_immunity() {
        let rows: Vec<Fig4Row> = rows(Fidelity::Quick)
            .into_iter()
            .filter(|r| r.device.contains("FR5994"))
            .collect();
        assert!(!rows.is_empty());
        // High frequencies (≥ 200 MHz) are harmless on every point.
        for r in rows.iter().filter(|r| r.freq_hz > 2e8) {
            assert!(r.rate > 0.8, "{r:?}");
        }
        // Something in the tens-of-MHz band hurts via P2.
        let p2_min = rows
            .iter()
            .filter(|r| r.point == "P2" && r.freq_hz < 1e8)
            .map(|r| r.rate)
            .fold(f64::INFINITY, f64::min);
        assert!(p2_min < 0.5, "P2 low-band minimum {p2_min}");
    }
}
