//! Figure 7: remote EMI attack on the comparator-monitored boards
//! (MSP430FR5994 and FR6989) — forward progress rate vs. frequency.
//! The comparator, being continuous-time, collapses far harder than the
//! sampled ADC at its resonance (Table I's `Comp-R_min ≈ 10⁻²%`).

use gecko_emi::MonitorKind;

use super::fig5::{sweep, Fig5Row};
use super::Fidelity;

/// Row type shared with Figure 5.
pub type Fig7Row = Fig5Row;

/// Runs the Figure 7 sweep (comparator boards only).
pub fn rows(fidelity: Fidelity) -> Vec<Fig7Row> {
    sweep(fidelity, MonitorKind::Comparator, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_boards_collapse_at_their_resonances() {
        let rows = rows(Fidelity::Quick);
        let devices: std::collections::BTreeSet<_> =
            rows.iter().map(|r| r.device.clone()).collect();
        assert_eq!(devices.len(), 2, "FR5994 and FR6989");
        for d in devices {
            let min = rows
                .iter()
                .filter(|r| r.device == d)
                .map(|r| r.rate)
                .fold(f64::INFINITY, f64::min);
            assert!(min < 0.05, "{d}: comparator min rate {min}");
        }
    }
}
