//! One entry point per table and figure of the paper's evaluation
//! (Section IV for the attack studies, Section VII for the GECKO
//! evaluation). Each module exposes a `rows(...)` function returning typed
//! records (see [`crate::report::Record`]); the `gecko-bench` crate renders
//! them as paper-style tables and persists them as JSON through the
//! `gecko-fleet` telemetry sinks. The heavyweight grid sweeps (fig4, fig5,
//! fig8, fig11, fig13) also have campaign-engine ports in
//! `gecko_fleet::figures` that fan the same cells out over a worker pool.
//!
//! Every experiment accepts a [`Fidelity`]: `Quick` shrinks sweeps and
//! windows so integration tests finish in seconds, `Full` is what the
//! bench harness runs.
//!
//! Simulated-time scaling: experiments that the paper ran for tens of
//! minutes on real boards (Figure 13's 45-minute attack scenarios) are
//! compressed — one paper-minute becomes one simulated second — because
//! the dynamics of interest (detection latency, recovery, re-enable)
//! happen at millisecond scale. The compression factor is recorded in the
//! row types.

pub mod extras;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;

use gecko_emi::{AttackSchedule, DeviceModel, EmiSignal, Injection, MonitorKind};

use crate::device::{SimConfig, Simulator};
use crate::scheme::SchemeKind;

/// Sweep density / window length selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Coarse sweeps, short windows — for tests.
    Quick,
    /// The full sweeps the bench harness runs.
    Full,
}

impl Fidelity {
    /// Measurement window for forward-progress experiments (s).
    pub fn window_s(self) -> f64 {
        match self {
            Fidelity::Quick => 0.04,
            Fidelity::Full => 0.1,
        }
    }
}

/// The app used as the victim workload in the attack studies (the paper
/// runs a sensing/compute loop; `bitcnt` is our stand-in).
pub const VICTIM_APP: &str = "bitcnt";

/// Forward-progress cycles of an unattacked device over `window_s`.
pub fn clean_forward_cycles(device: &DeviceModel, monitor: MonitorKind, window_s: f64) -> u64 {
    let app = gecko_apps::app_by_name(VICTIM_APP).expect("victim app");
    let cfg = SimConfig::bench_supply(SchemeKind::Nvp).with_device(device.clone(), monitor);
    let mut sim = Simulator::new(&app, cfg).expect("compiles");
    sim.run_for(window_s).forward_cycles
}

/// Forward-progress *rate* `R = T_forward / T_guarantee` of an attacked
/// NVP device relative to `clean` baseline cycles.
pub fn attacked_rate(
    device: &DeviceModel,
    monitor: MonitorKind,
    signal: EmiSignal,
    injection: Injection,
    window_s: f64,
    clean: u64,
) -> f64 {
    let app = gecko_apps::app_by_name(VICTIM_APP).expect("victim app");
    let cfg = SimConfig::bench_supply(SchemeKind::Nvp)
        .with_device(device.clone(), monitor)
        .with_attack(AttackSchedule::continuous(signal, injection));
    let mut sim = Simulator::new(&app, cfg).expect("compiles");
    let m = sim.run_for(window_s);
    m.forward_cycles as f64 / clean.max(1) as f64
}

/// A logarithmic frequency grid over `lo_hz..=hi_hz` with `points` points.
pub fn log_freq_grid(lo_hz: f64, hi_hz: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2 && lo_hz > 0.0 && hi_hz > lo_hz);
    let (l0, l1) = (lo_hz.ln(), hi_hz.ln());
    (0..points)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp())
        .collect()
}

/// A linear frequency grid.
pub fn lin_freq_grid(lo_hz: f64, hi_hz: f64, step_hz: f64) -> Vec<f64> {
    assert!(step_hz > 0.0 && hi_hz >= lo_hz);
    let mut out = Vec::new();
    let mut f = lo_hz;
    while f <= hi_hz + 1e-6 {
        out.push(f);
        f += step_hz;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_monotone() {
        let g = log_freq_grid(1e6, 1e9, 10);
        assert_eq!(g.len(), 10);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!((g[0] - 1e6).abs() < 1.0);
        assert!((g[9] - 1e9).abs() < 1e3);

        let l = lin_freq_grid(5e6, 20e6, 5e6);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn clean_baseline_is_substantial() {
        let dev = gecko_emi::devices::msp430fr5994();
        let fwd = clean_forward_cycles(&dev, MonitorKind::Adc, 0.02);
        // 20 ms at 16 MHz with minor overhead.
        assert!(fwd > 200_000, "{fwd}");
    }

    #[test]
    fn attacked_rate_is_bounded() {
        let dev = gecko_emi::devices::msp430fr5994();
        let clean = clean_forward_cycles(&dev, MonitorKind::Adc, 0.02);
        let r = attacked_rate(
            &dev,
            MonitorKind::Adc,
            EmiSignal::new(27e6, 35.0),
            Injection::Remote { distance_m: 5.0 },
            0.02,
            clean,
        );
        assert!((0.0..=1.1).contains(&r), "{r}");
        assert!(r < 0.3, "resonant attack suppresses progress: {r}");
    }
}
