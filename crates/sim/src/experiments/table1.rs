//! Table I: per-board attack summary — minimum forward progress rate (and
//! the frequency achieving it) through the ADC and comparator monitor
//! paths, plus the maximum JIT checkpoint failure rate.
//!
//! The `F` column needs the capacitor to actually traverse the
//! `V_fail` window, which requires an energy-limited supply; following the
//! CTPL demo configuration we measure it with a small (4.7 µF) buffer and
//! a weak harvester, while the `R` columns use the bench-supply setup of
//! the paper's DPI/remote experiments.

use super::{
    attacked_rate, clean_forward_cycles, Fidelity, SchemeKind, SimConfig, Simulator, VICTIM_APP,
};
use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
use gecko_energy::ConstantPower;

/// One board's Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Board name.
    pub device: String,
    /// Monitor options ("ADC" or "ADC & Comp.").
    pub monitors: String,
    /// Minimum forward progress rate through the ADC path.
    pub adc_r_min: f64,
    /// Frequency achieving it (Hz).
    pub adc_r_min_freq_hz: f64,
    /// Minimum forward progress rate through the comparator path (None for
    /// ADC-only boards).
    pub comp_r_min: Option<f64>,
    /// Frequency achieving it (Hz).
    pub comp_r_min_freq_hz: Option<f64>,
    /// Maximum checkpoint failure rate through the ADC path.
    pub adc_f_max: f64,
    /// Frequency achieving it (Hz).
    pub adc_f_max_freq_hz: f64,
}

crate::impl_record!(Table1Row {
    device,
    monitors,
    adc_r_min,
    adc_r_min_freq_hz,
    comp_r_min,
    comp_r_min_freq_hz,
    adc_f_max,
    adc_f_max_freq_hz
});

fn candidate_freqs(
    device: &gecko_emi::DeviceModel,
    kind: MonitorKind,
    fidelity: Fidelity,
) -> Vec<f64> {
    // Scan around the susceptibility peaks — the minima can only be there.
    let Some(profile) = device.profile(kind) else {
        return Vec::new();
    };
    let mut freqs = Vec::new();
    let offsets: &[f64] = match fidelity {
        Fidelity::Quick => &[0.0],
        Fidelity::Full => &[-2e6, -1e6, 0.0, 1e6, 2e6],
    };
    for peak in profile.peaks() {
        for &off in offsets {
            let f = peak.center_hz + off;
            if f > 0.0 {
                freqs.push(f);
            }
        }
    }
    freqs.sort_by(f64::total_cmp);
    freqs.dedup();
    freqs
}

fn failure_rate_at(device: &gecko_emi::DeviceModel, freq_hz: f64, window_s: f64) -> f64 {
    let app = gecko_apps::app_by_name(VICTIM_APP).expect("victim app");
    // CTPL-demo scale: a 4.7 µF buffer whose V_backup→V_off band holds
    // *less* energy than a full checkpoint, and a harvester weak enough
    // that the spoofed wake/sleep cycling genuinely drains the supply —
    // the V_fail regime of Section IV-B2.
    let mut cfg = SimConfig::bench_supply(SchemeKind::Nvp)
        .with_device(device.clone(), MonitorKind::Adc)
        .with_capacitor(4.7e-6, 3.3)
        .with_attack(AttackSchedule::continuous(
            EmiSignal::new(freq_hz, 35.0),
            Injection::Remote { distance_m: 0.5 },
        ));
    cfg.harvester = Box::new(ConstantPower::new(0.15e-3));
    let mut sim = Simulator::new(&app, cfg).expect("compiles");
    let m = sim.run_for(window_s);
    m.checkpoint_failure_rate()
}

/// Builds Table I.
pub fn rows(fidelity: Fidelity) -> Vec<Table1Row> {
    let window = fidelity.window_s();
    let mut out = Vec::new();
    for device in gecko_emi::devices::all_devices() {
        let clean_adc = clean_forward_cycles(&device, MonitorKind::Adc, window);
        let mut adc_min = (f64::INFINITY, 0.0);
        for f in candidate_freqs(&device, MonitorKind::Adc, fidelity) {
            let r = attacked_rate(
                &device,
                MonitorKind::Adc,
                EmiSignal::new(f, 35.0),
                Injection::Remote { distance_m: 0.1 },
                window,
                clean_adc,
            );
            if r < adc_min.0 {
                adc_min = (r, f);
            }
        }

        let comp = if device.has_comparator() {
            let clean_c = clean_forward_cycles(&device, MonitorKind::Comparator, window);
            let mut best = (f64::INFINITY, 0.0);
            for f in candidate_freqs(&device, MonitorKind::Comparator, fidelity) {
                let r = attacked_rate(
                    &device,
                    MonitorKind::Comparator,
                    EmiSignal::new(f, 35.0),
                    Injection::Remote { distance_m: 0.1 },
                    window,
                    clean_c,
                );
                if r < best.0 {
                    best = (r, f);
                }
            }
            Some(best)
        } else {
            None
        };

        // Checkpoint-failure sweep (energy-limited configuration).
        let f_window = match fidelity {
            Fidelity::Quick => 0.6,
            Fidelity::Full => 2.0,
        };
        let mut f_max = (0.0f64, 0.0f64);
        for f in candidate_freqs(&device, MonitorKind::Adc, fidelity) {
            let fr = failure_rate_at(&device, f, f_window);
            if fr > f_max.0 {
                f_max = (fr, f);
            }
        }

        out.push(Table1Row {
            device: device.name().to_string(),
            monitors: if device.has_comparator() {
                "ADC & Comp.".to_string()
            } else {
                "ADC".to_string()
            },
            adc_r_min: adc_min.0,
            adc_r_min_freq_hz: adc_min.1,
            comp_r_min: comp.map(|c| c.0),
            comp_r_min_freq_hz: comp.map(|c| c.1),
            adc_f_max: f_max.0,
            adc_f_max_freq_hz: f_max.1,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_paper() {
        let rows = rows(Fidelity::Quick);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            // DoS at every board: R_min in the low percent range.
            assert!(r.adc_r_min < 0.2, "{}: {}", r.device, r.adc_r_min);
            // Resonances sit in the tens-of-MHz band (17–28 MHz).
            assert!(
                (1.5e7..3.0e7).contains(&r.adc_r_min_freq_hz),
                "{}: {}",
                r.device,
                r.adc_r_min_freq_hz
            );
        }
        // Comparator boards collapse orders of magnitude harder.
        let fr5994 = rows.iter().find(|r| r.device.contains("FR5994")).unwrap();
        let comp = fr5994.comp_r_min.unwrap();
        assert!(
            comp < fr5994.adc_r_min / 5.0,
            "comp {} vs adc {}",
            comp,
            fr5994.adc_r_min
        );
        // ADC-only boards have no comparator column.
        assert!(rows
            .iter()
            .filter(|r| r.monitors == "ADC")
            .all(|r| r.comp_r_min.is_none()));
        // Checkpoint failures occur at the vulnerable frequency on every
        // board (paper: 11–42%).
        for r in &rows {
            assert!(r.adc_f_max > 0.05, "{}: F_max {}", r.device, r.adc_f_max);
            assert!(r.adc_f_max_freq_hz > 0.0, "{}", r.device);
        }
    }
}
