//! Figure 15: capacitor-size sensitivity — total execution time of NVP and
//! GECKO for a fixed amount of work, varying the energy buffer between
//! 1 mF and 10 mF with thresholds rescaled so every size buffers the same
//! energy (Section VII-D). Larger capacitors charge slower from empty, so
//! total time rises with capacitance.

use super::{Fidelity, SchemeKind, SimConfig, Simulator, VICTIM_APP};

/// One capacitance × scheme measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Capacitance (farads).
    pub capacitance_f: f64,
    /// Scheme name.
    pub scheme: String,
    /// Simulated seconds to finish the workload (including charging).
    pub total_time_s: f64,
    /// Completions achieved (equals the target unless the run timed out).
    pub completions: u64,
}

crate::impl_record!(Fig15Row {
    capacitance_f,
    scheme,
    total_time_s,
    completions
});

/// The paper's capacitor sizes.
pub const SIZES_F: [f64; 4] = [1e-3, 2e-3, 5e-3, 10e-3];

/// Runs Figure 15: the device starts with an *empty* capacitor and must
/// first charge, then complete a fixed number of application runs under
/// the weak harvester.
pub fn rows(fidelity: Fidelity) -> Vec<Fig15Row> {
    let target = match fidelity {
        Fidelity::Quick => 20,
        Fidelity::Full => 200,
    };
    let app = gecko_apps::app_by_name(VICTIM_APP).expect("victim app");
    let mut out = Vec::new();
    for &c in &SIZES_F {
        for scheme in [SchemeKind::Nvp, SchemeKind::Gecko] {
            let cfg = SimConfig::harvesting(scheme).with_rescaled_capacitor(c, 0.0);
            let mut sim = Simulator::new(&app, cfg).expect("compiles");
            let m = sim.run_until_completions(target, 3600.0);
            out.push(Fig15Row {
                capacitance_f: c,
                scheme: scheme.name().to_string(),
                total_time_s: m.sim_time_s,
                completions: m.completions,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_capacitors_take_longer_and_gecko_tracks_nvp() {
        let rows = rows(Fidelity::Quick);
        let time = |c: f64, s: &str| {
            rows.iter()
                .find(|r| (r.capacitance_f - c).abs() < 1e-12 && r.scheme == s)
                .unwrap()
                .total_time_s
        };
        for r in &rows {
            assert!(r.completions >= 20, "{r:?}");
        }
        // Charging time dominates: 10 mF takes much longer than 1 mF.
        assert!(
            time(10e-3, "NVP") > 2.0 * time(1e-3, "NVP"),
            "{} vs {}",
            time(10e-3, "NVP"),
            time(1e-3, "NVP")
        );
        // GECKO stays within ~25% of NVP at every size.
        for &c in &SIZES_F {
            let (n, g) = (time(c, "NVP"), time(c, "GECKO"));
            assert!(g < 1.25 * n, "cap {c}: GECKO {g} vs NVP {n}");
        }
    }
}
