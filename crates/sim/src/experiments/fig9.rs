//! Figure 9: real-time attack traces on the MSP430FR5994 — the attacker
//! retunes the signal over time to modulate the victim's forward progress
//! (stealth control), shown for (a) the ADC monitor and (b) the
//! comparator monitor.

use super::{Fidelity, SchemeKind, SimConfig, Simulator, VICTIM_APP};
use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind, TimedAttack};

/// One time bucket of the real-time trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Monitor kind ("ADC" / "Comparator").
    pub monitor: String,
    /// Bucket start (s).
    pub t_s: f64,
    /// Attack frequency active during the bucket (0 = no attack), Hz.
    pub attack_freq_hz: f64,
    /// Forward progress rate within the bucket relative to no-attack.
    pub rate: f64,
}

crate::impl_record!(Fig9Row {
    monitor,
    t_s,
    attack_freq_hz,
    rate
});

fn schedule(kind: MonitorKind, seg_s: f64) -> (AttackSchedule, Vec<f64>) {
    // Frequencies chosen around each monitor's resonance: strong, weak
    // (detuned), off, strong again — the paper's "aggressiveness control".
    let freqs: Vec<f64> = match kind {
        MonitorKind::Adc => vec![0.0, 27e6, 29.5e6, 0.0, 27e6, 31e6, 0.0],
        MonitorKind::Comparator => vec![0.0, 5e6, 6.5e6, 0.0, 6e6, 8e6, 0.0],
    };
    let windows = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0.0)
        .map(|(i, &f)| TimedAttack {
            start_s: i as f64 * seg_s,
            end_s: (i + 1) as f64 * seg_s,
            signal: EmiSignal::new(f, 35.0),
            injection: Injection::Remote { distance_m: 5.0 },
        })
        .collect();
    (AttackSchedule::from_windows(windows), freqs)
}

/// Runs both real-time traces.
pub fn rows(fidelity: Fidelity) -> Vec<Fig9Row> {
    let seg_s = match fidelity {
        Fidelity::Quick => 0.05,
        Fidelity::Full => 0.25,
    };
    let app = gecko_apps::app_by_name(VICTIM_APP).expect("victim app");
    let mut out = Vec::new();
    for kind in [MonitorKind::Adc, MonitorKind::Comparator] {
        let (sched, freqs) = schedule(kind, seg_s);
        // Baseline rate per segment from an unattacked twin.
        let clean_cfg = SimConfig::bench_supply(SchemeKind::Nvp)
            .with_device(gecko_emi::devices::msp430fr5994(), kind);
        let mut clean = Simulator::new(&app, clean_cfg).expect("compiles");
        let cfg = SimConfig::bench_supply(SchemeKind::Nvp)
            .with_device(gecko_emi::devices::msp430fr5994(), kind)
            .with_attack(sched);
        let mut sim = Simulator::new(&app, cfg).expect("compiles");
        let mut prev = 0u64;
        let mut prev_clean = 0u64;
        for (i, &f) in freqs.iter().enumerate() {
            let mc = clean.run_for(seg_s);
            let m = sim.run_for(seg_s);
            let dc = (mc.forward_cycles - prev_clean).max(1);
            let d = m.forward_cycles - prev;
            prev = m.forward_cycles;
            prev_clean = mc.forward_cycles;
            out.push(Fig9Row {
                monitor: match kind {
                    MonitorKind::Adc => "ADC".to_string(),
                    MonitorKind::Comparator => "Comparator".to_string(),
                },
                t_s: i as f64 * seg_s,
                attack_freq_hz: f,
                rate: d as f64 / dc as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_modulates_progress_over_time() {
        let rows = rows(Fidelity::Quick);
        let adc: Vec<&Fig9Row> = rows.iter().filter(|r| r.monitor == "ADC").collect();
        // No-attack segments run at full speed; resonant segments crawl.
        let quiet: Vec<f64> = adc
            .iter()
            .filter(|r| r.attack_freq_hz == 0.0)
            .map(|r| r.rate)
            .collect();
        let strong: Vec<f64> = adc
            .iter()
            .filter(|r| (r.attack_freq_hz - 27e6).abs() < 1.0)
            .map(|r| r.rate)
            .collect();
        assert!(quiet.iter().all(|&r| r > 0.65), "{quiet:?}");
        assert!(strong.iter().all(|&r| r < 0.4), "{strong:?}");
        // Detuned segments sit in between strong and quiet on average.
        let detuned: Vec<f64> = adc
            .iter()
            .filter(|r| r.attack_freq_hz > 28e6)
            .map(|r| r.rate)
            .collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(avg(&detuned) > avg(&strong), "{detuned:?} vs {strong:?}");
    }
}
