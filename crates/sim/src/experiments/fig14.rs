//! Figure 14: performance in the (attack-free) energy-harvesting
//! environment — normalized execution time of Ratchet and GECKO over NVP
//! with a Powercast-like RF supply.

use super::{Fidelity, SchemeKind, SimConfig, Simulator};

/// One app × scheme measurement under harvesting.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Benchmark name.
    pub app: String,
    /// Scheme name.
    pub scheme: String,
    /// Completions over the measurement horizon.
    pub completions: u64,
    /// Normalized execution time vs NVP (completions ratio inverted;
    /// 1.0 = NVP, bigger = slower).
    pub normalized_time: f64,
}

crate::impl_record!(Fig14Row {
    app,
    scheme,
    completions,
    normalized_time
});

/// Runs Figure 14 (NVP, Ratchet, GECKO over all apps).
pub fn rows(fidelity: Fidelity) -> Vec<Fig14Row> {
    let horizon_s = match fidelity {
        Fidelity::Quick => 4.0,
        Fidelity::Full => 12.0,
    };
    let mut out = Vec::new();
    for app in gecko_apps::all_apps() {
        let mut counts = Vec::new();
        for scheme in [SchemeKind::Nvp, SchemeKind::Ratchet, SchemeKind::Gecko] {
            let mut sim = Simulator::new(&app, SimConfig::harvesting(scheme)).expect("compiles");
            let m = sim.run_for(horizon_s);
            counts.push((scheme, m.completions));
        }
        let nvp = counts[0].1.max(1) as f64;
        for (scheme, c) in counts {
            out.push(Fig14Row {
                app: app.name.to_string(),
                scheme: scheme.name().to_string(),
                completions: c,
                normalized_time: nvp / c.max(1) as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvesting_overheads_keep_figure_shape() {
        // Subset for speed.
        let apps = ["crc16", "fir"];
        for name in apps {
            let app = gecko_apps::app_by_name(name).unwrap();
            let mut counts = std::collections::BTreeMap::new();
            for scheme in [SchemeKind::Nvp, SchemeKind::Ratchet, SchemeKind::Gecko] {
                let mut sim = Simulator::new(&app, SimConfig::harvesting(scheme)).unwrap();
                let m = sim.run_for(4.0);
                counts.insert(scheme.name(), m.completions.max(1));
            }
            let (nvp, ratchet, gecko) = (counts["NVP"], counts["Ratchet"], counts["GECKO"]);
            assert!(
                gecko as f64 >= 0.8 * nvp as f64,
                "{name}: GECKO ≈ NVP under harvesting: {counts:?}"
            );
            assert!(ratchet < nvp, "{name}: Ratchet slower than NVP: {counts:?}");
        }
    }
}
