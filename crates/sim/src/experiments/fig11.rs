//! Figure 11: normalized execution time of Ratchet, GECKO w/o pruning and
//! GECKO over the NVP baseline — outage-free bench-supply runs.

use super::{Fidelity, SchemeKind, SimConfig, Simulator};

/// One app × scheme measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Benchmark name.
    pub app: String,
    /// Scheme name.
    pub scheme: String,
    /// Execution cycles per completed run.
    pub cycles_per_run: f64,
    /// Normalized to NVP (1.0 = baseline).
    pub normalized: f64,
}

crate::impl_record!(Fig11Row {
    app,
    scheme,
    cycles_per_run,
    normalized
});

fn cycles_per_run(app: &gecko_apps::App, scheme: SchemeKind, runs: u64) -> f64 {
    let mut sim = Simulator::new(app, SimConfig::bench_supply(scheme)).expect("compiles");
    let m = sim.run_until_completions(runs, 30.0);
    assert!(m.completions >= runs, "{}: {:?}", app.name, m);
    (m.forward_cycles + m.overhead_cycles) as f64 / m.completions as f64
}

/// Runs Figure 11 over all eleven apps and four schemes.
pub fn rows(fidelity: Fidelity) -> Vec<Fig11Row> {
    let runs = match fidelity {
        Fidelity::Quick => 3,
        Fidelity::Full => 20,
    };
    let mut out = Vec::new();
    for app in gecko_apps::all_apps() {
        let nvp = cycles_per_run(&app, SchemeKind::Nvp, runs);
        for scheme in SchemeKind::all() {
            let c = if scheme == SchemeKind::Nvp {
                nvp
            } else {
                cycles_per_run(&app, scheme, runs)
            };
            out.push(Fig11Row {
                app: app.name.to_string(),
                scheme: scheme.name().to_string(),
                cycles_per_run: c,
                normalized: c / nvp,
            });
        }
    }
    out
}

/// Geometric-mean normalized time per scheme — the "avg" bar.
pub fn summary(rows: &[Fig11Row]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for scheme in SchemeKind::all() {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.scheme == scheme.name())
            .map(|r| r.normalized)
            .collect();
        let geomean = (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
        out.push((scheme.name().to_string(), geomean));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_ordering_holds() {
        // A 3-app subset keeps the test quick while checking the shape.
        let subset = ["crc16", "fir", "blink"];
        let mut all = Vec::new();
        for name in subset {
            let app = gecko_apps::app_by_name(name).unwrap();
            let nvp = cycles_per_run(&app, SchemeKind::Nvp, 3);
            for scheme in SchemeKind::all() {
                let c = cycles_per_run(&app, scheme, 3);
                all.push(Fig11Row {
                    app: name.to_string(),
                    scheme: scheme.name().to_string(),
                    cycles_per_run: c,
                    normalized: c / nvp,
                });
            }
        }
        let s = summary(&all);
        let get = |n: &str| s.iter().find(|(k, _)| k == n).unwrap().1;
        let (nvp, ratchet, gecko, unpruned) = (
            get("NVP"),
            get("Ratchet"),
            get("GECKO"),
            get("GECKO w/o pruning"),
        );
        assert!((nvp - 1.0).abs() < 1e-9);
        assert!(ratchet > 1.4, "Ratchet {ratchet}");
        assert!(gecko < 1.2, "GECKO {gecko}");
        assert!(gecko <= unpruned + 1e-9, "{gecko} vs {unpruned}");
        assert!(unpruned < ratchet, "{unpruned} vs {ratchet}");
    }
}
