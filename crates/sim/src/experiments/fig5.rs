//! Figure 5: remote EMI attack on ADC-monitored boards — forward progress
//! rate vs. attack frequency, 5–500 MHz sweep at 35 dBm from 5 m.

use super::{attacked_rate, clean_forward_cycles, lin_freq_grid, Fidelity};
use gecko_emi::{EmiSignal, Injection, MonitorKind};

/// One remote-attack measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Board name.
    pub device: String,
    /// Attack frequency (Hz).
    pub freq_hz: f64,
    /// Forward progress rate `R` in 0..=1.
    pub rate: f64,
}

crate::impl_record!(Fig5Row {
    device,
    freq_hz,
    rate
});

/// Transmit power used by the remote sweep (dBm).
pub const POWER_DBM: f64 = 35.0;
/// Attack distance (m).
pub const DISTANCE_M: f64 = 5.0;

/// Runs the Figure 5 sweep for the given monitor kind (`Adc` here;
/// [`super::fig7`] reuses this for comparator boards).
pub fn sweep(
    fidelity: Fidelity,
    monitor: MonitorKind,
    only_comparator_boards: bool,
) -> Vec<Fig5Row> {
    let step = match fidelity {
        Fidelity::Quick => 11e6,
        Fidelity::Full => 5e6,
    };
    let freqs = lin_freq_grid(5e6, 500e6, step);
    let window = fidelity.window_s();
    let mut out = Vec::new();
    for device in gecko_emi::devices::all_devices() {
        if only_comparator_boards && !device.has_comparator() {
            continue;
        }
        let clean = clean_forward_cycles(&device, monitor, window);
        for &f in &freqs {
            let rate = attacked_rate(
                &device,
                monitor,
                EmiSignal::new(f, POWER_DBM),
                Injection::Remote {
                    distance_m: DISTANCE_M,
                },
                window,
                clean,
            );
            out.push(Fig5Row {
                device: device.name().to_string(),
                freq_hz: f,
                rate,
            });
        }
    }
    out
}

/// Runs the Figure 5 sweep (all nine boards, ADC monitors).
pub fn rows(fidelity: Fidelity) -> Vec<Fig5Row> {
    sweep(fidelity, MonitorKind::Adc, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_board_has_a_dos_frequency() {
        let rows = rows(Fidelity::Quick);
        let devices: std::collections::BTreeSet<_> =
            rows.iter().map(|r| r.device.clone()).collect();
        assert_eq!(devices.len(), 9);
        for d in devices {
            let min = rows
                .iter()
                .filter(|r| r.device == d)
                .map(|r| r.rate)
                .fold(f64::INFINITY, f64::min);
            // Quick grid has 25 MHz spacing; it still brushes the resonance
            // band closely enough to show suppression.
            assert!(min < 0.6, "{d}: min rate {min}");
        }
    }
}
