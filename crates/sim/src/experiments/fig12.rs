//! Figure 12: checkpoint-store reduction from pruning — per app, the
//! static checkpoint counts of GECKO with and without the optimization.

use super::Fidelity;
use gecko_compiler::{compile, compile_unpruned, CompileOptions};

/// One app's pruning summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Benchmark name.
    pub app: String,
    /// Checkpoint stores without pruning.
    pub unpruned: usize,
    /// Checkpoint stores with pruning (including coloring fix-ups).
    pub pruned: usize,
    /// Fraction removed, in 0..=1.
    pub reduction: f64,
    /// Recovery blocks generated for the pruned stores.
    pub recovery_blocks: usize,
    /// Mean instructions per recovery block.
    pub mean_recovery_len: f64,
}

crate::impl_record!(Fig12Row {
    app,
    unpruned,
    pruned,
    reduction,
    recovery_blocks,
    mean_recovery_len
});

/// Compiles all apps both ways and reports the reduction.
pub fn rows(_fidelity: Fidelity) -> Vec<Fig12Row> {
    let opts = CompileOptions::default();
    gecko_apps::all_apps()
        .iter()
        .map(|app| {
            let with = compile(&app.program, &opts).expect("compiles");
            let without = compile_unpruned(&app.program, &opts).expect("compiles");
            let unpruned = without.stats.checkpoints_after;
            let pruned = with.stats.checkpoints_after;
            Fig12Row {
                app: app.name.to_string(),
                unpruned,
                pruned,
                reduction: if unpruned == 0 {
                    0.0
                } else {
                    1.0 - pruned as f64 / unpruned as f64
                },
                recovery_blocks: with.stats.recovery_blocks,
                mean_recovery_len: with.recovery.mean_recovery_block_len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_reduces_stores_meaningfully() {
        let rows = rows(Fidelity::Quick);
        assert_eq!(rows.len(), 11);
        let total_un: usize = rows.iter().map(|r| r.unpruned).sum();
        let total_pr: usize = rows.iter().map(|r| r.pruned).sum();
        let overall = 1.0 - total_pr as f64 / total_un as f64;
        // The paper reports ~80%; demand a substantial reduction.
        assert!(overall > 0.25, "overall reduction {overall}");
        for r in &rows {
            assert!(r.pruned <= r.unpruned, "{r:?}");
        }
        // Pruned stores are backed by recovery blocks somewhere.
        assert!(rows.iter().any(|r| r.recovery_blocks > 0));
    }
}
