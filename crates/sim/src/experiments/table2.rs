//! Table II: qualitative comparison of prior EMI countermeasures with
//! GECKO — a typed encoding of the paper's survey so the bench harness can
//! print it alongside the measured tables.

/// Hardware/software classification of a countermeasure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Requires new circuitry.
    Hardware,
    /// Pure software.
    Software,
    /// Both.
    Hybrid,
}

impl Approach {
    /// Short label as printed in the table ("HW" / "SW" / "HW+SW").
    pub fn label(self) -> &'static str {
        match self {
            Approach::Hardware => "HW",
            Approach::Software => "SW",
            Approach::Hybrid => "HW+SW",
        }
    }
}

impl From<Approach> for crate::report::Value {
    fn from(a: Approach) -> crate::report::Value {
        crate::report::Value::Str(a.label().to_string())
    }
}

/// One prior-work row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Work name as cited in the paper.
    pub work: &'static str,
    /// Protected target.
    pub target: &'static str,
    /// HW / SW / hybrid.
    pub approach: Approach,
    /// Suitable for µW-scale energy budgets?
    pub energy_efficient: bool,
    /// Provides power-failure recovery (crash consistency)?
    pub power_failure_recovery: bool,
    /// Deployable on an intermittent system?
    pub intermittent_applicable: bool,
}

crate::impl_record!(Table2Row {
    work,
    target,
    approach,
    energy_efficient,
    power_failure_recovery,
    intermittent_applicable
});

/// The encoded Table II.
pub fn rows() -> Vec<Table2Row> {
    use Approach::*;
    vec![
        Table2Row {
            work: "Ghost Talk",
            target: "Microphones",
            approach: Hybrid,
            energy_efficient: false,
            power_failure_recovery: false,
            intermittent_applicable: false,
        },
        Table2Row {
            work: "Rocking Drones",
            target: "Drones",
            approach: Hybrid,
            energy_efficient: false,
            power_failure_recovery: false,
            intermittent_applicable: false,
        },
        Table2Row {
            work: "Trick or Heat",
            target: "Incubators",
            approach: Hardware,
            energy_efficient: false,
            power_failure_recovery: false,
            intermittent_applicable: false,
        },
        Table2Row {
            work: "SoK",
            target: "Analog Sensors",
            approach: Hybrid,
            energy_efficient: false,
            power_failure_recovery: false,
            intermittent_applicable: false,
        },
        Table2Row {
            work: "Detection of EMI",
            target: "Temperature Sensors, Microphones",
            approach: Software,
            energy_efficient: true,
            power_failure_recovery: false,
            intermittent_applicable: false,
        },
        Table2Row {
            work: "Transduction Shield",
            target: "Pressure Sensors, Microphones",
            approach: Hybrid,
            energy_efficient: false,
            power_failure_recovery: false,
            intermittent_applicable: false,
        },
        Table2Row {
            work: "Detection of Weak EMI",
            target: "Sensors from IIoT",
            approach: Software,
            energy_efficient: false,
            power_failure_recovery: false,
            intermittent_applicable: false,
        },
        Table2Row {
            work: "GECKO",
            target: "Voltage Monitor",
            approach: Software,
            energy_efficient: true,
            power_failure_recovery: true,
            intermittent_applicable: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gecko_is_the_only_applicable_row() {
        let rows = rows();
        assert_eq!(rows.len(), 8);
        let applicable: Vec<_> = rows.iter().filter(|r| r.intermittent_applicable).collect();
        assert_eq!(applicable.len(), 1);
        assert_eq!(applicable[0].work, "GECKO");
        assert!(applicable[0].power_failure_recovery);
        assert_eq!(applicable[0].approach, Approach::Software);
    }
}
