//! Table III: the total number of checkpoint stores GECKO generates in
//! each application (static count, after pruning and coloring).

use super::Fidelity;
use gecko_compiler::{compile, CompileOptions};

/// One app's static checkpoint count.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Benchmark name.
    pub app: String,
    /// Checkpoint stores in the final binary.
    pub checkpoints: usize,
    /// Region boundaries in the final binary.
    pub regions: usize,
    /// Binary size overhead vs. the uninstrumented program (fraction).
    pub size_overhead: f64,
}

crate::impl_record!(Table3Row {
    app,
    checkpoints,
    regions,
    size_overhead
});

/// Compiles every app and counts.
pub fn rows(_fidelity: Fidelity) -> Vec<Table3Row> {
    let opts = CompileOptions::default();
    gecko_apps::all_apps()
        .iter()
        .map(|app| {
            let out = compile(&app.program, &opts).expect("compiles");
            let base = app.program.inst_count() as f64;
            let instrumented = out.stats.checkpoints_after + out.stats.regions;
            Table3Row {
                app: app.name.to_string(),
                checkpoints: out.stats.checkpoints_after,
                regions: out.stats.regions,
                size_overhead: instrumented as f64 / base,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_follow_table_iii_shape() {
        let rows = rows(Fidelity::Quick);
        let get = |n: &str| rows.iter().find(|r| r.app == n).unwrap();
        for r in &rows {
            assert!(r.regions >= 1, "{r:?}");
        }
        // blink is among the smallest, stringsearch among the largest —
        // the Table III shape.
        let blink = get("blink").checkpoints;
        let stringsearch = get("stringsearch").checkpoints;
        assert!(
            stringsearch >= blink,
            "stringsearch {stringsearch} vs blink {blink}"
        );
        // Instrumentation stays a bounded fraction of the code overall
        // (tiny apps like blink have proportionally larger harnesses).
        let avg = rows.iter().map(|r| r.size_overhead).sum::<f64>() / rows.len() as f64;
        assert!(avg < 0.75, "average size overhead {avg}");
    }
}
