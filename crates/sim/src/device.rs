//! The instruction-stepped device simulator: MCU + capacitor + harvester +
//! voltage monitor + recovery-scheme runtime.
//!
//! ## Power model
//!
//! Executing is only possible while the capacitor's *real* voltage is above
//! `V_off`. Every instruction draws its energy; harvested power integrates
//! continuously. When the device sleeps it draws only leakage, and wakes
//! according to the scheme: JIT-protocol schemes trust the (EMI-exposed)
//! voltage monitor for both the checkpoint trigger (`reading < V_backup`)
//! and the wake-up (`reading ≥ V_on`); GECKO in rollback mode uses only the
//! MCU-internal power-on reset (the paper found internal components immune
//! to remote EMI), booting at the *real* `V_on`.
//!
//! ## Scheme runtimes
//!
//! * **NVP** — CTPL: monitor-triggered word-by-word JIT checkpoint into a
//!   single-buffered area; restore on wake; cold-restart on corruption.
//! * **Ratchet** — no register clusters; at every region boundary the
//!   runtime saves all sixteen registers into the inactive buffer and
//!   commits atomically; monitor-triggered sleeps; rollback on wake.
//! * **GECKO** — JIT protocol while trusted; compiler clusters persist into
//!   the 3-slot checkpoint array at every boundary; reactive detection at
//!   boot (ACK toggle + region-repeat), rollback recovery through the
//!   recovery table (slot restores + recovery-block slices in a scratch
//!   context), and probation-based JIT re-enablement (Section VI-F).

use std::cell::Cell;

use gecko_apps::App;
use gecko_compiler::{
    compile, compile_ratchet, CompileError, CompileOptions, RecoveryTable, RegionTable,
    RestoreAction,
};
use gecko_ctpl::JitArea;
use gecko_emi::{
    AdcMonitor, AttackSchedule, ComparatorMonitor, DeviceModel, FaultModel, FaultSchedule,
    FilteredAdcMonitor, MonitorKind,
};
use gecko_energy::{segment, Capacitor, ConstantPower, PowerSource, VoltageThresholds};
use gecko_isa::{CostModel, EnergyModel, Program, Reg, RegionId};
use gecko_mcu::{FaultEffect, Machine, Nvm, Pc, Peripherals, PredecodedProgram, StepEvent};

use crate::areas::{GeckoArea, GeckoMode, RatchetArea};
use crate::metrics::Metrics;
use crate::scheme::SchemeKind;

/// Boot-sequence latency (bootloader, clock and peripheral bring-up) in
/// cycles — FRAM-board CTPL wake paths cost on the order of a millisecond.
pub const REBOOT_CYCLES: u64 = 24_000;
/// Application restart bookkeeping cycles (excluding the data reload).
pub const RESTART_CYCLES: u64 = 500;
/// Sleep-phase simulation tick.
pub const SLEEP_TICK_S: f64 = 2.5e-4;
/// Consecutive positive wake samples the CTPL wake path requires before
/// booting (debounce). Under a resonant attack the oscillating monitor
/// rarely produces a stable run, which is what stretches the spoofed
/// sleep phases and collapses forward progress to the few percent of
/// Table I.
pub const WAKE_STABLE_SAMPLES: u32 = 6;
/// Words of SRAM + peripheral state the CTPL checkpoint saves besides the
/// register file (the library checkpoints the whole volatile footprint).
pub const CTPL_STATE_WORDS: u32 = 4096;
/// RTC fallback: if the supply has genuinely been above `V_on` this long
/// but the monitor never produced a stable wake signal, the LPM timer wakes
/// the device anyway (CTPL arms an RTC alongside the comparator/ADC wake
/// sources). Without it, an attacker could suppress wake-ups indefinitely
/// and starve even the reactive detector of boots.
pub const WAKE_FALLBACK_S: f64 = 0.1;
/// The minimum power-on period (cycles) GECKO's WCET analysis guarantees a
/// charge cycle provides (Section VI-A): a *monitor-reported* outage that
/// arrives sooner is physically impossible for a healthy capacitor and is
/// treated as attack evidence.
pub const MIN_ON_PERIOD_CYCLES: u64 = 100_000;
/// NVM words of main memory.
pub const NVM_WORDS: u32 = 1 << 16;

/// Lowest NVM address of any scheme's checkpoint-runtime area (the
/// Ratchet buffers at `NVM_WORDS - 256`; the GECKO and JIT areas sit
/// above it). A store at or above this fence can flip runtime state the
/// event-horizon coalescer assumed constant (e.g. the GECKO mode word),
/// so batched spans end before executing one — applications never store
/// there, making the fence free in practice.
const RUNTIME_AREA_FENCE: u32 = NVM_WORDS - 256;

/// Smallest closed-form active horizon (in instructions) worth entering a
/// batched span for; below this the exact per-step path runs. Shared by
/// the in-device coalescer ([`Simulator::advance_to_horizon`]) and the
/// multi-device planner ([`crate::batch::DeviceBatch`]), which must agree
/// on the threshold for their trajectories to stay bit-identical.
pub const MIN_ACTIVE_SPAN: u64 = 8;

/// Everything needed to instantiate a simulated device.
#[derive(Debug)]
pub struct SimConfig {
    /// The recovery scheme under test.
    pub scheme: SchemeKind,
    /// The board's EMI susceptibility model.
    pub device: DeviceModel,
    /// Which voltage monitor drives the JIT protocol.
    pub monitor: MonitorKind,
    /// The voltage-threshold ladder.
    pub thresholds: VoltageThresholds,
    /// Energy-buffer capacitance (farads).
    pub capacitance_f: f64,
    /// Initial capacitor voltage; `None` = fully charged (`v_max`).
    pub initial_voltage_v: Option<f64>,
    /// The harvested-power source.
    pub harvester: Box<dyn PowerSource>,
    /// The attack schedule (possibly empty).
    pub attack: AttackSchedule,
    /// The EM instruction-fault schedule (possibly empty).
    pub fault: FaultSchedule,
    /// Compiler options for the instrumented schemes.
    pub compile: CompileOptions,
    /// Peripheral sensor seed.
    pub seed: u64,
    /// Optional median filter in front of the ADC monitor (the hardware
    /// countermeasure studied in Section V-A1); `Some(taps)` enables it.
    pub adc_filter_taps: Option<usize>,
}

impl SimConfig {
    /// A lab bench configuration: MSP430FR5994 model, ADC monitor, 1 mF
    /// capacitor, generous DC supply, no attack.
    pub fn bench_supply(scheme: SchemeKind) -> SimConfig {
        SimConfig {
            scheme,
            device: gecko_emi::devices::msp430fr5994(),
            monitor: MonitorKind::Adc,
            thresholds: VoltageThresholds::default(),
            capacitance_f: 1e-3,
            initial_voltage_v: None,
            harvester: Box::new(ConstantPower::bench_supply()),
            attack: AttackSchedule::none(),
            fault: FaultSchedule::none(),
            compile: CompileOptions::default(),
            seed: 7,
            adc_filter_taps: None,
        }
    }

    /// The paper's energy-harvesting environment: a weak RF harvester whose
    /// average power (~1.2 mW) is well below the ~3 mW active draw, so the
    /// device naturally duty-cycles: it drains the capacitor to `V_backup`,
    /// checkpoints, hibernates while recharging to `V_on`, and resumes —
    /// the periodic-outage regime of Section VII-B3.
    pub fn harvesting(scheme: SchemeKind) -> SimConfig {
        SimConfig {
            harvester: Box::new(ConstantPower::new(1.2e-3)),
            ..SimConfig::bench_supply(scheme)
        }
    }

    /// Replaces the attack schedule (builder style).
    pub fn with_attack(mut self, attack: AttackSchedule) -> SimConfig {
        self.attack = attack;
        self
    }

    /// Replaces the instruction-fault schedule (builder style).
    pub fn with_fault(mut self, fault: FaultSchedule) -> SimConfig {
        self.fault = fault;
        self
    }

    /// Replaces the board model (builder style).
    pub fn with_device(mut self, device: DeviceModel, monitor: MonitorKind) -> SimConfig {
        self.device = device;
        self.monitor = monitor;
        self
    }

    /// Replaces the energy buffer: capacitance and initial charge
    /// (builder style). Thresholds are left as configured.
    pub fn with_capacitor(mut self, capacitance_f: f64, initial_voltage_v: f64) -> SimConfig {
        self.capacitance_f = capacitance_f;
        self.initial_voltage_v = Some(initial_voltage_v);
        self
    }

    /// Like [`SimConfig::with_capacitor`] but rescales the thresholds so
    /// the buffered energy matches the 1 mF reference, per the paper's
    /// Section VII-D methodology (only meaningful for larger capacitors).
    pub fn with_rescaled_capacitor(
        mut self,
        capacitance_f: f64,
        initial_voltage_v: f64,
    ) -> SimConfig {
        self.thresholds = self.thresholds.rescale_for_capacitor(1e-3, capacitance_f);
        self.capacitance_f = capacitance_f;
        self.initial_voltage_v = Some(initial_voltage_v);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PowerState {
    On,
    Sleeping,
}

/// How the simulator executes ON-state instructions.
///
/// Both modes are *observationally identical* — same registers, memory,
/// events, metrics, timing and energy, bit for bit — and the differential
/// test suite holds them to it. [`ExecMode::Predecoded`] is the default and
/// is strictly faster; [`ExecMode::Interpreted`] re-interprets the
/// `gecko_isa` structures every step and exists as the independently-simple
/// reference the fast path is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Dispatch on the dense predecoded array built at compile time
    /// ([`gecko_mcu::PredecodedProgram`]).
    #[default]
    Predecoded,
    /// Re-interpret `gecko_isa` instructions step by step (the reference
    /// path).
    Interpreted,
}

/// Cumulative instrumentation of the simulator's stepping machinery: how
/// many simulation steps ran, and how many of them the two coalescers
/// (hibernation fast-forward, event-horizon active stepping) batched past
/// the full per-step dispatch. `steps == dispatches + ff_ticks + eh_insts`
/// always holds.
///
/// These counters are *diagnostics*, not simulation state: they are
/// excluded from [`Simulator::snapshot`], [`Simulator::state_hash`] and
/// [`crate::Metrics`], and keep accumulating across
/// [`Simulator::restore`] rewinds. They are deterministic for a given
/// configuration and run, which is what lets the `fast_path` bench assert
/// its coalescing ratios without wall-clock flakiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FastPathStats {
    /// Total simulation steps (instructions + sleep ticks), however
    /// executed.
    pub steps: u64,
    /// Steps that went through the full [`Simulator::step_one`] dispatch
    /// (one instruction or one exact sleep tick).
    pub dispatches: u64,
    /// Sleep ticks coalesced by the hibernation fast-forward.
    pub ff_ticks: u64,
    /// Fast-forwarded spans (maximal runs of coalesced ticks).
    pub ff_spans: u64,
    /// ON-state instructions coalesced by event-horizon stepping.
    pub eh_insts: u64,
    /// Event-horizon spans (maximal runs of batched instructions).
    pub eh_spans: u64,
}

/// The per-device inputs of the event-horizon span solver, sampled at the
/// device's *current* state: how much energy the capacitor holds, the
/// energy floor the span must provably stay above, and the worst-case
/// per-instruction loss. Feeding these three numbers to
/// [`segment::safe_steps`] reproduces exactly the horizon
/// [`Simulator::advance_to_horizon`] would compute internally — which is
/// what lets [`crate::batch::DeviceBatch`] size every device's span in one
/// structure-of-arrays pass without perturbing any trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanProfile {
    /// Energy stored in the capacitor right now (J).
    pub energy_j: f64,
    /// The guard floor (J): the worst-case-per-step energy the span must
    /// never dip below — `V_backup + margin` while the monitor polls,
    /// `V_off + margin` otherwise.
    pub e_guard_j: f64,
    /// Worst-case energy one instruction can cost (J): the program's
    /// costliest entry plus a full worst-case step of rail-voltage
    /// leakage, with harvest floored at zero.
    pub worst_loss_j: f64,
}

/// The full guard set `try_advance_active` derives before entering a span.
/// Private: the public planning subset is [`SpanProfile`].
struct ActiveGuards {
    /// Whether an armed unfiltered ADC must be replayed per instruction.
    adc_polls: bool,
    /// The pinned harvester power for the span (W).
    power: f64,
    /// Simulated time the span must end strictly before (attack-quiet and
    /// constant-power horizons, minus slack).
    t_guard: f64,
    /// See [`SpanProfile::e_guard_j`].
    e_guard_j: f64,
    /// See [`SpanProfile::worst_loss_j`].
    worst_loss_j: f64,
}

/// A full capture of a [`Simulator`]'s mutable state: volatile machine
/// state, NVM, peripherals, capacitor, monitor latches and accumulated
/// metrics. Everything else a simulator holds (program, tables, cost and
/// board models, harvester, attack schedule, area base addresses) is
/// immutable after construction and therefore not captured.
///
/// [`Simulator::restore`] rewinds the *same* simulator to the captured
/// point; together with [`Simulator::snapshot`] this gives the
/// crash-consistency checker its snapshot-fork exploration primitive:
/// walk the golden trace once, fork at every step, and rewind — amortized
/// O(n) instead of O(n²) cold re-execution.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    machine: Machine,
    nvm: Nvm,
    periph: Peripherals,
    cap: Capacitor,
    adc: AdcMonitor,
    adc_filter: Option<FilteredAdcMonitor>,
    comp_backup: ComparatorMonitor,
    comp_wake: ComparatorMonitor,
    state: PowerState,
    t_s: f64,
    probe: Option<bool>,
    wake_stable: u32,
    suppressed_s: f64,
    cycles_since_boot: u64,
    pending_fault: Option<FaultEffect>,
    metrics: Metrics,
}

/// A scheme-instrumented program artifact: everything `Simulator` needs
/// that depends only on `(app, scheme, compile options)` and not on the
/// physical configuration. Compiling is the expensive part of standing up
/// a simulator, so campaign engines build one `CompiledApp` per cell and
/// share it read-only across worker threads (it is `Send + Sync` — plain
/// data, no interior mutability).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledApp {
    /// The source application (with its data image and golden checksum).
    pub app: App,
    /// The scheme the program was instrumented for.
    pub scheme: SchemeKind,
    /// The (possibly instrumented) program the device runs.
    pub program: Program,
    /// Region table (empty for NVP).
    pub regions: RegionTable,
    /// Recovery table (empty for NVP/Ratchet).
    pub recovery: RecoveryTable,
    /// Static compiler statistics.
    pub stats: gecko_compiler::CompileStats,
    /// The program predecoded for fast dispatch (see
    /// [`gecko_mcu::PredecodedProgram`]). Built once here, under the
    /// simulator's default cost/energy models, so every simulator forked
    /// from this artifact shares the predecoding work.
    pub pre: PredecodedProgram,
}

impl CompiledApp {
    /// Compiles `app` as `scheme` requires. `options` only affects the
    /// GECKO schemes (NVP runs the program uninstrumented, Ratchet has no
    /// tunables).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors for the instrumented schemes.
    pub fn build(
        app: &App,
        scheme: SchemeKind,
        options: &CompileOptions,
    ) -> Result<CompiledApp, CompileError> {
        let (program, regions, recovery, stats) = match scheme {
            SchemeKind::Nvp => (
                app.program.clone(),
                RegionTable::default(),
                RecoveryTable::new(),
                gecko_compiler::CompileStats::default(),
            ),
            SchemeKind::Ratchet => {
                let out = compile_ratchet(&app.program)?;
                (out.program, out.regions, out.recovery, out.stats)
            }
            SchemeKind::Gecko => {
                let out = compile(&app.program, options)?;
                (out.program, out.regions, out.recovery, out.stats)
            }
            SchemeKind::GeckoNoPrune => {
                let out = compile(&app.program, &options.without_pruning())?;
                (out.program, out.regions, out.recovery, out.stats)
            }
        };
        let pre =
            PredecodedProgram::build(&program, &CostModel::default(), &EnergyModel::default());
        Ok(CompiledApp {
            app: app.clone(),
            scheme,
            program,
            regions,
            recovery,
            stats,
            pre,
        })
    }
}

/// The simulator's view of a [`FaultSchedule`]: the armed subset of its
/// windows plus a memoized constancy interval.
///
/// [`FaultSchedule::active_at`] / [`FaultSchedule::next_edge`] re-derive
/// each window's path gain (dBm and coupling-distance math) on every
/// query, which the per-instruction fault seam cannot afford — an armed
/// but far-off window would tax every fault-free run. Arming is a pure
/// per-window property and the active model is constant between
/// consecutive armed edges, so the physics runs once per window at
/// construction and each refresh pins the answers over
/// `[from_s, until_s)`: the steady-state query is two float compares.
/// A query at any instant outside the memoized interval — including time
/// rewound by [`Simulator::restore`] — recomputes, so every answer is
/// bit-identical to the uncached schedule's.
#[derive(Debug)]
struct FaultCache {
    /// Armed `(start_s, end_s, model)` windows, in schedule order.
    armed: Vec<(f64, f64, FaultModel)>,
    /// Memoized interval start (inclusive).
    from_s: Cell<f64>,
    /// First armed edge strictly after `from_s` (exclusive memo end).
    until_s: Cell<f64>,
    /// The model active over the memoized interval.
    active: Cell<Option<FaultModel>>,
}

impl FaultCache {
    fn new(schedule: &FaultSchedule) -> FaultCache {
        FaultCache {
            armed: schedule
                .windows()
                .iter()
                .filter(|f| f.is_armed())
                .map(|f| (f.start_s, f.end_s, f.model))
                .collect(),
            // Empty interval: the first query refreshes.
            from_s: Cell::new(f64::INFINITY),
            until_s: Cell::new(f64::NEG_INFINITY),
            active: Cell::new(None),
        }
    }

    /// Recomputes the memo for the armed-edge interval containing `t_s`.
    fn refresh(&self, t_s: f64) {
        let mut active = None;
        let mut until = f64::INFINITY;
        for &(start, end, model) in &self.armed {
            if active.is_none() && t_s >= start && t_s < end {
                active = Some(model);
            }
            if start > t_s && start < until {
                until = start;
            }
            if end > t_s && end < until {
                until = end;
            }
        }
        self.from_s.set(t_s);
        self.until_s.set(until);
        self.active.set(active);
    }

    /// The armed model covering `t_s` (first armed window wins),
    /// mirroring [`FaultSchedule::active_at`].
    fn active_at(&self, t_s: f64) -> Option<FaultModel> {
        if !(t_s >= self.from_s.get() && t_s < self.until_s.get()) {
            self.refresh(t_s);
        }
        self.active.get()
    }

    /// The next armed edge strictly after `t_s`, mirroring
    /// [`FaultSchedule::next_edge`].
    fn next_edge(&self, t_s: f64) -> f64 {
        if !(t_s >= self.from_s.get() && t_s < self.until_s.get()) {
            self.refresh(t_s);
        }
        self.until_s.get()
    }
}

/// A running simulated device.
#[derive(Debug)]
pub struct Simulator {
    program: Program,
    pre: PredecodedProgram,
    regions: RegionTable,
    recovery: RecoveryTable,
    scheme: SchemeKind,

    machine: Machine,
    nvm: Nvm,
    periph: Peripherals,
    cap: Capacitor,
    thresholds: VoltageThresholds,

    device: DeviceModel,
    monitor_kind: MonitorKind,
    adc: AdcMonitor,
    adc_filter: Option<FilteredAdcMonitor>,
    comp_backup: ComparatorMonitor,
    comp_wake: ComparatorMonitor,
    attack: AttackSchedule,
    fault: FaultCache,
    harvester: Box<dyn PowerSource>,

    jit: JitArea,
    gecko: GeckoArea,
    ratchet: RatchetArea,

    cost: CostModel,
    energy: EnergyModel,

    exec_mode: ExecMode,
    fast_forward: bool,
    event_horizon: bool,
    fast: FastPathStats,

    app: App,
    state: PowerState,
    t_s: f64,
    /// Gecko probation: Some(signal_seen) while probing after a rollback
    /// boot, cleared at the first boundary.
    probe: Option<bool>,
    /// Consecutive positive wake samples seen while sleeping.
    wake_stable: u32,
    /// Time spent sleeping while the real supply was above `V_on` (the RTC
    /// fallback's clock).
    suppressed_s: f64,
    /// Active cycles since the last boot (volatile).
    cycles_since_boot: u64,
    /// A one-shot fault armed by the checker's point injection: consumed
    /// by the next retired instruction, ahead of any scheduled window.
    pending_fault: Option<FaultEffect>,
    /// The compiler's static statistics (for experiment reporting).
    pub compile_stats: gecko_compiler::CompileStats,
    /// Accumulated metrics.
    pub metrics: Metrics,
}

impl Simulator {
    /// Builds a device running `app` under `config`. Compiles the app as
    /// the scheme requires; use [`Simulator::from_compiled`] to share one
    /// compilation across many simulators.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors for the instrumented schemes.
    pub fn new(app: &App, config: SimConfig) -> Result<Simulator, CompileError> {
        let compiled = CompiledApp::build(app, config.scheme, &config.compile)?;
        Ok(Simulator::from_compiled(&compiled, config))
    }

    /// Builds a device from a pre-compiled artifact. Infallible: all
    /// compilation already happened in [`CompiledApp::build`].
    ///
    /// # Panics
    ///
    /// Panics if `config.scheme` disagrees with the scheme `compiled` was
    /// built for (the artifact would not match the runtime).
    pub fn from_compiled(compiled: &CompiledApp, config: SimConfig) -> Simulator {
        assert_eq!(
            config.scheme, compiled.scheme,
            "config/compiled scheme mismatch"
        );
        let app = &compiled.app;
        let (program, regions, recovery, stats) = (
            compiled.program.clone(),
            compiled.regions.clone(),
            compiled.recovery.clone(),
            compiled.stats,
        );
        let pre = compiled.pre.clone();

        let mut nvm = Nvm::new(NVM_WORDS);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let machine = Machine::new(program.entry());
        let sim = Simulator {
            machine,
            nvm,
            periph: Peripherals::new(config.seed),
            cap: Capacitor::new(
                config.capacitance_f,
                config.initial_voltage_v.unwrap_or(config.thresholds.v_max),
            ),
            thresholds: config.thresholds,
            device: config.device,
            monitor_kind: config.monitor,
            adc: AdcMonitor::default(),
            adc_filter: config
                .adc_filter_taps
                .map(|taps| FilteredAdcMonitor::new(AdcMonitor::default(), taps)),
            comp_backup: ComparatorMonitor::default(),
            comp_wake: ComparatorMonitor::default(),
            attack: config.attack,
            fault: FaultCache::new(&config.fault),
            harvester: config.harvester,
            jit: JitArea::new(NVM_WORDS - 64),
            gecko: GeckoArea::new(NVM_WORDS - 160),
            ratchet: RatchetArea::new(NVM_WORDS - 256),
            cost: CostModel::default(),
            energy: EnergyModel::default(),
            exec_mode: ExecMode::Predecoded,
            fast_forward: true,
            event_horizon: true,
            fast: FastPathStats::default(),
            app: app.clone(),
            scheme: config.scheme,
            program,
            pre,
            regions,
            recovery,
            state: PowerState::On,
            t_s: 0.0,
            probe: None,
            wake_stable: 0,
            suppressed_s: 0.0,
            cycles_since_boot: 0,
            pending_fault: None,
            compile_stats: stats,
            metrics: Metrics::default(),
        };
        let mut sim = sim;
        if sim.cap.voltage_v() >= sim.thresholds.v_on {
            sim.first_boot();
        } else {
            sim.state = PowerState::Sleeping;
            // Provisioning still happens (mode words are factory-set).
            if matches!(config.scheme, SchemeKind::Gecko | SchemeKind::GeckoNoPrune) {
                sim.gecko.set_mode(&mut sim.nvm, GeckoMode::Jit);
                let _ = sim.jit.boot_check_and_record(&mut sim.nvm);
                let _ = sim.gecko.boot_check_and_record(&mut sim.nvm);
            }
        }
        sim
    }

    /// The instrumented program the device runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Selects the ON-state execution mode. The default is
    /// [`ExecMode::Predecoded`]; both modes are bit-identical, and
    /// [`ExecMode::Interpreted`] exists as the differential-testing
    /// reference.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The current ON-state execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Enables or disables the hibernation fast-forward (enabled by
    /// default). Fast-forwarding is observationally identical to stepping
    /// every sleep tick — disabling it forces the per-tick reference path
    /// the differential tests compare against.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether the hibernation fast-forward is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Enables or disables event-horizon active stepping (enabled by
    /// default). Batched active spans are observationally identical to
    /// stepping every instruction — disabling forces the per-instruction
    /// reference path the differential tests compare against. The batch
    /// path only engages in [`ExecMode::Predecoded`], so selecting
    /// [`ExecMode::Interpreted`] also implies per-instruction stepping.
    pub fn set_event_horizon(&mut self, enabled: bool) {
        self.event_horizon = enabled;
    }

    /// Whether event-horizon active stepping is enabled.
    pub fn event_horizon(&self) -> bool {
        self.event_horizon
    }

    /// Cumulative fast-path instrumentation (diagnostics only; not part of
    /// the simulation state).
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.fast
    }

    /// Present simulated time (s).
    pub fn time_s(&self) -> f64 {
        self.t_s
    }

    /// Present real capacitor voltage (V).
    pub fn voltage_v(&self) -> f64 {
        self.cap.voltage_v()
    }

    /// Read-only access to main memory (for output inspection in tests).
    pub fn nvm(&self) -> &Nvm {
        &self.nvm
    }

    /// Executes exactly `n` simulation steps (instructions while on, sleep
    /// ticks while off). Fault-injection harnesses use this for precise
    /// positioning before [`Simulator::inject_power_failure`] — the
    /// landing state is bit-identical to `n` [`Simulator::step_one`]
    /// calls even when spans in between were coalesced.
    pub fn run_steps(&mut self, n: u64) -> Metrics {
        self.advance(n);
        self.metrics.sim_time_s = self.t_s;
        self.metrics
    }

    /// Advances the device by exactly one simulation step: one instruction
    /// while on, one sleep tick while hibernating. This is the single
    /// stepping primitive every run loop (and the crash-consistency
    /// checker) shares, so pacing paths cannot drift.
    pub fn step_one(&mut self) {
        self.fast.steps += 1;
        self.fast.dispatches += 1;
        match self.state {
            PowerState::On => self.on_instruction(),
            PowerState::Sleeping => self.sleep_tick(),
        }
        // Keep the reported simulated time exact at *every* step, so a
        // snapshot taken mid-run (or mid-hibernation) carries the same
        // `sim_time_s` a run-loop exit would have written.
        self.metrics.sim_time_s = self.t_s;
    }

    /// Fault injection: an instantaneous total power failure right now —
    /// volatile state is lost and the capacitor is drained to zero, exactly
    /// as if the harvester had been disconnected. Used by the
    /// crash-consistency test suite to exercise arbitrary failure points.
    pub fn inject_power_failure(&mut self) {
        self.cap.set_voltage(0.0);
        if self.state == PowerState::On {
            self.power_failure();
        }
    }

    /// Whether the device is currently executing (not hibernating).
    pub fn is_on(&self) -> bool {
        self.state == PowerState::On
    }

    /// The persisted GECKO runtime mode, for the GECKO schemes (`None`
    /// for NVP/Ratchet).
    pub fn gecko_mode(&self) -> Option<crate::areas::GeckoMode> {
        match self.scheme {
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => Some(self.gecko.mode(&self.nvm)),
            _ => None,
        }
    }

    /// Runs until `n` application completions have accumulated or
    /// `max_seconds` of device time elapse, whichever comes first.
    /// Hibernation spans are fast-forwarded when provably equivalent (see
    /// [`Simulator::set_fast_forward`]).
    pub fn run_until_completions(&mut self, n: u64, max_seconds: f64) -> Metrics {
        let t_end = self.t_s + max_seconds;
        while self.t_s < t_end && self.metrics.completions < n {
            self.advance_to_horizon(u64::MAX, t_end);
        }
        self.metrics.sim_time_s = self.t_s;
        self.metrics
    }

    /// Runs the simulation for `seconds` of device time; returns the
    /// metrics accumulated so far (cumulative across calls). Hibernation
    /// and active-execution spans are coalesced when provably equivalent
    /// (see [`Simulator::set_fast_forward`] and
    /// [`Simulator::set_event_horizon`]).
    pub fn run_for(&mut self, seconds: f64) -> Metrics {
        let t_end = self.t_s + seconds;
        while self.t_s < t_end {
            self.advance_to_horizon(u64::MAX, t_end);
        }
        self.metrics.sim_time_s = self.t_s;
        self.metrics
    }

    /// The budget-sliceable run primitive: advances until `t_end` seconds
    /// of device time, `target_completions` completions, or `max_steps`
    /// simulation steps — whichever comes first — and returns the steps
    /// taken. Chaining calls with the same `t_end`/`target_completions`
    /// reproduces [`Simulator::run_for`] / [`Simulator::run_until_completions`]
    /// bit for bit (capping `max_steps` can only split a coalesced span —
    /// hibernation fast-forward or event-horizon batch — which is
    /// observably identical to the uncapped walk), which is what lets
    /// `gecko-fleet`'s supervisor interleave step-budget and deadline
    /// checks without perturbing results.
    pub fn run_capped(&mut self, t_end: f64, target_completions: u64, max_steps: u64) -> u64 {
        let mut done = 0u64;
        while done < max_steps && self.t_s < t_end && self.metrics.completions < target_completions
        {
            done += self.advance_to_horizon(max_steps - done, t_end);
        }
        self.metrics.sim_time_s = self.t_s;
        done
    }

    /// Advances the device by exactly `max_steps` simulation steps,
    /// observably identical to calling [`Simulator::step_one`] that many
    /// times, but coalescing spans through the fast paths when provably
    /// equivalent. Returns the number of steps taken (always `max_steps`).
    pub fn advance(&mut self, max_steps: u64) -> u64 {
        let mut done = 0u64;
        while done < max_steps {
            done += self.advance_to_horizon(max_steps - done, f64::INFINITY);
        }
        done
    }

    /// Advances the device by up to `max_steps` steps *while it stays
    /// hibernating*, stopping early the moment it wakes (without executing
    /// any ON-state instruction). Observably identical to
    /// `while !sim.is_on() && done < max_steps { sim.step_one(); done += 1 }`.
    /// This is the settle primitive the crash-consistency checker's
    /// budgeted wake loops use. Returns the number of steps taken.
    pub fn advance_sleep(&mut self, max_steps: u64) -> u64 {
        let mut done = 0u64;
        while done < max_steps && self.state == PowerState::Sleeping {
            done += self.advance_to_horizon(max_steps - done, f64::INFINITY);
        }
        done
    }

    /// The single span-stepping primitive every run loop drains through:
    /// advances by at most `max_steps` simulation steps — one coalesced
    /// span (a hibernation fast-forward or an event-horizon active batch)
    /// when a fast path can prove equivalence right now, otherwise exactly
    /// one [`Simulator::step_one`] — and returns the number of steps
    /// taken (at least 1 unless `max_steps == 0`).
    ///
    /// `t_end` bounds coalesced spans: no span runs at or past that
    /// simulated time. The single-step fallback ignores it, exactly like
    /// the loop bodies this primitive replaced — callers gate on
    /// [`Simulator::time_s`] before calling.
    pub fn advance_to_horizon(&mut self, max_steps: u64, t_end: f64) -> u64 {
        if max_steps == 0 {
            return 0;
        }
        let n = match self.state {
            PowerState::Sleeping => self.try_fast_forward(max_steps, t_end),
            PowerState::On => self.try_advance_active(max_steps, t_end),
        };
        if n > 0 {
            return n;
        }
        self.step_one();
        1
    }

    // ----- snapshot / fork ----------------------------------------------

    /// Captures the complete mutable state of the device. Resuming after a
    /// later [`Simulator::restore`] of this snapshot is bit-identical to
    /// never having diverged (see the round-trip property test in
    /// `tests/snapshot.rs`).
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            machine: self.machine.clone(),
            nvm: self.nvm.clone(),
            periph: self.periph.clone(),
            cap: self.cap.clone(),
            adc: self.adc.clone(),
            adc_filter: self.adc_filter.clone(),
            comp_backup: self.comp_backup.clone(),
            comp_wake: self.comp_wake.clone(),
            state: self.state,
            t_s: self.t_s,
            probe: self.probe,
            wake_stable: self.wake_stable,
            suppressed_s: self.suppressed_s,
            cycles_since_boot: self.cycles_since_boot,
            pending_fault: self.pending_fault,
            metrics: self.metrics,
        }
    }

    /// Rewinds the device to a state previously captured by
    /// [`Simulator::snapshot`]. The snapshot must come from this simulator
    /// (or one built from the same `CompiledApp` and configuration);
    /// snapshots carry no program or configuration, only mutable state.
    pub fn restore(&mut self, snap: &SimSnapshot) {
        self.machine.clone_from(&snap.machine);
        self.nvm.clone_from(&snap.nvm);
        self.periph.clone_from(&snap.periph);
        self.cap.clone_from(&snap.cap);
        self.adc.clone_from(&snap.adc);
        self.adc_filter.clone_from(&snap.adc_filter);
        self.comp_backup.clone_from(&snap.comp_backup);
        self.comp_wake.clone_from(&snap.comp_wake);
        self.state = snap.state;
        self.t_s = snap.t_s;
        self.probe = snap.probe;
        self.wake_stable = snap.wake_stable;
        self.suppressed_s = snap.suppressed_s;
        self.cycles_since_boot = snap.cycles_since_boot;
        self.pending_fault = snap.pending_fault;
        self.metrics = snap.metrics;
    }

    /// FNV-1a hash of the device's *logical* state: registers, PC, halt
    /// flag, power state, probation flag, the full NVM image and the
    /// peripheral stream position. Two devices with equal hashes execute
    /// identically from here on under an undisturbed supply (the physical
    /// trajectory — capacitor voltage, elapsed time — affects only energy
    /// and timing metrics, never the memory outcome; see DESIGN.md §10 for
    /// the soundness argument). The checker memoizes explorations on this
    /// hash to dedupe forks that re-converge onto an already-checked
    /// resume state.
    pub fn state_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            // 64-bit-lane FNV: one multiply per word keeps hashing the
            // 64 K-word NVM cheap enough to run at every fork.
            h = (h ^ word).wrapping_mul(FNV_PRIME);
        };
        for v in self.machine.regs().snapshot() {
            eat(v as u64);
        }
        let (b, i) = self.machine.pc().encode();
        eat(b as u64);
        eat(i as u64);
        eat(self.machine.is_halted() as u64);
        eat(match self.state {
            PowerState::On => 1,
            PowerState::Sleeping => 2,
        });
        eat(match self.probe {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        eat(self.periph.sense_count());
        eat(self.periph.blink_count());
        eat(self.periph.sent().len() as u64);
        // An armed one-shot fault changes what the next instruction does,
        // so two states differing only in it must not share a memo entry;
        // the fault counters fold in so fault-visible histories stay
        // distinguishable in digests built over this hash.
        eat(match self.pending_fault {
            None => 0,
            Some(FaultEffect::Skip) => 1,
            Some(FaultEffect::OpcodeCorrupt) => 2,
            Some(FaultEffect::OperandBitflip { bit }) => 3 + (u64::from(bit) << 2),
        });
        eat(self.metrics.fault_skips);
        eat(self.metrics.fault_corruptions);
        for pair in self.nvm.words().chunks(2) {
            let lo = pair[0] as u32 as u64;
            let hi = pair.get(1).map_or(0, |&w| w as u32 as u64);
            eat(lo | (hi << 32));
        }
        h
    }

    // ----- fault / EMI injection ----------------------------------------

    /// Fault injection: a spoofed *checkpoint* signal — the device reacts
    /// exactly as if its voltage monitor had (falsely) reported the supply
    /// collapsing below `V_backup` right now, which is precisely what a
    /// resonant EMI burst induces (Section V). While the JIT protocol is
    /// active the scheme checkpoints (or, for Ratchet, shuts down cleanly)
    /// and hibernates; in GECKO rollback-mode probation the spurious signal
    /// is recorded as attack evidence; otherwise (already sleeping, or
    /// rollback mode outside probation) it is ignored, as on hardware.
    pub fn inject_spoofed_checkpoint(&mut self) {
        if self.state != PowerState::On {
            return;
        }
        if self.jit_protocol_active() {
            match self.scheme {
                SchemeKind::Ratchet => {
                    self.machine.power_fail(self.program.entry());
                    self.wake_stable = 0;
                    self.state = PowerState::Sleeping;
                }
                _ => self.jit_checkpoint_and_sleep(),
            }
        } else if let Some(seen) = self.probe {
            if !seen {
                self.probe = Some(true);
            }
        }
    }

    /// Fault injection: a spoofed *wake-up* signal — the monitor (falsely)
    /// reports the supply stable above `V_on`, so a sleeping device boots
    /// immediately, bypassing the debounce. A no-op while already on.
    /// Schemes that ignore the monitor for wake (GECKO rollback mode
    /// trusts only the internal POR) are immune and also treat this as a
    /// no-op.
    pub fn inject_spoofed_wakeup(&mut self) {
        if self.state != PowerState::Sleeping || !self.uses_monitor_for_wake() {
            return;
        }
        self.wake_stable = 0;
        self.suppressed_s = 0.0;
        self.boot();
    }

    /// Fault injection: arms a one-shot EM instruction fault that the
    /// *next* retired instruction suffers ([`gecko_mcu::FaultEffect`]),
    /// taking precedence over any scheduled fault window. A no-op while
    /// hibernating — a pulse with no instruction in flight corrupts
    /// nothing. This is the crash-consistency checker's point-injection
    /// primitive for the Moro-style fault kinds.
    pub fn inject_instruction_fault(&mut self, fault: FaultEffect) {
        if self.state != PowerState::On || self.machine.is_halted() {
            return;
        }
        self.pending_fault = Some(fault);
    }

    // ----- state inspection (blame reporting) ---------------------------

    /// The machine's current program counter.
    pub fn pc(&self) -> Pc {
        self.machine.pc()
    }

    /// The committed region a rollback recovery would resume from right
    /// now (`None` for NVP, which has no regions, and for Ratchet before
    /// its first boundary commit).
    pub fn committed_region(&self) -> Option<RegionId> {
        match self.scheme {
            SchemeKind::Nvp => None,
            SchemeKind::Ratchet => self.ratchet.committed(&self.nvm).map(|(region, _)| region),
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => {
                Some(self.gecko.committed_region(&self.nvm))
            }
        }
    }

    /// The PC a *valid* JIT checkpoint would restore to, if one exists.
    /// Read-only: inspects the CTPL area without consuming energy. This is
    /// how the checker names the checkpoint it blames for an NVP
    /// double-execution counterexample.
    pub fn jit_checkpoint_pc(&self) -> Option<Pc> {
        self.jit.try_restore(&self.nvm).map(|(_, pc)| pc)
    }

    // ----- power / time plumbing ---------------------------------------

    fn disturbance_amp(&self) -> f64 {
        match self.attack.active_at(self.t_s) {
            Some(a) => self
                .device
                .induced_amplitude_v(self.monitor_kind, &a.signal, a.injection),
            None => 0.0,
        }
    }

    /// Advances time by `cycles`, integrating harvest and drawing
    /// `extra_nj` on top of the per-cycle energy. Returns `false` when the
    /// capacitor hit brown-out during the interval.
    fn consume(&mut self, cycles: u64, extra_nj: f64, forward: bool) -> bool {
        let dt = self.cost.cycles_to_seconds(cycles);
        let power = self.harvester.power_w(self.t_s);
        self.cap.charge(power, dt, self.thresholds.v_max);
        let e_nj = self.energy.cycles_energy_nj(cycles) + extra_nj;
        self.metrics.energy_nj += e_nj;
        if forward {
            self.metrics.forward_cycles += cycles;
        } else {
            self.metrics.overhead_cycles += cycles;
        }
        self.cycles_since_boot += cycles;
        self.t_s += dt;
        let alive = self.cap.discharge_j(e_nj * 1e-9);
        alive && self.cap.voltage_v() >= self.thresholds.v_off
    }

    /// One ADC-path read, through the median filter when configured.
    fn adc_read(&mut self, amp: f64) -> f64 {
        let (v, t) = (self.cap.voltage_v(), self.t_s);
        match &mut self.adc_filter {
            Some(f) => f.read(v, amp, t),
            None => self.adc.read(v, amp, t),
        }
    }

    /// Whether the monitor asserts the checkpoint (power-loss) signal.
    fn monitor_says_checkpoint(&mut self) -> bool {
        let amp = self.disturbance_amp();
        match self.monitor_kind {
            MonitorKind::Adc => {
                let r = self.adc_read(amp);
                r < self.thresholds.v_backup
            }
            MonitorKind::Comparator => {
                let v = self.cap.voltage_v();
                self.comp_backup
                    .is_below(v, amp, self.thresholds.v_backup, self.t_s)
            }
        }
    }

    /// Whether the monitor asserts the wake-up signal.
    fn monitor_says_wake(&mut self) -> bool {
        let amp = self.disturbance_amp();
        match self.monitor_kind {
            MonitorKind::Adc => {
                // The sample-and-hold pipeline is load-bearing here: a
                // disturbed conversion *held* across polls is what lets an
                // attacker accumulate consecutive spoofed wake samples, so
                // the wake poll must go through the stateful `read` (the
                // fast-forward replays the identical call per skipped tick).
                let r = self.adc_read(amp);
                r >= self.thresholds.v_on
            }
            MonitorKind::Comparator => {
                let v = self.cap.voltage_v();
                !self
                    .comp_wake
                    .is_below(v, amp, self.thresholds.v_on, self.t_s)
            }
        }
    }

    // ----- sleep & boot --------------------------------------------------

    fn sleep_tick(&mut self) {
        let dt = SLEEP_TICK_S;
        let power = self.harvester.power_w(self.t_s);
        self.cap.charge(power, dt, self.thresholds.v_max);
        self.cap.discharge_j(self.energy.sleep_nw * 1e-9 * dt);
        self.t_s += dt;

        let really_charged = self.cap.voltage_v() >= self.thresholds.v_on;
        let wake_sample = if self.uses_monitor_for_wake() {
            self.monitor_says_wake()
        } else {
            really_charged
        };
        // RTC fallback clock: counts only while a wake is genuinely due.
        if really_charged {
            self.suppressed_s += dt;
        } else {
            self.suppressed_s = 0.0;
        }
        if wake_sample {
            self.wake_stable += 1;
            if self.wake_stable >= WAKE_STABLE_SAMPLES {
                self.wake_stable = 0;
                self.suppressed_s = 0.0;
                self.boot();
            }
        } else {
            self.wake_stable = 0;
            if self.suppressed_s > WAKE_FALLBACK_S {
                // LPM timer expires: wake regardless of the monitor.
                self.suppressed_s = 0.0;
                self.wake_stable = 0;
                self.boot();
            }
        }
    }

    /// Coalesces up to `max_steps` hibernation ticks, stopping before
    /// `t_end`, and returns how many ticks it committed (0 when the fast
    /// path cannot prove equivalence right now). Callers fall back to the
    /// exact per-tick `sleep_tick` on a 0 return.
    ///
    /// ## Equivalence argument
    ///
    /// A committed (non-waking) `sleep_tick` has exactly this net effect:
    /// the capacitor integrates one tick of harvest/leak/sleep draw, time
    /// advances by one tick, and `suppressed_s`/`wake_stable` are both
    /// reset to zero — *independent of their values at entry* — because a
    /// tick that ends below `V_on` sees `really_charged == false` and a
    /// negative wake sample. So skipping a tick is sound precisely when we
    /// can prove the tick could not have woken or changed monitor state:
    ///
    /// * **Constant power** — [`PowerSource::constant_until`] guarantees
    ///   the harvester returns the exact same `power_w` for every tick
    ///   start in the span, so the replayed `charge` calls are
    ///   bit-identical to the per-tick ones.
    /// * **Sub-`V_on` span** — each candidate tick is trialled on a clone
    ///   of the capacitor; the span stops *before* any tick that would end
    ///   at or above `V_on − margin`, where `margin` covers the ADC's
    ///   worst-case round-up (`lsb + ε`; the comparator's hysteresis band
    ///   is far wider). Below that voltage a *fresh* monitor conversion
    ///   cannot read `≥ V_on`, the POR cannot fire, and the RTC-fallback
    ///   clock stays at zero.
    /// * **Monitor state replayed or untouched** — the unfiltered ADC's
    ///   sample-and-hold pipeline is stateful (and a reading held from
    ///   *before* the span can still sit at or above `V_on`), so the fast
    ///   path issues the identical `read` per skipped tick and replicates
    ///   the wake debounce on its result. The comparator is only skipped
    ///   while already latched below with no disturbance, which keeps its
    ///   latch untouched without evaluating it. A *filtered* ADC shifts
    ///   its whole median window per poll, so the fast path refuses to
    ///   engage and the exact ticks run.
    /// * **No attack** — when the monitor is consulted for wake, a
    ///   disturbance could spoof a reading *upward* across `V_on`, so the
    ///   span must end before the next attack window
    ///   ([`AttackSchedule::quiet_horizon`]). GECKO rollback-mode wake
    ///   ignores the monitor entirely and needs no quiet guard.
    ///
    /// Two ticks of slack are kept against both horizons: power is sampled
    /// at tick *start* and the monitor at tick *end*, and the slack absorbs
    /// any floating-point blur in the horizon boundaries.
    fn try_fast_forward(&mut self, max_steps: u64, t_end: f64) -> u64 {
        if !self.fast_forward || self.state != PowerState::Sleeping {
            return 0;
        }
        let monitor_wake = self.uses_monitor_for_wake();
        let adc_wake = if monitor_wake {
            match self.monitor_kind {
                MonitorKind::Adc => {
                    if self.adc_filter.is_some() {
                        return 0;
                    }
                    true
                }
                MonitorKind::Comparator => {
                    if !self.comp_wake.is_latched_below() {
                        return 0;
                    }
                    false
                }
            }
        } else {
            false
        };
        let (power, power_until) = match self.harvester.constant_until(self.t_s) {
            Some(x) => x,
            None => return 0,
        };
        let quiet_until = if monitor_wake {
            match self.attack.quiet_horizon(self.t_s) {
                Some(q) => q,
                None => return 0,
            }
        } else {
            f64::INFINITY
        };

        let dt = SLEEP_TICK_S;
        let draw_j = self.energy.sleep_nw * 1e-9 * dt;
        let margin_v = self.adc.lsb_v() + 1e-9;
        let v_stop = self.thresholds.v_on - margin_v;
        if v_stop <= 0.0 {
            return 0;
        }
        let e_stop = 0.5 * self.cap.capacitance_f() * v_stop * v_stop;
        let slack = 2.0 * dt;

        // The span runs entirely on locals so the hot loop keeps its state
        // in registers instead of reloading `self` fields around the ADC
        // call; everything commits back in one shot when the span ends.
        // The locals replay the *same* operations in the *same* order a
        // per-tick walk would, so the committed trajectory is bit-identical.
        let mut cap = self.cap.clone();
        let mut t = self.t_s;
        let mut adc = self.adc.clone();
        let mut wake_stable = self.wake_stable;
        let mut woke = false;
        let mut done = 0u64;
        // Hoisted loop bound. Folding the slack into the horizons ahead of
        // time can shift each guard by at most one ulp relative to the
        // per-tick form — noise against the two-tick slack, and the guard
        // only needs to be conservative: a span that ends a tick early just
        // hands back to the exact fallback sooner.
        let t_stop = t_end.min(power_until - slack).min(quiet_until - dt - slack);
        while done < max_steps && t < t_stop {
            // Trial the tick on a copy; commit by assignment only if it
            // provably stays asleep.
            let mut trial = cap.clone();
            trial.charge(power, dt, self.thresholds.v_max);
            trial.discharge_j(draw_j);
            if trial.energy_j() >= e_stop {
                break;
            }
            cap = trial;
            t += dt;
            done += 1;
            if adc_wake {
                // Replay the exact wake poll: the conversion pipeline holds
                // readings between sample instants, and a held reading from
                // before the span can still be >= V_on, so the debounce
                // must run on the real pipeline output.
                let r = adc.read_with(|| cap.voltage_v(), 0.0, t);
                if r >= self.thresholds.v_on {
                    wake_stable += 1;
                    if wake_stable >= WAKE_STABLE_SAMPLES {
                        wake_stable = 0;
                        woke = true;
                        break;
                    }
                } else {
                    wake_stable = 0;
                }
            } else {
                // POR wake sees `really_charged == false`; the latched
                // comparator stays below without being evaluated.
                wake_stable = 0;
            }
        }
        if done > 0 {
            self.cap = cap;
            self.t_s = t;
            self.adc = adc;
            self.wake_stable = wake_stable;
            // `really_charged` was false on every committed tick, so the
            // RTC-fallback clock reset each time.
            self.suppressed_s = 0.0;
            self.fast.ff_spans += 1;
            self.fast.ff_ticks += done;
            self.fast.steps += done;
            self.metrics.sim_time_s = self.t_s;
            if woke {
                self.boot();
            }
        }
        done
    }

    /// Derives the guard set an event-horizon span would run under right
    /// now, or `None` when any bail condition of the exact path holds:
    /// coalescing disabled or interpreted mode, hibernating or halted, a
    /// filtered ADC, a held reading already below `V_backup`, a latched
    /// comparator, a non-constant harvester, or an attack window active at
    /// this instant. This *is* `try_advance_active`'s prologue — factored
    /// out so the batch planner and the in-device coalescer cannot drift.
    fn active_span_guards(&self) -> Option<ActiveGuards> {
        if !self.event_horizon
            || self.exec_mode != ExecMode::Predecoded
            || self.state != PowerState::On
            || self.machine.is_halted()
        {
            return None;
        }
        // Inside an armed fault window (or with a one-shot fault pending)
        // every retired instruction mutates differently than the batched
        // replay assumes: only the exact path injects.
        if self.pending_fault.is_some() || self.fault.active_at(self.t_s).is_some() {
            return None;
        }
        let polls = self.jit_protocol_active() || self.probe == Some(false);
        let adc_polls = if polls {
            match self.monitor_kind {
                MonitorKind::Adc => {
                    if self.adc_filter.is_some() {
                        return None;
                    }
                    // A reading held from before the span can already sit
                    // below V_backup; the next poll would assert the
                    // checkpoint signal, which only the exact path handles.
                    if self
                        .adc
                        .held_at(self.t_s)
                        .is_some_and(|r| r < self.thresholds.v_backup)
                    {
                        return None;
                    }
                    true
                }
                MonitorKind::Comparator => {
                    if self.comp_backup.is_latched_below() {
                        return None;
                    }
                    false
                }
            }
        } else {
            false
        };
        let (power, power_until) = self.harvester.constant_until(self.t_s)?;
        let quiet_until = if polls {
            if self.attack.active_at(self.t_s).is_some() {
                return None;
            }
            self.attack.next_edge(self.t_s)
        } else {
            f64::INFINITY
        };

        // Worst-case per-instruction loss: the program's costliest entry
        // plus a full worst-case step of leakage at the highest voltage
        // the span can see (harvest is floored at zero — charging only
        // helps).
        let (worst_cycles, worst_energy_nj) = self.pre.worst_step();
        let max_dt = self.cost.cycles_to_seconds(worst_cycles);
        let v_rail = self.cap.voltage_v().max(self.thresholds.v_max);
        let leak_j = self.cap.leak_siemens() * v_rail * v_rail * max_dt;
        let worst_loss_j = worst_energy_nj * 1e-9 + leak_j;

        let margin_v = self.adc.lsb_v() + 1e-9;
        let v_guard = if polls {
            self.thresholds.v_backup + margin_v
        } else {
            self.thresholds.v_off + margin_v
        };
        let e_guard_j = 0.5 * self.cap.capacitance_f() * v_guard * v_guard;
        let slack = 2.0 * max_dt;
        // A span must end before the next armed fault-window edge: faults
        // strike executing instructions regardless of whether the monitor
        // polls, so this horizon applies even when `quiet_until` does not.
        let fault_until = self.fault.next_edge(self.t_s);
        let t_guard = (power_until - slack)
            .min(quiet_until - slack)
            .min(fault_until - slack);
        Some(ActiveGuards {
            adc_polls,
            power,
            t_guard,
            e_guard_j,
            worst_loss_j,
        })
    }

    /// The event-horizon planner's view of this device right now: `None`
    /// when the next [`Simulator::advance_to_horizon`] call would take the
    /// exact scalar path (sleeping devices, bail conditions), otherwise
    /// the exact `(energy, floor, worst-loss)` triple whose
    /// [`segment::safe_steps`] solution equals the span the device would
    /// size for itself. [`crate::batch::DeviceBatch`] gathers one profile
    /// per device into contiguous arrays and solves them in a single pass.
    pub fn span_profile(&self) -> Option<SpanProfile> {
        self.active_span_guards().map(|g| SpanProfile {
            energy_j: self.cap.energy_j(),
            e_guard_j: g.e_guard_j,
            worst_loss_j: g.worst_loss_j,
        })
    }

    /// Energy stored in the capacitor right now (J).
    pub fn energy_j(&self) -> f64 {
        self.cap.energy_j()
    }

    /// Coalesces up to `max_steps` ON-state instructions into one batched
    /// span ending strictly before `t_end`, and returns how many it
    /// committed (0 when the fast path cannot prove equivalence right
    /// now). Callers fall back to the exact per-instruction
    /// `on_instruction` on a 0 return.
    ///
    /// ## Equivalence argument (DESIGN.md §13 has the full proof sketch)
    ///
    /// A per-step ON instruction does three things: execute the machine
    /// step, run `consume` (charge → account energy/cycles → advance time
    /// → discharge → brown-out check), then react to events and poll the
    /// voltage monitor when the JIT protocol (or probation) is armed. The
    /// batch is sound when every per-step reaction is provably a no-op:
    ///
    /// * **Span enders** — [`Machine::retire_span`] stops *before*
    ///   executing any `Boundary`/`Checkpoint`/`Halt` entry and any store
    ///   into the runtime NVM area ([`RUNTIME_AREA_FENCE`]), so scheme
    ///   state (`jit_protocol_active`, probation) is constant in-span and
    ///   event handling happens on the exact path. `Io` events stay
    ///   in-span: the device loop ignores them.
    /// * **No brown-out, no checkpoint signal** — the closed-form sizing
    ///   ([`segment::safe_steps`]) under the worst-case per-instruction
    ///   loss ([`PredecodedProgram::worst_step`] plus a full step of
    ///   rail-voltage leakage) bounds how many instructions provably keep
    ///   the capacitor above `V_backup + margin` (or `V_off + margin`
    ///   when no monitor polls), where `margin` covers the ADC's
    ///   worst-case round-up (`lsb + ε`) and drowns f64 drift. The admit
    ///   closure re-checks the same worst-case guard against the *live*
    ///   local capacitor before every instruction, so the closed form
    ///   only sizes the span — admission is exact.
    /// * **Monitor state replayed or untouched** — an armed unfiltered
    ///   ADC is replayed per instruction on a local clone (conversions
    ///   are rare thanks to the sample-and-hold pipeline; held readings
    ///   below `V_backup` bail at entry, and in-span conversions are
    ///   quiet and above the guard, hence provably `>= V_backup`). An
    ///   armed comparator above `V_backup + margin` with no disturbance
    ///   can neither latch nor release, so skipping its evaluation leaves
    ///   identical state; a latched one bails. A filtered ADC always
    ///   bails (each poll shifts its median window).
    /// * **Quiet attack horizon** — when the monitor polls, the span ends
    ///   two worst-case steps before the next attack-window edge
    ///   ([`AttackSchedule::next_edge`]), so the disturbance amplitude is
    ///   identically zero at every replayed poll; an active window bails.
    /// * **Constant harvest** — [`PowerSource::constant_until`] pins the
    ///   harvester power for the whole span (minus the same slack), so
    ///   each replayed `charge` is bit-identical to the per-step one.
    ///
    /// The span runs `consume`'s float operations in the same order on
    /// local copies and commits in one shot, so the committed trajectory
    /// is bit-identical to per-step execution — there is no "closed-form
    /// energy jump" to reconcile.
    fn try_advance_active(&mut self, max_steps: u64, t_end: f64) -> u64 {
        let guards = match self.active_span_guards() {
            Some(g) => g,
            None => return 0,
        };
        let ActiveGuards {
            adc_polls,
            power,
            t_guard,
            e_guard_j: e_guard,
            worst_loss_j,
        } = guards;
        let horizon = segment::safe_steps(self.cap.energy_j(), e_guard, worst_loss_j);
        if horizon < MIN_ACTIVE_SPAN {
            return 0;
        }
        if !(self.t_s < t_end && self.t_s < t_guard) {
            return 0;
        }

        // The span replays `consume` (and the armed ADC poll) on locals in
        // the exact per-step operation order; everything commits back in
        // one shot when the span ends, so the committed trajectory is
        // bit-identical to stepping each instruction.
        let mut cap = self.cap.clone();
        let mut adc = self.adc.clone();
        let mut t = self.t_s;
        let mut energy_nj_acc = self.metrics.energy_nj;
        let mut span_cycles = 0u64;
        let cost = self.cost;
        let energy = self.energy;
        let v_max = self.thresholds.v_max;
        let v_backup = self.thresholds.v_backup;
        let v_off = self.thresholds.v_off;
        let budget = horizon.min(max_steps);

        let done = self.machine.retire_span(
            &self.pre,
            &mut self.nvm,
            &mut self.periph,
            budget,
            RUNTIME_AREA_FENCE,
            |cycles, energy_nj| {
                // The reference loop-head conditions, checked before the
                // instruction executes: the time horizons and the exact
                // worst-case energy guard on the live local capacitor.
                if t >= t_end || t >= t_guard {
                    return false;
                }
                if cap.energy_j() - worst_loss_j < e_guard {
                    return false;
                }
                let dt = cost.cycles_to_seconds(cycles);
                cap.charge(power, dt, v_max);
                let base_nj = energy.cycles_energy_nj(cycles);
                let e_nj = base_nj + (energy_nj - base_nj).max(0.0);
                energy_nj_acc += e_nj;
                span_cycles += cycles;
                t += dt;
                let alive = cap.discharge_j(e_nj * 1e-9);
                debug_assert!(
                    alive && cap.voltage_v() >= v_off,
                    "the energy guard must preclude in-span brown-out"
                );
                if adc_polls {
                    // Replay the exact checkpoint poll (quiet span:
                    // amplitude 0). Held polls return the vetted held
                    // reading; fresh conversions see the guarded voltage
                    // and cannot quantize below V_backup.
                    let r = adc.read_with(|| cap.voltage_v(), 0.0, t);
                    debug_assert!(
                        r >= v_backup,
                        "in-span polls must not assert the checkpoint signal"
                    );
                }
                true
            },
        );
        if done > 0 {
            self.cap = cap;
            self.adc = adc;
            self.t_s = t;
            self.metrics.energy_nj = energy_nj_acc;
            // Every in-span instruction is forward progress: overhead
            // events (Boundary/Checkpoint) are span enders.
            self.metrics.forward_cycles += span_cycles;
            self.cycles_since_boot += span_cycles;
            self.metrics.sim_time_s = self.t_s;
            self.fast.steps += done;
            self.fast.eh_insts += done;
            self.fast.eh_spans += 1;
        }
        done
    }

    fn uses_monitor_for_wake(&self) -> bool {
        match self.scheme {
            SchemeKind::Nvp | SchemeKind::Ratchet => true,
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => {
                // Rollback mode trusts only the internal POR.
                self.gecko.mode(&self.nvm) != GeckoMode::Rollback
            }
        }
    }

    fn first_boot(&mut self) {
        // Fresh device: initialize runtime areas without counting a reboot.
        match self.scheme {
            SchemeKind::Nvp => {}
            SchemeKind::Ratchet => {}
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => {
                self.gecko.set_mode(&mut self.nvm, GeckoMode::Jit);
                let _ = self.jit.boot_check_and_record(&mut self.nvm);
                let _ = self.gecko.boot_check_and_record(&mut self.nvm);
            }
        }
        self.state = PowerState::On;
    }

    fn boot(&mut self) {
        self.metrics.reboots += 1;
        self.cycles_since_boot = 0;
        self.adc.reset();
        if let Some(f) = &mut self.adc_filter {
            f.reset();
        }
        self.comp_backup.reset();
        self.comp_wake.reset();
        if !self.consume(REBOOT_CYCLES, 0.0, false) {
            self.state = PowerState::Sleeping;
            return;
        }
        // Unfinished application-restart reload?
        if self.gecko.reload_pending(&self.nvm) {
            self.do_reload();
            self.gecko.set_reload_pending(&mut self.nvm, false);
        }
        match self.scheme {
            SchemeKind::Nvp => self.boot_nvp(),
            SchemeKind::Ratchet => self.boot_ratchet(),
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => self.boot_gecko(),
        }
        self.state = PowerState::On;
    }

    fn boot_nvp(&mut self) {
        if let Some((regs, pc)) = self.jit.try_restore(&self.nvm) {
            self.machine.regs_mut().restore(regs);
            self.machine.set_pc(pc);
            let restore =
                JitArea::restore_cycles(&self.cost) + CTPL_STATE_WORDS as u64 * self.cost.load;
            let _ = self.consume(restore, 0.0, false);
        } else {
            // Corrupted or absent checkpoint: cold restart of the program
            // (the device has no way to reconstruct its progress).
            self.machine = Machine::new(self.program.entry());
        }
    }

    fn boot_ratchet(&mut self) {
        match self.ratchet.committed(&self.nvm) {
            Some((region, buf)) => {
                let regs = self.ratchet.read_regs(&self.nvm, buf);
                self.machine.regs_mut().restore(regs);
                self.rollback_to(region);
                let _ = self.consume(
                    gecko_compiler::ratchet::ratchet_restore_cycles(&self.cost),
                    0.0,
                    false,
                );
            }
            None => self.machine = Machine::new(self.program.entry()),
        }
    }

    fn boot_gecko(&mut self) {
        let repeat = self.gecko.boot_check_and_record(&mut self.nvm);
        #[cfg(feature = "sim-trace")]
        eprintln!(
            "[boot t={:.6}] mode={:?} committed={} crossings={} repeat={repeat}",
            self.t_s,
            self.gecko.mode(&self.nvm),
            self.gecko.committed_region(&self.nvm),
            self.gecko.crossings(&self.nvm)
        );
        let _ = self.consume(30, 0.0, false);
        match self.gecko.mode(&self.nvm) {
            GeckoMode::Fresh => {
                self.gecko.set_mode(&mut self.nvm, GeckoMode::Jit);
                let _ = self.jit.boot_check_and_record(&mut self.nvm);
                self.machine = Machine::new(self.program.entry());
            }
            GeckoMode::Jit => {
                let ack_alarm = self.jit.boot_check_and_record(&mut self.nvm);
                // Minimum-power-on-period check (Section VI-A): the WCET
                // analysis sized regions against the guaranteed power-on
                // period; a monitor-reported outage arriving far sooner
                // can only be spoofed.
                let too_soon = self
                    .gecko
                    .take_on_cycles(&mut self.nvm)
                    .is_some_and(|c| c < MIN_ON_PERIOD_CYCLES);
                if ack_alarm || repeat || too_soon {
                    // Attack detected: close the surface and roll back.
                    self.metrics.attack_detections += 1;
                    self.gecko.set_mode(&mut self.nvm, GeckoMode::Rollback);
                    self.jit.invalidate(&mut self.nvm);
                    self.gecko_rollback_restore();
                    self.probe = None;
                } else if let Some((regs, pc)) = self.jit.try_restore(&self.nvm) {
                    self.machine.regs_mut().restore(regs);
                    self.machine.set_pc(pc);
                    let restore = JitArea::restore_cycles(&self.cost)
                        + CTPL_STATE_WORDS as u64 * self.cost.load;
                    let _ = self.consume(restore, 0.0, false);
                } else {
                    self.gecko_rollback_restore();
                }
            }
            GeckoMode::Rollback => {
                self.gecko_rollback_restore();
                // Probation: watch the monitor during the first region.
                self.probe = Some(false);
            }
        }
    }

    fn gecko_rollback_restore(&mut self) {
        let region = self.gecko.committed_region(&self.nvm);
        #[cfg(feature = "sim-trace")]
        eprintln!(
            "[rollback t={:.6}] region={region} actions={}",
            self.t_s,
            self.recovery.actions(region).len()
        );
        let lookup = self.recovery.lookup_cost_insts() as u64;
        let _ = self.consume(lookup * self.cost.alu, 0.0, false);
        let actions: Vec<RestoreAction> = self.recovery.actions(region).to_vec();
        let mut slices = 0u64;
        for action in &actions {
            match action {
                RestoreAction::FromSlot { reg, slot } => {
                    let v = self.gecko.read_slot(&self.nvm, *reg, *slot);
                    self.machine.regs_mut().set(*reg, v);
                    let _ = self.consume(self.cost.load, 0.0, false);
                }
                RestoreAction::Recompute { reg, slice } => {
                    slices += 1;
                    // Scratch context seeded with the restored-so-far file.
                    let mut scratch = *self.machine.regs();
                    for inst in slice {
                        let cycles = self.cost.inst_cycles(inst);
                        let _ = self.consume(cycles, 0.0, false);
                        exec_slice_inst(inst, &mut scratch, &mut self.nvm);
                    }
                    let v = scratch.get(*reg);
                    self.machine.regs_mut().set(*reg, v);
                }
            }
        }
        self.metrics.recovery_slices += slices;
        self.metrics.rollbacks += 1;
        self.rollback_to(region);
    }

    fn rollback_to(&mut self, region: RegionId) {
        let (block, index) = match self.regions.get(region) {
            Some(info) => info.resume_point(),
            None => (self.program.entry(), 0),
        };
        self.machine.set_pc(Pc { block, index });
    }

    // ----- ON-state execution -------------------------------------------

    /// The fault the instruction about to retire suffers, if any: a
    /// checker-armed one-shot first, then the scheduled windows.
    fn fault_in_flight(&mut self) -> Option<FaultEffect> {
        if let Some(f) = self.pending_fault.take() {
            return Some(f);
        }
        self.fault.active_at(self.t_s).map(|m| match m {
            FaultModel::Skip => FaultEffect::Skip,
            FaultModel::OpcodeCorrupt => FaultEffect::OpcodeCorrupt,
            FaultModel::OperandBitflip { bit } => FaultEffect::OperandBitflip { bit },
        })
    }

    fn on_instruction(&mut self) {
        let out = match self.fault_in_flight() {
            Some(fault) => {
                match fault {
                    FaultEffect::Skip => self.metrics.fault_skips += 1,
                    FaultEffect::OpcodeCorrupt | FaultEffect::OperandBitflip { .. } => {
                        self.metrics.fault_corruptions += 1
                    }
                }
                // Both dispatch modes inject through the one predecoded
                // fault seam: predecoding is a pure re-encoding with
                // identical per-entry costs, so the two modes stay
                // bit-identical under faults too.
                self.machine
                    .step_faulted(&self.pre, &mut self.nvm, &mut self.periph, fault)
            }
            None => match self.exec_mode {
                ExecMode::Predecoded => {
                    self.machine
                        .step_predecoded(&self.pre, &mut self.nvm, &mut self.periph)
                }
                ExecMode::Interpreted => self.machine.step(
                    &self.program,
                    &self.cost,
                    &self.energy,
                    &mut self.nvm,
                    &mut self.periph,
                ),
            },
        };
        let is_overhead = matches!(
            out.event,
            Some(StepEvent::Boundary(_)) | Some(StepEvent::Checkpoint { .. })
        );
        let extra = out.energy_nj - self.energy.cycles_energy_nj(out.cycles);
        if !self.consume(out.cycles, extra.max(0.0), !is_overhead) {
            self.power_failure();
            return;
        }

        match out.event {
            Some(StepEvent::Boundary(region)) => self.handle_boundary(region),
            Some(StepEvent::Checkpoint { reg, value, slot }) => {
                self.metrics.checkpoint_stores += 1;
                self.gecko.write_slot(&mut self.nvm, reg, slot, value);
            }
            Some(StepEvent::Halted) => {
                self.complete_run();
                return;
            }
            _ => {}
        }
        if self.state != PowerState::On {
            return;
        }

        // Monitor-driven JIT / sleep logic.
        if self.jit_protocol_active() {
            if self.monitor_says_checkpoint() {
                match self.scheme {
                    SchemeKind::Nvp => self.jit_checkpoint_and_sleep(),
                    SchemeKind::Ratchet => {
                        // Clean shutdown: boundary state is already durable.
                        self.machine.power_fail(self.program.entry());
                        self.wake_stable = 0;
                        self.state = PowerState::Sleeping;
                    }
                    SchemeKind::Gecko | SchemeKind::GeckoNoPrune => self.jit_checkpoint_and_sleep(),
                }
            }
        } else if let Some(seen) = self.probe {
            // Rollback-mode probation: a checkpoint signal right after boot
            // (capacitor full) can only be spoofed.
            if !seen && self.monitor_says_checkpoint() {
                self.probe = Some(true);
            }
        }
    }

    fn jit_protocol_active(&self) -> bool {
        match self.scheme {
            SchemeKind::Nvp | SchemeKind::Ratchet => true,
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => {
                self.gecko.mode(&self.nvm) == GeckoMode::Jit
            }
        }
    }

    fn handle_boundary(&mut self, region: RegionId) {
        self.metrics.boundary_commits += 1;
        match self.scheme {
            SchemeKind::Nvp => {}
            SchemeKind::Ratchet => {
                // Centralized checkpoint: 16 registers into the inactive
                // buffer, then the atomic commit word.
                let buf = self.ratchet.write_buffer(&self.nvm);
                let snapshot = self.machine.regs().snapshot();
                for r in Reg::all() {
                    if !self.consume(self.cost.checkpoint, self.energy.nvm_write_extra_nj, false) {
                        self.power_failure();
                        return;
                    }
                    self.ratchet
                        .write_reg(&mut self.nvm, buf, r, snapshot[r.index()]);
                }
                // Index load + flip + packed commit store.
                if !self.consume(
                    self.cost.load + self.cost.alu + self.cost.boundary,
                    self.energy.nvm_write_extra_nj,
                    false,
                ) {
                    self.power_failure();
                    return;
                }
                self.ratchet.commit(&mut self.nvm, region, buf);
            }
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => {
                self.gecko.commit_region(&mut self.nvm, region);
                // Probation resolves at the first boundary after boot.
                if let Some(signal_seen) = self.probe.take() {
                    if !signal_seen {
                        self.gecko.set_mode(&mut self.nvm, GeckoMode::Jit);
                        let _ = self.jit.boot_check_and_record(&mut self.nvm);
                        self.metrics.jit_reenables += 1;
                    }
                }
            }
        }
    }

    fn jit_checkpoint_and_sleep(&mut self) {
        self.metrics.jit_checkpoints += 1;
        // CTPL saves the full volatile footprint (SRAM + peripheral state)
        // before the register file; metered in chunks so the capacitor can
        // run dry mid-way — the checkpoint-failure pathology.
        let chunk = 64u64;
        let mut remaining = CTPL_STATE_WORDS as u64;
        while remaining > 0 {
            let n = remaining.min(chunk);
            if !self.consume(
                self.cost.store * n,
                self.energy.nvm_write_extra_nj * n as f64,
                false,
            ) {
                self.metrics.jit_checkpoint_failures += 1;
                self.power_failure();
                return;
            }
            remaining -= n;
        }
        if matches!(self.scheme, SchemeKind::Gecko | SchemeKind::GeckoNoPrune) {
            // One extra payload word: how long this power-on period lasted
            // (the minimum-on-period detector's evidence).
            self.gecko
                .record_on_cycles(&mut self.nvm, self.cycles_since_boot);
        }
        let regs = self.machine.regs().snapshot();
        let pc = self.machine.pc();
        let mut writer = self.jit.begin_checkpoint(regs, pc, &mut self.nvm);
        while !writer.is_done() {
            if !self.consume(self.cost.store, self.energy.nvm_write_extra_nj, false) {
                // Energy exhausted mid-checkpoint: checkpoint failure.
                self.metrics.jit_checkpoint_failures += 1;
                self.power_failure();
                return;
            }
            writer.write_next(&mut self.nvm);
        }
        // Clean shutdown.
        self.machine.power_fail(self.program.entry());
        self.wake_stable = 0;
        self.state = PowerState::Sleeping;
    }

    fn power_failure(&mut self) {
        self.metrics.dirty_deaths += 1;
        self.machine.power_fail(self.program.entry());
        self.probe = None;
        self.wake_stable = 0;
        self.suppressed_s = 0.0;
        self.state = PowerState::Sleeping;
    }

    fn complete_run(&mut self) {
        // Order matters for crash consistency of the restart protocol —
        // see the module docs of `areas`.
        match self.scheme {
            SchemeKind::Nvp => self.jit.invalidate(&mut self.nvm),
            SchemeKind::Ratchet => self.ratchet.invalidate(&mut self.nvm),
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => {
                self.gecko.commit_region(&mut self.nvm, RegionId::new(0));
            }
        }
        self.gecko.set_reload_pending(&mut self.nvm, true);
        if !self.consume(RESTART_CYCLES, 2.0 * self.energy.nvm_write_extra_nj, false) {
            self.power_failure();
            return;
        }
        // Read the output before the reload clobbers anything.
        let got = self.nvm.read(self.app.checksum_addr);
        self.metrics.completions += 1;
        if got != self.app.expected_checksum {
            self.metrics.checksum_errors += 1;
            #[cfg(feature = "sim-trace")]
            eprintln!(
                "[CORRUPT t={:.6}] got={got} expected={} completion #{}",
                self.t_s, self.app.expected_checksum, self.metrics.completions
            );
        }
        if !self.do_reload() {
            return;
        }
        self.gecko.set_reload_pending(&mut self.nvm, false);
        self.machine = Machine::new(self.program.entry());
    }

    /// Rewrites the application's data image (the restart prologue).
    /// Returns `false` if power failed mid-reload.
    fn do_reload(&mut self) -> bool {
        let image = self.app.image.clone();
        for (base, words) in &image {
            let cycles = self.cost.store * words.len() as u64;
            let extra = self.energy.nvm_write_extra_nj * words.len() as f64;
            self.nvm.write_image(*base, words);
            if !self.consume(cycles, extra, false) {
                self.power_failure();
                return false;
            }
        }
        true
    }
}

/// Executes one recovery-block instruction against a scratch register file.
/// Recovery slices contain only moves, ALU ops and read-only loads.
fn exec_slice_inst(inst: &gecko_isa::Inst, regs: &mut gecko_mcu::RegFile, nvm: &mut Nvm) {
    use gecko_isa::{Inst, Operand};
    match *inst {
        Inst::Mov { dst, src } => {
            let v = match src {
                Operand::Reg(r) => regs.get(r),
                Operand::Imm(v) => v,
            };
            regs.set(dst, v);
        }
        Inst::Bin { op, dst, lhs, rhs } => {
            let l = regs.get(lhs);
            let r = match rhs {
                Operand::Reg(r) => regs.get(r),
                Operand::Imm(v) => v,
            };
            regs.set(dst, op.eval(l, r));
        }
        Inst::Load { dst, base, off } => {
            let addr = (regs.get(base).wrapping_add(off)) as u32;
            let v = nvm.load(addr);
            regs.set(dst, v);
        }
        ref other => unreachable!("recovery slices never contain {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_emi::{AttackSchedule, EmiSignal, Injection};

    fn app() -> gecko_apps::App {
        gecko_apps::app_by_name("blink").expect("bundled app")
    }

    #[test]
    fn bench_supply_keeps_the_rail_up() {
        let mut sim = Simulator::new(&app(), SimConfig::bench_supply(SchemeKind::Nvp)).unwrap();
        let m = sim.run_for(0.05);
        assert!(sim.voltage_v() > 3.2, "{}", sim.voltage_v());
        assert_eq!(m.dirty_deaths, 0);
        assert!(m.completions > 0);
    }

    #[test]
    fn weak_harvester_duty_cycles() {
        let mut sim = Simulator::new(&app(), SimConfig::harvesting(SchemeKind::Nvp)).unwrap();
        let m = sim.run_for(6.0);
        assert!(m.jit_checkpoints >= 1, "{m:?}");
        assert!(m.reboots >= 1, "{m:?}");
        assert_eq!(m.jit_checkpoint_failures, 0, "{m:?}");
    }

    #[test]
    fn empty_capacitor_boots_only_after_charging() {
        let cfg = SimConfig::harvesting(SchemeKind::Gecko).with_capacitor(1e-3, 0.0);
        let mut sim = Simulator::new(&app(), cfg).unwrap();
        assert!(!sim.is_on(), "starts hibernating");
        // ~4.5 mJ to V_on at 1.2 mW needs seconds.
        let m = sim.run_for(1.0);
        assert_eq!(m.completions, 0, "still charging: {m:?}");
        let m = sim.run_for(6.0);
        assert!(m.completions > 0, "eventually boots and runs: {m:?}");
    }

    #[test]
    fn injected_failure_wipes_volatile_state_and_recovers() {
        let mut sim = Simulator::new(&app(), SimConfig::bench_supply(SchemeKind::Gecko)).unwrap();
        let before = sim.run_steps(500);
        sim.inject_power_failure();
        assert!(!sim.is_on());
        let m = sim.run_until_completions(before.completions + 2, 10.0);
        assert!(m.completions >= before.completions + 2, "{m:?}");
        assert_eq!(m.checksum_errors, 0, "{m:?}");
        assert!(m.reboots > 0, "{m:?}");
        assert!(m.rollbacks > 0, "{m:?}");
    }

    #[test]
    fn gecko_mode_survives_in_nvm_across_failures() {
        let attack = AttackSchedule::continuous(
            EmiSignal::new(27e6, 35.0),
            Injection::Remote { distance_m: 5.0 },
        );
        let cfg = SimConfig::bench_supply(SchemeKind::Gecko).with_attack(attack);
        let mut sim = Simulator::new(&app(), cfg).unwrap();
        let m = sim.run_for(0.3);
        assert!(m.attack_detections >= 1, "{m:?}");
        // The mode word lives in NVM: wipe volatile state, the device must
        // come back still distrusting the monitor (no fresh detection storm
        // of checkpoints).
        sim.inject_power_failure();
        let before = sim.metrics.jit_checkpoints;
        let m = sim.run_for(0.2);
        assert!(
            m.jit_checkpoints <= before + 2,
            "rollback mode persisted across the failure: {m:?}"
        );
    }

    #[test]
    fn adc_filter_slows_spoofed_checkpoint_storms() {
        let attack = AttackSchedule::continuous(
            EmiSignal::new(29.5e6, 35.0), // detuned: partial disturbance
            Injection::Remote { distance_m: 5.0 },
        );
        let mut raw_cfg = SimConfig::bench_supply(SchemeKind::Nvp).with_attack(attack.clone());
        raw_cfg.adc_filter_taps = None;
        let mut filt_cfg = SimConfig::bench_supply(SchemeKind::Nvp).with_attack(attack);
        filt_cfg.adc_filter_taps = Some(7);
        let mut raw = Simulator::new(&app(), raw_cfg).unwrap();
        let mut filt = Simulator::new(&app(), filt_cfg).unwrap();
        let mr = raw.run_for(0.15);
        let mf = filt.run_for(0.15);
        assert!(
            mf.forward_cycles > mr.forward_cycles,
            "the filter wins back forward progress against a detuned tone: \
             filtered {} vs raw {}",
            mf.forward_cycles,
            mr.forward_cycles
        );
    }

    #[test]
    fn run_for_is_equivalent_to_run_steps_pacing() {
        let mut a = Simulator::new(&app(), SimConfig::bench_supply(SchemeKind::Gecko)).unwrap();
        let mut b = Simulator::new(&app(), SimConfig::bench_supply(SchemeKind::Gecko)).unwrap();
        let ma = a.run_for(0.02);
        // Step b until it reaches (at least) the same sim time, one step at
        // a time so the two trajectories align exactly.
        while b.time_s() < a.time_s() {
            b.run_steps(1);
        }
        let mb = b.run_steps(0);
        assert_eq!(ma.completions, mb.completions);
        assert_eq!(ma.forward_cycles, mb.forward_cycles);
        assert_eq!(ma.checksum_errors, 0);
        assert_eq!(mb.checksum_errors, 0);
    }
}
