//! End-to-end EM instruction-fault checking: with
//! [`ExploreConfig::fault_windows`] the explorer injects skip/corrupt
//! faults at every golden window and judges fault-then-crash nestings
//! against the faulted-continuous reference (DESIGN.md §17).
//!
//! The headline result this pins: a skipped instruction followed by a
//! power failure breaks Ratchet's rollback transparency on the WAR
//! counter (the recovery diverges from what the faulted-but-uncrashed
//! run computes), while GECKO's invalidate-then-commit protocol keeps
//! recovery faithful to the faulted reference — the checker verifies it
//! clean. The counterexample shrinks to the essential
//! fault + re-failure pair and its blame names the faulted region.

use gecko_check::{
    check_app, check_compiled, golden_steps, replay, schedule_to_string, shrink_schedule,
    war_counter_app, CheckCampaign, CheckSpec, ExploreConfig, InjectionKind,
};
use gecko_compiler::CompileOptions;
use gecko_sim::SchemeKind;

fn fault_cfg() -> ExploreConfig {
    ExploreConfig {
        depth: 2,
        refail_horizon: 10,
        ..ExploreConfig::default()
    }
    .with_fault_windows(true)
    .with_max_windows(120)
}

#[test]
fn fault_alone_never_violates_at_depth_one() {
    // Depth 1 judges a fault against itself: the faulted-continuous run
    // *is* the reference, so only a livelock could violate. No scheme
    // wedges on a single skipped or corrupted instruction in blink.
    let app = gecko_apps::app_by_name("blink").unwrap();
    for scheme in SchemeKind::all() {
        let cfg = ExploreConfig::default()
            .with_fault_windows(true)
            .with_max_windows(120);
        let report = check_app(&app, scheme, &CompileOptions::default(), &cfg).unwrap();
        assert!(
            report.is_clean(),
            "{}: {:?}",
            scheme.name(),
            report.violations.first()
        );
    }
}

#[test]
fn skip_fault_plus_refailure_breaks_ratchet_but_not_gecko() {
    let app = war_counter_app(6);
    let ratchet = check_app(
        &app,
        SchemeKind::Ratchet,
        &CompileOptions::default(),
        &fault_cfg(),
    )
    .unwrap();
    let fault_violation = ratchet
        .violations
        .iter()
        .find(|v| v.schedule.iter().any(|p| p.kind.is_em_fault()))
        .expect("Ratchet must lose rollback transparency under a skip fault");
    assert!(
        fault_violation
            .schedule
            .iter()
            .any(|p| p.kind == InjectionKind::InstructionSkip
                || p.kind == InjectionKind::InstructionCorrupt),
        "{}",
        schedule_to_string(&fault_violation.schedule)
    );
    assert!(
        fault_violation.blame.detail.contains("EM "),
        "blame must name the fault site: {}",
        fault_violation.blame.detail
    );

    let gecko = check_app(
        &app,
        SchemeKind::Gecko,
        &CompileOptions::default(),
        &fault_cfg(),
    )
    .unwrap();
    assert!(
        gecko.is_clean(),
        "GECKO recovery must stay faithful to the faulted reference: {:?}",
        gecko.violations.first()
    );
}

#[test]
fn fault_counterexample_shrinks_to_the_essential_pair() {
    let app = war_counter_app(6);
    let compiled = gecko_sim::device::CompiledApp::build(
        &app,
        SchemeKind::Ratchet,
        &CompileOptions::default(),
    )
    .unwrap();
    let cfg = fault_cfg();
    let golden = golden_steps(&compiled, cfg.seed).unwrap();
    let report = check_compiled(&compiled, &cfg).unwrap();
    let violation = report
        .violations
        .iter()
        .find(|v| v.schedule.iter().any(|p| p.kind.is_em_fault()))
        .expect("Ratchet skip-fault violation");

    let shrunk = shrink_schedule(&compiled, &cfg, &violation.schedule, golden, 400);
    assert!(shrunk.outcome.is_violation());
    assert!(shrunk.schedule.len() <= violation.schedule.len());
    assert_eq!(
        shrunk.schedule.len(),
        2,
        "the essential counterexample is fault + re-failure: {}",
        schedule_to_string(&shrunk.schedule)
    );
    assert!(
        shrunk.schedule[0].kind.is_em_fault(),
        "{}",
        schedule_to_string(&shrunk.schedule)
    );
    assert!(
        shrunk.blame.detail.contains("EM ") && shrunk.blame.detail.contains("region"),
        "shrunk blame must name the faulted region: {}",
        shrunk.blame.detail
    );
    // The shrunk schedule is self-contained: a fresh replay reproduces it.
    let (confirm, _) = replay(&compiled, &cfg, &shrunk.schedule, golden);
    assert_eq!(confirm, shrunk.outcome, "shrunk schedule replays");
}

#[test]
fn fault_campaign_digest_is_worker_invariant() {
    let spec = || {
        CheckSpec::new("fault-digest")
            .app_names(&["blink"])
            .unwrap()
            .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
            .explore(
                ExploreConfig::default()
                    .with_fault_windows(true)
                    .with_max_windows(60),
            )
            .chunk_windows(16)
    };
    let solo = CheckCampaign::new(spec()).workers(1).run().unwrap();
    let fleet = CheckCampaign::new(spec()).workers(5).run().unwrap();
    assert_eq!(
        solo.deterministic_digest(),
        fleet.deterministic_digest(),
        "fault-window digests must be worker-count invariant"
    );
}
