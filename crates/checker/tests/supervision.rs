//! Supervision inherited from `gecko_fleet`: checker chunks that panic
//! are quarantined (sibling chunks' violations survive bit-exactly and
//! still shrink), and a killed checker campaign resumes from its journal
//! bit-exactly — blame context included, rebuilt by deterministic replay.

use std::sync::Arc;

use gecko_check::{war_counter_app, CheckCampaign, CheckError, CheckSpec, ExploreConfig};
use gecko_fleet::{ChaosSpec, Journal, RunFailure};
use gecko_sim::SchemeKind;

/// One violating pair (NVP, items 0..6) and one clean pair (GECKO,
/// items 6..12), six 8-window chunks each.
fn spec() -> CheckSpec {
    CheckSpec::new("supervised-check")
        .apps([war_counter_app(6)])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .explore(ExploreConfig {
            depth: 2,
            power_failure_windows: false, // EMI windows only: fast + violating
            refail_horizon: 12,
            max_windows: Some(48),
            ..ExploreConfig::default()
        })
        .chunk_windows(8) // several chunks per pair: real interleaving
}

#[test]
fn chunk_panics_quarantine_and_sibling_violations_still_shrink() {
    let clean = CheckCampaign::new(spec()).workers(2).run().unwrap();
    assert_eq!(clean.counters.items, 12);
    assert!(!clean.results[0].violations.is_empty(), "NVP must violate");
    assert!(clean.results[1].is_clean(), "GECKO must stay clean");
    assert!(clean.failures.is_empty(), "no chaos: no failures");

    // Chaos seed 9 deterministically panics exactly the NVP chunks for
    // windows 24..32 (item 3) and 40..48 (item 5); the chunk run keys
    // are content-addressed, so this only shifts if the spec does.
    let chaos = ChaosSpec {
        seed: 9,
        panic_per_mille: 200,
        ..ChaosSpec::off()
    };
    let report = CheckCampaign::new(spec())
        .chaos(chaos)
        .workers(2)
        .run()
        .unwrap();

    // Each injected panic appears exactly once, as a structured failure.
    assert_eq!(report.failures.len(), 2);
    for (failure, expected_item) in report.failures.iter().zip([3usize, 5]) {
        match failure {
            RunFailure::Panicked { item, payload, .. } => {
                assert_eq!(*item, expected_item);
                assert!(payload.contains("chaos: injected panic"), "{payload}");
            }
            other => panic!("expected a quarantined panic, got {other:?}"),
        }
    }
    assert_eq!(report.counters.failures, 2);
    assert!(
        !report.is_clean(),
        "quarantined chunks void the exhaustiveness claim"
    );

    // Sibling chunks' violations survive bit-exactly: exactly the two
    // quarantined windows ranges are missing, nothing else moved.
    let expected: Vec<_> = clean.results[0]
        .violations
        .iter()
        .filter(|v| !((24..32).contains(&v.window) || (40..48).contains(&v.window)))
        .cloned()
        .collect();
    assert!(expected.len() < clean.results[0].violations.len());
    assert!(!expected.is_empty());
    assert_eq!(report.results[0].violations, expected);

    // The first violation lives in an unaffected chunk, so the
    // counterexample still shrinks — to the same minimal schedule.
    assert_eq!(
        report.results[0].counterexample, clean.results[0].counterexample,
        "counterexamples from sibling chunks still shrink"
    );

    // The clean pair ran entirely outside the blast radius.
    assert_eq!(report.results[1], clean.results[1]);

    // Chaos is keyed on (seed, chunk run key, attempt): the whole report,
    // failures included, is worker-count-invariant.
    let solo = CheckCampaign::new(spec())
        .chaos(chaos)
        .workers(1)
        .run()
        .unwrap();
    assert_eq!(solo.failures, report.failures);
    assert_eq!(solo.results, report.results);
    assert_eq!(solo.deterministic_digest(), report.deterministic_digest());
}

#[test]
fn killed_check_campaigns_resume_bit_exactly() {
    let reference = CheckCampaign::new(spec()).workers(2).run().unwrap();

    for workers in [1usize, 4] {
        let journal = Arc::new(Journal::memory());
        let partial = CheckCampaign::new(spec())
            .workers(workers)
            .journal(Arc::clone(&journal))
            .halt_after(4)
            .run()
            .unwrap();
        assert!(partial.halted, "the kill switch must fire");

        let resumed = CheckCampaign::new(spec())
            .workers(workers)
            .resume(Arc::clone(&journal))
            .run()
            .unwrap();
        assert!(!resumed.halted);
        assert!(resumed.counters.resumed >= 4);
        // Bit-exact merge, including the replay-rebuilt blame context on
        // every journaled violation.
        assert_eq!(resumed.results, reference.results);
        assert_eq!(resumed.totals, reference.totals);
        assert_eq!(resumed.counters.violations, reference.counters.violations);
        assert_eq!(
            resumed.deterministic_digest(),
            reference.deterministic_digest(),
            "workers={workers}"
        );
    }
}

#[test]
fn check_journals_from_a_different_spec_are_rejected() {
    let journal = Arc::new(Journal::memory());
    CheckCampaign::new(spec())
        .journal(Arc::clone(&journal))
        .halt_after(2)
        .run()
        .unwrap();
    let different = spec().chunk_windows(16); // different chunk grid
    let err = CheckCampaign::new(different)
        .resume(journal)
        .run()
        .unwrap_err();
    match err {
        CheckError::Journal(msg) => {
            assert!(msg.contains("fingerprint"), "unhelpful message: {msg}")
        }
        other => panic!("expected a journal rejection, got {other}"),
    }
}
