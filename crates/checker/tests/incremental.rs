//! Incremental persistent checking (DESIGN.md §18): a campaign with a
//! [`MemoStore`] attached persists every slab's verdicts and memo table,
//! and later campaigns answer from disk — bit-identically.
//!
//! The properties under test:
//!
//! * warm re-runs over the fig-4 scheme grid (EMI + instruction-fault
//!   primaries included) produce byte-identical reports, with ≥ 90% of
//!   windows answered from the persisted memo;
//! * digests are invariant across worker counts, steal schedules and
//!   kill-and-resume boundaries — the frontier is pure scheduling;
//! * a kill *between* mid-slab flushes (simulated by truncating the memo
//!   log at a mid-slab record) resumes bit-exactly, before and after a
//!   [`classify_memo_lines`] prune of the truncated log;
//! * recompiling one region invalidates only the slabs blamed on it.

use std::path::PathBuf;
use std::sync::Arc;

use gecko_apps::App;
use gecko_check::{
    classify_memo_lines, war_counter_app, CheckCampaign, CheckSpec, ExploreConfig, MemoStore,
};
use gecko_compiler::{fingerprint_program, CompileOptions};
use gecko_fleet::journal::{field, parse_flat_json};
use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};
use gecko_sim::device::CompiledApp;
use gecko_sim::SchemeKind;
use gecko_store::{LogConfig, SegmentedLog, Verdict};

fn quick() -> bool {
    std::env::var_os("GECKO_QUICK").is_some()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gecko-incr-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fig-4 scheme grid over the WAR counter, EMI + instruction-fault
/// primaries at depth 2 (plain power failures off: they are clean under
/// every scheme here and only add wall time). NVP violates; Ratchet and
/// GECKO stay clean.
fn grid_spec() -> CheckSpec {
    CheckSpec::new("incremental-grid")
        .apps([war_counter_app(6)])
        .schemes([SchemeKind::Nvp, SchemeKind::Ratchet, SchemeKind::Gecko])
        .explore(ExploreConfig {
            depth: 2,
            power_failure_windows: false,
            fault_windows: true,
            refail_horizon: 10,
            max_windows: Some(24),
            ..ExploreConfig::default()
        })
        .chunk_windows(8)
}

#[test]
fn warm_reruns_are_byte_identical_and_memo_backed() {
    // The no-store run is the ground truth everything must match.
    let reference = CheckCampaign::new(grid_spec()).workers(2).run().unwrap();
    assert!(
        !reference.results[0].violations.is_empty(),
        "NVP must violate under EMI"
    );
    assert!(reference.results[2].is_clean(), "GECKO must stay clean");

    let dir = scratch("grid");
    let cold = {
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        CheckCampaign::new(grid_spec())
            .workers(2)
            .memo(store)
            .run()
            .unwrap()
    };
    assert_eq!(
        cold.deterministic_digest(),
        reference.deterministic_digest(),
        "attaching a store must not change the report"
    );
    assert_eq!(
        cold.counters.memo_windows, 0,
        "a cold store answers nothing"
    );
    assert!(cold.memo_generation.is_some());

    // Warm: a *reopened* store (fresh process, same directory) answers
    // the whole campaign from disk.
    let warm = {
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        CheckCampaign::new(grid_spec())
            .workers(2)
            .memo(store)
            .run()
            .unwrap()
    };
    assert_eq!(
        warm.deterministic_digest(),
        reference.deterministic_digest()
    );
    assert_eq!(
        warm.results, reference.results,
        "per-pair stats + violations"
    );
    assert_eq!(warm.totals, reference.totals);
    assert!(
        warm.counters.memo_windows * 10 >= warm.totals.windows * 9,
        "only {} of {} windows memo-answered",
        warm.counters.memo_windows,
        warm.totals.windows
    );
    assert_eq!(
        warm.memo_generation, cold.memo_generation,
        "same spec, same generation: the proof-of-clean names stable evidence"
    );
}

/// One violating pair (NVP) and one clean pair (GECKO), six chunks each —
/// enough items that 2 and 8 workers genuinely interleave and steal.
fn duo_spec() -> CheckSpec {
    CheckSpec::new("steal-invariance")
        .apps([war_counter_app(6)])
        .schemes([SchemeKind::Nvp, SchemeKind::Gecko])
        .explore(ExploreConfig {
            depth: 2,
            power_failure_windows: false,
            refail_horizon: 12,
            max_windows: Some(48),
            ..ExploreConfig::default()
        })
        .chunk_windows(8)
}

#[test]
fn kill_and_resume_digests_are_invariant_across_workers_and_steal_schedules() {
    let reference = CheckCampaign::new(duo_spec()).workers(1).run().unwrap();

    for workers in [1usize, 2, 8] {
        // Bias 1 and 999 force maximally uneven steal splits (the victim
        // keeps 0.1% / 99.9% of its lease); pure scheduling, so every
        // combination must certify the same digest. Workers = 1 never
        // steals, so the bias sweep is redundant there.
        let biases: &[u64] = if workers == 1 {
            &[500]
        } else if quick() {
            &[999]
        } else {
            &[1, 999]
        };
        for &bias in biases {
            let dir = scratch(&format!("steal-{workers}-{bias}"));
            let partial = {
                let store = Arc::new(MemoStore::open(&dir).unwrap());
                CheckCampaign::new(duo_spec())
                    .workers(workers)
                    .steal_bias(bias)
                    .memo(store)
                    .halt_after(5)
                    .run()
                    .unwrap()
            };
            assert!(partial.halted, "workers={workers} bias={bias}: must halt");
            assert_eq!(
                partial.counters.memo_windows, 0,
                "the killed run started cold"
            );

            // Resume from the reopened store alone — no journal.
            let resumed = {
                let store = Arc::new(MemoStore::open(&dir).unwrap());
                CheckCampaign::new(duo_spec())
                    .workers(workers)
                    .steal_bias(bias)
                    .memo(store)
                    .run()
                    .unwrap()
            };
            assert!(!resumed.halted);
            assert!(
                resumed.counters.memo_windows > 0,
                "workers={workers} bias={bias}: the killed run's slabs must answer"
            );
            assert_eq!(
                resumed.deterministic_digest(),
                reference.deterministic_digest(),
                "workers={workers} bias={bias}"
            );
            assert_eq!(resumed.results, reference.results);
        }
    }
}

#[test]
fn mid_chunk_kills_resume_bit_exactly_even_after_a_prune() {
    // One pair, one chunk, > 32 windows: the slab writer flushes mid-slab
    // at the 32-window boundary, which is exactly the on-disk state a
    // kill between flushes leaves behind.
    let spec = || {
        CheckSpec::new("midchunk")
            .apps([war_counter_app(10)])
            .schemes([SchemeKind::Nvp])
            .explore(ExploreConfig {
                depth: 2,
                power_failure_windows: false,
                refail_horizon: 10,
                max_windows: Some(64),
                ..ExploreConfig::default()
            })
            .chunk_windows(64)
    };
    let reference = CheckCampaign::new(spec()).run().unwrap();
    assert!(
        reference.totals.windows > 40,
        "needs a mid-slab flush: got {} windows",
        reference.totals.windows
    );

    let dir = scratch("midchunk-full");
    let lines = {
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        let full = CheckCampaign::new(spec())
            .memo(Arc::clone(&store))
            .run()
            .unwrap();
        assert_eq!(
            full.deterministic_digest(),
            reference.deterministic_digest()
        );
        store.log().lines()
    };

    // Cut right after the first mid-slab record (done < total), then keep
    // any state lines that follow it: those belong to the *next* flush,
    // so they are exactly the orphans a torn final write leaves.
    let cut = lines
        .iter()
        .position(|line| {
            let Some(fields) = parse_flat_json(line) else {
                return false;
            };
            if field(&fields, "kind").and_then(|s| s.as_str()) != Some("memo_slab") {
                return false;
            }
            let u = |n: &str| field(&fields, n).and_then(|s| s.as_u64());
            match (u("done"), u("start"), u("end")) {
                (Some(done), Some(start), Some(end)) => done < end - start,
                _ => false,
            }
        })
        .expect("a mid-slab flush record");
    let mut killed: Vec<String> = lines[..=cut].to_vec();
    for line in &lines[cut + 1..] {
        let is_state = parse_flat_json(line)
            .as_deref()
            .and_then(|f| field(f, "kind").and_then(|s| s.as_str().map(str::to_string)))
            == Some("memo_state".to_string());
        if !is_state {
            break;
        }
        killed.push(line.clone());
    }

    // The pruned variant: a compactor pass over the killed log. Orphaned
    // trailing state lines are exactly what it deletes.
    let verdicts = classify_memo_lines(&killed);
    let pruned: Vec<String> = killed
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| **v == Verdict::Keep)
        .map(|(l, _)| l.clone())
        .collect();

    for (tag, log_lines) in [("raw", &killed), ("pruned", &pruned)] {
        let rdir = scratch(&format!("midchunk-{tag}"));
        {
            let log = SegmentedLog::open(&rdir, LogConfig::default()).unwrap();
            for line in log_lines.iter() {
                log.append(line);
            }
            let _ = log.sync();
        }
        let store = Arc::new(MemoStore::open(&rdir).unwrap());
        let resumed = CheckCampaign::new(spec()).memo(store).run().unwrap();
        let (mw, w) = (resumed.counters.memo_windows, resumed.totals.windows);
        assert!(
            mw > 0 && mw < w,
            "{tag}: a mid-chunk kill resumes partially, got {mw}/{w}"
        );
        assert_eq!(
            resumed.deterministic_digest(),
            reference.deterministic_digest(),
            "{tag}: resume must be bit-exact"
        );
        assert_eq!(resumed.results, reference.results, "{tag}");
    }
}

/// The WAR counter with the two entry-block `mov`s swappable: both orders
/// compute the identical golden trace (same length, same checksum), but
/// the entry block — region 0's boundary block — renders differently, so
/// only region 0's fingerprint changes across the "recompile".
fn warvar_app(reordered: bool) -> App {
    let iterations: Word = 6;
    let mut b = ProgramBuilder::new("warvar");
    let out = b.segment("out", 2, true);
    let (i, acc, base) = (Reg::R1, Reg::R2, Reg::R3);
    if reordered {
        b.mov(i, 0);
        b.mov(base, out as i32);
    } else {
        b.mov(base, out as i32);
        b.mov(i, 0);
    }
    b.store(i, base, 1);
    let head = b.new_label("head");
    let body = b.new_label("body");
    let exit = b.new_label("exit");
    b.bind(head);
    b.set_loop_bound(iterations as u32);
    b.branch(Cond::Lt, i, iterations, body, exit);
    b.bind(body);
    b.load(acc, base, 1);
    b.bin(BinOp::Add, acc, acc, 1);
    b.store(acc, base, 1);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(head);
    b.bind(exit);
    b.load(acc, base, 1);
    b.store(acc, base, 0);
    b.halt();
    App {
        name: "warvar",
        program: b.finish().expect("warvar builds"),
        image: vec![],
        checksum_addr: out,
        expected_checksum: iterations,
    }
}

fn changed_spec(app: App) -> CheckSpec {
    CheckSpec::new("change-driven")
        .apps([app])
        .schemes([SchemeKind::Ratchet])
        .explore(ExploreConfig {
            max_windows: Some(40),
            ..ExploreConfig::default()
        })
        .chunk_windows(8)
}

#[test]
fn recompiling_one_region_invalidates_only_the_slabs_blamed_on_it() {
    let (v1, v2) = (warvar_app(false), warvar_app(true));

    // Premise: the variants compile to different programs with the same
    // region structure, and the edit lands in *some but not all* region
    // fingerprints — the shape change-driven invalidation keys on.
    let opts = CompileOptions::default();
    let c1 = CompiledApp::build(&v1, SchemeKind::Ratchet, &opts).unwrap();
    let c2 = CompiledApp::build(&v2, SchemeKind::Ratchet, &opts).unwrap();
    let f1 = fingerprint_program(&c1.program, &c1.recovery);
    let f2 = fingerprint_program(&c2.program, &c2.recovery);
    assert_ne!(f1.program, f2.program, "the reorder changes the program");
    let keys: Vec<u32> = f1.regions.keys().copied().collect();
    assert_eq!(
        keys,
        f2.regions.keys().copied().collect::<Vec<u32>>(),
        "the reorder keeps the region structure"
    );
    let changed: Vec<u32> = keys
        .iter()
        .copied()
        .filter(|k| f1.regions[k] != f2.regions[k])
        .collect();
    assert!(!changed.is_empty(), "the entry region's code changed");
    assert!(
        changed.len() < keys.len(),
        "the loop regions are untouched: changed {changed:?} of {keys:?}"
    );

    let reference_v2 = CheckCampaign::new(changed_spec(v2.clone())).run().unwrap();

    let dir = scratch("changed");
    {
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        let cold = CheckCampaign::new(changed_spec(v1.clone()))
            .memo(store)
            .run()
            .unwrap();
        assert_eq!(cold.counters.memo_windows, 0);
    }
    {
        // v1 warm: nothing changed, every slab answers from disk.
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        let warm = CheckCampaign::new(changed_spec(v1))
            .memo(store)
            .run()
            .unwrap();
        assert_eq!(
            warm.counters.memo_windows, warm.totals.windows,
            "an unchanged program reuses every slab"
        );
    }
    {
        // v2 warm over v1's store: both specs fingerprint identically
        // (same name, same grid), so the store is *not* cleared — but the
        // slabs blamed on the edited entry region fail revalidation and
        // re-explore, while the loop-region slabs keep answering.
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        let warm = CheckCampaign::new(changed_spec(v2))
            .memo(store)
            .run()
            .unwrap();
        assert_eq!(
            warm.deterministic_digest(),
            reference_v2.deterministic_digest(),
            "selective reuse must still be bit-exact"
        );
        assert_eq!(warm.results, reference_v2.results);
        let (mw, w) = (warm.counters.memo_windows, warm.totals.windows);
        assert!(mw > 0, "unblamed slabs must survive the recompile");
        assert!(mw < w, "the changed region's slabs must re-explore");
        assert!(
            mw + 16 >= w,
            "invalidation is selective — at most the chunks touching the \
             changed region re-explore: {mw}/{w}"
        );
    }
}
