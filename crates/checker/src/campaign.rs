//! Sharded checker campaigns: the (app × scheme × window-chunk) grid fans
//! out across a fleet-style worker pool with deterministic,
//! worker-count-invariant results.
//!
//! Determinism is structural, mirroring `gecko_fleet::campaign`:
//!
//! * Work items are **fixed-size window chunks** derived only from the
//!   spec (never from the worker count), claimed from an atomic cursor.
//! * Each chunk carries its **own memo table**, so memo-hit counters do
//!   not depend on which worker explored a neighboring chunk.
//! * Per-chunk results are merged **in item order** after the pool joins;
//!   shrinking runs after the merge, on the first violation per pair.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gecko_apps::App;
use gecko_compiler::{CompileError, CompileOptions};
use gecko_fleet::{Event, FleetCounters, NullSink, ProgramCache, TelemetrySink};
use gecko_sim::device::CompiledApp;
use gecko_sim::{SchemeKind, Value};

use crate::explore::{check_windows, golden_steps, ExploreConfig, GoldenError};
use crate::shrink::shrink_schedule;
use crate::verdict::{CheckStats, PairReport, Violation};

/// What to check: the (apps × schemes) grid plus exploration policy.
#[derive(Debug, Clone)]
pub struct CheckSpec {
    /// Campaign name (telemetry label).
    pub name: String,
    /// Applications to check. Owned `App` values, not names, so custom
    /// programs (regression counterexamples, WAR probes) check the same
    /// way as the bundled benchmarks; see [`CheckSpec::app_names`].
    pub apps: Vec<App>,
    /// Schemes to check each app under.
    pub schemes: Vec<SchemeKind>,
    /// Compiler options for the instrumented schemes.
    pub compile: CompileOptions,
    /// Exploration policy.
    pub explore: ExploreConfig,
    /// Windows per work item. Fixed-size chunks keep results independent
    /// of the worker count.
    pub chunk_windows: u64,
    /// Shrink the first violation of each failing pair.
    pub shrink: bool,
    /// Replay budget for the shrinker, per pair.
    pub shrink_budget: u64,
}

impl CheckSpec {
    /// A spec with the default exploration policy and no grid.
    pub fn new(name: impl Into<String>) -> CheckSpec {
        CheckSpec {
            name: name.into(),
            apps: Vec::new(),
            schemes: Vec::new(),
            compile: CompileOptions::default(),
            explore: ExploreConfig::default(),
            chunk_windows: 512,
            shrink: true,
            shrink_budget: 200,
        }
    }

    /// Builder: adds apps.
    pub fn apps(mut self, apps: impl IntoIterator<Item = App>) -> CheckSpec {
        self.apps.extend(apps);
        self
    }

    /// Builder: adds bundled apps by name.
    ///
    /// # Errors
    ///
    /// [`CheckError::UnknownApp`] for a name `gecko_apps` does not know.
    pub fn app_names(mut self, names: &[&str]) -> Result<CheckSpec, CheckError> {
        for name in names {
            let app = gecko_apps::app_by_name(name)
                .ok_or_else(|| CheckError::UnknownApp(name.to_string()))?;
            self.apps.push(app);
        }
        Ok(self)
    }

    /// Builder: adds schemes.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SchemeKind>) -> CheckSpec {
        self.schemes.extend(schemes);
        self
    }

    /// Builder: replaces the exploration policy.
    pub fn explore(mut self, explore: ExploreConfig) -> CheckSpec {
        self.explore = explore;
        self
    }

    /// Builder: replaces the chunk size (clamped to ≥ 1).
    pub fn chunk_windows(mut self, windows: u64) -> CheckSpec {
        self.chunk_windows = windows.max(1);
        self
    }
}

/// Why a check could not run.
#[derive(Debug)]
pub enum CheckError {
    /// An app name `gecko_apps` does not know.
    UnknownApp(String),
    /// No (app, scheme) pairs to check.
    EmptyGrid,
    /// A cell failed to compile.
    Compile {
        /// Application name.
        app: String,
        /// Scheme of the failing cell.
        scheme: SchemeKind,
        /// The compiler's error.
        error: CompileError,
    },
    /// A cell's failure-free golden run failed, so there is no reference
    /// to check against.
    Golden {
        /// Application name.
        app: String,
        /// Scheme of the failing cell.
        scheme: SchemeKind,
        /// What went wrong.
        error: GoldenError,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownApp(name) => write!(f, "unknown app {name:?}"),
            CheckError::EmptyGrid => write!(f, "empty check grid (no apps or no schemes)"),
            CheckError::Compile { app, scheme, error } => {
                write!(f, "compiling {app}/{}: {error}", scheme.name())
            }
            CheckError::Golden { app, scheme, error } => {
                write!(f, "golden run of {app}/{}: {error}", scheme.name())
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Checks a single pre-compiled artifact, sequentially. This is the
/// single-pair core the campaign shards; it is also the entry point for
/// checking artifacts that never came from the stock pipeline (e.g. a
/// deliberately miscompiled program in a regression test).
///
/// # Errors
///
/// [`CheckError::Golden`] when the failure-free run fails, leaving
/// nothing to check against.
pub fn check_compiled(
    compiled: &CompiledApp,
    explore: &ExploreConfig,
) -> Result<PairReport, CheckError> {
    let golden = golden_steps(compiled, explore.seed).map_err(|error| CheckError::Golden {
        app: compiled.app.name.to_string(),
        scheme: compiled.scheme,
        error,
    })?;
    let windows = explore.max_windows.map_or(golden, |m| m.min(golden));
    let (stats, violations) = check_windows(compiled, explore, 0, windows, golden);
    let mut report = PairReport {
        app: compiled.app.name.to_string(),
        scheme: compiled.scheme,
        golden_steps: golden,
        depth: explore.depth,
        stats,
        violations,
        counterexample: None,
    };
    if let Some(first) = report.violations.first() {
        report.counterexample = Some(shrink_schedule(
            compiled,
            explore,
            &first.schedule,
            golden,
            200,
        ));
    }
    Ok(report)
}

/// Compiles and checks one (app, scheme) pair, sequentially.
///
/// # Errors
///
/// [`CheckError::Compile`] or [`CheckError::Golden`] for a broken cell.
pub fn check_app(
    app: &App,
    scheme: SchemeKind,
    options: &CompileOptions,
    explore: &ExploreConfig,
) -> Result<PairReport, CheckError> {
    let compiled =
        CompiledApp::build(app, scheme, options).map_err(|error| CheckError::Compile {
            app: app.name.to_string(),
            scheme,
            error,
        })?;
    check_compiled(&compiled, explore)
}

/// One claimable unit of checker work: a window chunk of one pair.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    pair: usize,
    start: u64,
    end: u64,
}

/// A runnable checker campaign: spec + workers + telemetry sink.
pub struct CheckCampaign {
    spec: CheckSpec,
    workers: usize,
    sink: Arc<dyn TelemetrySink>,
}

impl CheckCampaign {
    /// A campaign over `spec` with one worker and no telemetry.
    pub fn new(spec: CheckSpec) -> CheckCampaign {
        CheckCampaign {
            spec,
            workers: 1,
            sink: Arc::new(NullSink),
        }
    }

    /// Sets the worker-thread count (builder style; clamped to ≥ 1).
    /// Results are bit-identical for any value.
    pub fn workers(mut self, workers: usize) -> CheckCampaign {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a telemetry sink (builder style).
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> CheckCampaign {
        self.sink = sink;
        self
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CheckSpec {
        &self.spec
    }

    /// Executes the campaign: compile and measure golden traces (in pair
    /// order), fan window chunks out across the pool, merge in item
    /// order, then shrink each failing pair's first violation.
    ///
    /// # Errors
    ///
    /// The first (in pair order) compile or golden-run error.
    pub fn run(&self) -> Result<CheckReport, CheckError> {
        let spec = &self.spec;
        if spec.apps.is_empty() || spec.schemes.is_empty() {
            return Err(CheckError::EmptyGrid);
        }
        let started = Instant::now();
        let cache = ProgramCache::new();

        // Phase 1 (sequential, pair order): compile + golden trace.
        struct Pair {
            compiled: Arc<CompiledApp>,
            golden: u64,
            windows: u64,
        }
        let mut pairs = Vec::with_capacity(spec.apps.len() * spec.schemes.len());
        for app in &spec.apps {
            for &scheme in &spec.schemes {
                let (compiled, _) =
                    cache
                        .get_or_compile(app, scheme, &spec.compile)
                        .map_err(|error| CheckError::Compile {
                            app: app.name.to_string(),
                            scheme,
                            error,
                        })?;
                let golden = golden_steps(&compiled, spec.explore.seed).map_err(|error| {
                    CheckError::Golden {
                        app: app.name.to_string(),
                        scheme,
                        error,
                    }
                })?;
                let windows = spec.explore.max_windows.map_or(golden, |m| m.min(golden));
                pairs.push(Pair {
                    compiled,
                    golden,
                    windows,
                });
            }
        }

        // Fixed-size chunks, in pair order: the item list depends only on
        // the spec, never on the worker count.
        let mut items = Vec::new();
        for (pair, p) in pairs.iter().enumerate() {
            let mut start = 0;
            while start < p.windows {
                let end = (start + spec.chunk_windows).min(p.windows);
                items.push(WorkItem { pair, start, end });
                start = end;
            }
            if p.windows == 0 {
                // Degenerate (empty) trace: still emit one no-op item so
                // the pair appears in the report.
                items.push(WorkItem {
                    pair,
                    start: 0,
                    end: 0,
                });
            }
        }

        let workers = self.workers.min(items.len()).max(1);
        let sink = &self.sink;
        sink.emit(Event::new(
            "check_started",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("pairs", Value::U64(pairs.len() as u64)),
                ("items", Value::U64(items.len() as u64)),
                ("workers", Value::U64(workers as u64)),
            ],
        ));

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<(CheckStats, Vec<Violation>)>> = Vec::new();
        slots.resize_with(items.len(), || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                let items = &items;
                let pairs = &pairs;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let item = items[i];
                        let p = &pairs[item.pair];
                        let result = check_windows(
                            &p.compiled,
                            &spec.explore,
                            item.start,
                            item.end,
                            p.golden,
                        );
                        sink.emit(Event::new(
                            "check_item_finished",
                            vec![
                                ("item", Value::U64(i as u64)),
                                ("app", Value::Str(p.compiled.app.name.to_string())),
                                ("scheme", Value::Str(p.compiled.scheme.name().to_string())),
                                ("windows", Value::U64(result.0.windows)),
                                ("violations", Value::U64(result.0.violations)),
                            ],
                        ));
                        local.push((i, result));
                    }
                    local
                }));
            }
            for handle in handles {
                for (i, result) in handle.join().expect("checker worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });

        // Deterministic merge, in item order (chunks of a pair are in
        // window order, so each pair's violations come out sorted).
        let mut results: Vec<PairReport> = pairs
            .iter()
            .map(|p| PairReport {
                app: p.compiled.app.name.to_string(),
                scheme: p.compiled.scheme,
                golden_steps: p.golden,
                depth: spec.explore.depth,
                stats: CheckStats::default(),
                violations: Vec::new(),
                counterexample: None,
            })
            .collect();
        for (item, slot) in items.iter().zip(slots) {
            let (stats, violations) = slot.expect("every item was claimed");
            results[item.pair].stats.absorb(&stats);
            results[item.pair].violations.extend(violations);
        }

        // Shrink (sequential, pair order — itself deterministic).
        if spec.shrink {
            for (pair, report) in results.iter_mut().enumerate() {
                if let Some(first) = report.violations.first() {
                    report.counterexample = Some(shrink_schedule(
                        &pairs[pair].compiled,
                        &spec.explore,
                        &first.schedule,
                        pairs[pair].golden,
                        spec.shrink_budget,
                    ));
                }
            }
        }

        let mut totals = CheckStats::default();
        for r in &results {
            totals.absorb(&r.stats);
        }
        let counters = FleetCounters {
            items: items.len() as u64,
            compile_misses: cache.misses(),
            compile_hits: cache.hits(),
            forks: totals.forks,
            states_explored: totals.explored,
            memo_hits: totals.memo_hits,
            violations: totals.violations,
        };
        let wall_s = started.elapsed().as_secs_f64();

        sink.emit(Event::new(
            "check_finished",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("pairs", Value::U64(results.len() as u64)),
                ("forks", Value::U64(counters.forks)),
                ("states_explored", Value::U64(counters.states_explored)),
                ("memo_hits", Value::U64(counters.memo_hits)),
                ("violations", Value::U64(counters.violations)),
                ("wall_s", Value::F64(wall_s)),
            ],
        ));
        sink.flush();

        Ok(CheckReport {
            name: spec.name.clone(),
            workers,
            results,
            totals,
            counters,
            wall_s,
        })
    }
}

/// The merged outcome of a checker campaign.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Campaign name.
    pub name: String,
    /// Worker threads actually used.
    pub workers: usize,
    /// Per-pair reports, in (app × scheme) row-major order.
    pub results: Vec<PairReport>,
    /// All pair stats folded together.
    pub totals: CheckStats,
    /// Fleet-level counters (compile cache + exploration).
    pub counters: FleetCounters,
    /// Campaign wall time (s).
    pub wall_s: f64,
}

impl CheckReport {
    /// Whether every pair passed exhaustively.
    pub fn is_clean(&self) -> bool {
        self.results.iter().all(PairReport::is_clean)
    }

    /// An FNV-1a digest over everything deterministic in the report
    /// (stats, violations, schedules, outcomes, counterexamples). Equal
    /// digests across worker counts certify bit-identical results.
    pub fn deterministic_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            h = (h ^ word).wrapping_mul(FNV_PRIME);
        };
        let eat_schedule = |eat: &mut dyn FnMut(u64), schedule: &[crate::PlannedInjection]| {
            eat(schedule.len() as u64);
            for inj in schedule {
                eat(inj.after_steps);
                eat(match inj.kind {
                    crate::InjectionKind::PowerFailure => 1,
                    crate::InjectionKind::SpoofedCheckpoint => 2,
                    crate::InjectionKind::SpoofedWakeup => 3,
                });
            }
        };
        let eat_outcome = |eat: &mut dyn FnMut(u64), outcome: crate::Outcome| match outcome {
            crate::Outcome::Clean => eat(1),
            crate::Outcome::Corrupt { got } => {
                eat(2);
                eat(got as u32 as u64);
            }
            crate::Outcome::Stuck => eat(3),
        };
        for (i, r) in self.results.iter().enumerate() {
            eat(i as u64);
            eat(r.golden_steps);
            eat(r.stats.windows);
            eat(r.stats.forks);
            eat(r.stats.explored);
            eat(r.stats.memo_hits);
            eat(r.stats.steps);
            eat(r.stats.violations);
            eat(r.violations.len() as u64);
            for v in &r.violations {
                eat(v.window);
                eat_schedule(&mut eat, &v.schedule);
                eat_outcome(&mut eat, v.outcome);
            }
            match &r.counterexample {
                None => eat(0),
                Some(c) => {
                    eat_schedule(&mut eat, &c.schedule);
                    eat_outcome(&mut eat, c.outcome);
                }
            }
        }
        h
    }
}

/// Renders a fixed-width verdict table (one row per pair) plus totals —
/// the checker's counterpart to `gecko_fleet::fleet_summary`.
pub fn check_summary(report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "check {:?}: {} pair(s), {} worker(s), {:.2}s\n",
        report.name,
        report.results.len(),
        report.workers,
        report.wall_s
    ));
    out.push_str(&format!(
        "{:<10} {:<12} {:>8} {:>8} {:>9} {:>9} {:>8} {:>10}\n",
        "app", "scheme", "golden", "windows", "forks", "explored", "memo%", "violations"
    ));
    for r in &report.results {
        out.push_str(&format!(
            "{:<10} {:<12} {:>8} {:>8} {:>9} {:>9} {:>7.1}% {:>10}\n",
            r.app,
            r.scheme.name(),
            r.golden_steps,
            r.stats.windows,
            r.stats.forks,
            r.stats.explored,
            100.0 * r.stats.memo_hit_rate(),
            r.stats.violations,
        ));
    }
    out.push_str(&format!(
        "totals: {} forks, {} explored, {} memo hits ({:.1}%), {} violations\n",
        report.totals.forks,
        report.totals.explored,
        report.totals.memo_hits,
        100.0 * report.totals.memo_hit_rate(),
        report.totals.violations,
    ));
    out
}
